#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repo root. Mirrors what reviewers run before merging.
set -euo pipefail
cd "$(dirname "$0")"

echo "== panic lint (library src ratchet)"
# Library code reachable from user input must return typed errors, not
# panic. This ratchet counts `.unwrap(` / `.expect("` / `panic!(` /
# `unreachable!(` sites per source file *before* its first
# `#[cfg(test)]` marker and rejects any count above the frozen baseline
# in ci/panic-baseline.txt. New sites must be converted to typed errors;
# if a site is a genuinely unreachable invariant, update the baseline in
# the same commit and justify it in review.
panic_lint_failed=0
while IFS= read -r f; do
    n=$(awk '/#\[cfg\(test\)\]/{exit}
             {c += gsub(/\.unwrap\(|\.expect\("|panic!\(|unreachable!\(/,"")}
             END{print c+0}' "$f")
    allowed=$(awk -v p="$f" '$2==p{print $1; exit}' ci/panic-baseline.txt)
    allowed=${allowed:-0}
    if [ "$n" -gt "$allowed" ]; then
        echo "panic-lint: $f has $n panic-prone sites (baseline allows $allowed)" >&2
        panic_lint_failed=1
    fi
done < <(find src crates/*/src -name '*.rs' | sort)
if [ "$panic_lint_failed" -ne 0 ]; then
    echo "panic-lint failed: convert new sites to typed errors (see ci/panic-baseline.txt)." >&2
    exit 1
fi

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== no deprecated calls in-tree"
# The unified-options redesign left the old *_with/*_guarded names as
# #[deprecated] wrappers for external callers. In-tree code must use
# the new API: build everything with `-D deprecated`. Wrapper
# *definitions* (and their delegation bodies, which carry
# #[allow(deprecated)]) are fine; new *calls* are not.
RUSTFLAGS="${RUSTFLAGS:-} -D deprecated" cargo check --workspace --all-targets --offline

echo "== tier-1: release build + tests (sequential: FEO_THREADS=1)"
# The default Parallelism::Auto honours FEO_THREADS, so the same suite
# run at 1 and 4 workers exercises both the sequential and the parallel
# code paths end to end.
cargo build --release --offline
FEO_THREADS=1 cargo test -q --offline

echo "== tier-1: tests (parallel: FEO_THREADS=4)"
FEO_THREADS=4 cargo test -q --offline

echo "== workspace tests"
cargo test -q --offline --workspace

echo "== adversarial suite (bounded wall-clock)"
# Pathological inputs (malformed Turtle, ontology cycles, closure
# blowups) must degrade via the governor, never hang: the whole suite
# has to finish inside the timeout.
timeout 120 cargo test -q --offline --release --test adversarial

echo "== planner equivalence (bounded wall-clock)"
# All three planners must return identical solution multisets on seeded
# synthetic KGs, guarded or not.
timeout 180 cargo test -q --offline --release --test plan_equivalence

echo "== join equivalence (bounded wall-clock, both thread modes)"
# Hash, sorted-merge, leapfrog, and nested joins (forced and
# planner-chosen) must return byte-identical row-ordered tables on the
# memory and mmap backends, overlays included, in both thread modes.
FEO_THREADS=1 timeout 240 cargo test -q --offline --release --test join_equivalence
FEO_THREADS=4 timeout 240 cargo test -q --offline --release --test join_equivalence

echo "== join gain smoke (bounded wall-clock)"
# The paired join-gain harness must run end to end; full numbers go to
# BENCH_pr10.json, the smoke run just has to complete.
timeout 240 cargo run -q --release --offline -p feo-bench --bin join_gain -- --smoke

echo "== planner smoke (bounded wall-clock)"
# The paired planner-gain harness must run end to end; full numbers go
# to EXPERIMENTS.md, the smoke run just has to complete.
timeout 180 cargo run -q --release --offline -p feo-bench --bin planner_gain -- --smoke

echo "== parallel determinism (bounded wall-clock)"
# Parallelism::Fixed(4) must be byte-identical to Off: closure triples,
# query tables (row order included), and explain_batch outputs.
timeout 240 cargo test -q --offline --release --test parallel_determinism

echo "== parallel stress (bounded wall-clock)"
# Cross-thread cancellation and budget trips during parallel runs must
# yield typed Exhausted partials — never a panic or a torn closure.
timeout 240 cargo test -q --offline --release --test parallel_stress

echo "== parallel smoke (bounded wall-clock)"
# The paired parallel-gain harness must run end to end; full numbers go
# to EXPERIMENTS.md / BENCH_pr5.json, the smoke run just has to complete.
timeout 180 cargo run -q --release --offline -p feo-bench --bin parallel_gain -- --smoke

echo "== epoch ledger (bounded wall-clock, both thread modes)"
# Time travel must be byte-identical (explain_as_of replays old answers
# exactly), branches must never perturb parent epochs, and the hash
# chain must verify — at 1 and 4 workers alike.
FEO_THREADS=1 timeout 240 cargo test -q --offline --release --test ledger
FEO_THREADS=4 timeout 240 cargo test -q --offline --release --test ledger

echo "== ledger ops smoke (bounded wall-clock)"
# The paired ledger-ops harness must run end to end; full numbers go to
# BENCH_pr6.json, the smoke run just has to complete.
timeout 180 cargo run -q --release --offline -p feo-bench --bin ledger_ops -- --smoke

echo "== persistent store suite (bounded wall-clock, both thread modes)"
# The mmap-backed disk store must be a representation change only:
# differential equivalence against the memory backend (all planners,
# both thread modes), exhaustive corruption fault injection with typed
# errors, binary-format fuzzing, and a warm-restart round trip through
# the real binary (`--store` bootstrap → fresh-process reopen →
# `feo compact` → byte-identical answers throughout).
FEO_THREADS=1 timeout 300 cargo test -q --offline --release --test store_equivalence
FEO_THREADS=4 timeout 300 cargo test -q --offline --release --test store_equivalence
timeout 180 cargo test -q --offline --release -p feo-rdf --test store_corruption
timeout 180 cargo test -q --offline --release -p feo-rdf --test fuzz_store
timeout 300 cargo test -q --offline --release --test warm_restart

echo "== store ops smoke (bounded wall-clock)"
# The paired store-ops harness must run end to end; full numbers go to
# BENCH_pr8.json, the smoke run just has to complete.
timeout 240 cargo run -q --release --offline -p feo-bench --bin store_ops -- --smoke

echo "== serve: HTTP service end-to-end (boot, degrade, shed, drain)"
# Boot the real binary on an ephemeral port, drive it with curl, then
# SIGTERM it and require a clean drain (exit 0). Tenant quota is set
# aggressively low so a same-tenant double-tap deterministically sheds;
# every other probe uses its own tenant header.
SERVE_LOG=$(mktemp)
SERVE_OUT=$(mktemp)
SERVE_HDR=$(mktemp)
./target/release/feo serve --port 0 --commit pregnant \
    --tenant-rate 0.01 --tenant-burst 1 >"$SERVE_LOG" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^feo-serve listening on //p' "$SERVE_LOG" | head -n 1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve: server never announced its address" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi
BASE="http://$ADDR"

curl -fsS "$BASE/health" | grep -q '"status":"ok"'
curl -fsS "$BASE/ready" >/dev/null

# Happy path: a complete batch answers 200 with complete:true.
code=$(curl -sS -o "$SERVE_OUT" -w '%{http_code}' -H 'X-Feo-Tenant: ci-happy' \
    -d '{"questions":[{"type":"why-eat","food":"CauliflowerPotatoCurry"}]}' \
    "$BASE/explain")
if [ "$code" != 200 ] || ! grep -q '"complete":true' "$SERVE_OUT"; then
    echo "serve: happy-path explain failed (HTTP $code)" >&2
    cat "$SERVE_OUT" >&2
    exit 1
fi

# Budget trip: max_rounds 1 cannot finish the counterfactual, so the
# response must be a structured 206 naming the exhausted resource.
code=$(curl -sS -o "$SERVE_OUT" -w '%{http_code}' -H 'X-Feo-Tenant: ci-degraded' \
    -d '{"questions":[{"type":"why-eat","food":"CauliflowerPotatoCurry"},{"type":"what-if","hypothesis":"pregnant"}],"budget":{"max_rounds":1}}' \
    "$BASE/explain")
if [ "$code" != 206 ] || ! grep -q '"resource":"rounds"' "$SERVE_OUT"; then
    echo "serve: budget trip did not degrade to 206 (HTTP $code)" >&2
    cat "$SERVE_OUT" >&2
    exit 1
fi

# Quota: the second rapid request from one tenant sheds with 429 and a
# Retry-After hint — never a 5xx.
curl -fsS -H 'X-Feo-Tenant: ci-quota' \
    -d '{"questions":[{"type":"why-eat","food":"CauliflowerPotatoCurry"}]}' \
    "$BASE/explain" >/dev/null
code=$(curl -sS -o "$SERVE_OUT" -D "$SERVE_HDR" -w '%{http_code}' \
    -H 'X-Feo-Tenant: ci-quota' \
    -d '{"questions":[{"type":"why-eat","food":"CauliflowerPotatoCurry"}]}' \
    "$BASE/explain")
if [ "$code" != 429 ] || ! grep -qi '^Retry-After:' "$SERVE_HDR"; then
    echo "serve: tenant quota did not shed with 429 + Retry-After (HTTP $code)" >&2
    cat "$SERVE_HDR" "$SERVE_OUT" >&2
    exit 1
fi

# SPARQL over HTTP with time travel to the pre-commit epoch.
code=$(curl -sS -o "$SERVE_OUT" -w '%{http_code}' -H 'X-Feo-Tenant: ci-query' \
    -d '{"sparql":"ASK { ?s ?p ?o }","as_of":0}' "$BASE/query")
if [ "$code" != 200 ] || ! grep -q '"boolean":true' "$SERVE_OUT"; then
    echo "serve: as_of query failed (HTTP $code)" >&2
    cat "$SERVE_OUT" >&2
    exit 1
fi

# Graceful shutdown: SIGTERM drains and the process exits 0.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "serve: process did not exit cleanly after SIGTERM" >&2
    cat "$SERVE_LOG" >&2
    exit 1
fi
rm -f "$SERVE_LOG" "$SERVE_OUT" "$SERVE_HDR"

echo "== serve load smoke (bounded wall-clock)"
# The shed-don't-collapse harness must run end to end; full numbers go
# to BENCH_pr7.json, the smoke run just has to complete.
timeout 240 cargo run -q --release --offline -p feo-bench --bin serve_load -- --smoke

echo "CI green."
