#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repo root. Mirrors what reviewers run before merging.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build + tests"
cargo build --release --offline
cargo test -q --offline

echo "== workspace tests"
cargo test -q --offline --workspace

echo "CI green."
