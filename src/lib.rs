//! # feo — Food Explanation Ontology, reproduced in Rust
//!
//! Facade crate re-exporting the full stack built for the reproduction of
//! *"Semantic Modeling for Food Recommendation Explanations"* (ICDE 2021):
//!
//! - [`rdf`] — RDF term model, indexed triple store, Turtle/N-Triples;
//! - [`sparql`] — SPARQL 1.1 query engine;
//! - [`owl`] — OWL 2 RL materializing reasoner (Pellet substitute);
//! - [`ontology`] — the EO fragment, FEO, and food TBoxes;
//! - [`foodkg`] — curated + synthetic food knowledge graphs, users;
//! - [`recommender`] — the Health Coach simulator and baseline;
//! - [`core`] — the explanation engine (the paper's contribution);
//! - [`serve`] — the HTTP explanation service (admission control,
//!   load shedding, graceful degradation and shutdown).
//!
//! ```
//! use feo::core::{ExplanationEngine, Question};
//! use feo::foodkg::{curated, Season, SystemContext, UserProfile};
//!
//! let mut engine = ExplanationEngine::new(
//!     curated(),
//!     UserProfile::new("u"),
//!     SystemContext::new(Season::Autumn),
//! ).unwrap();
//! let e = engine.explain(&Question::WhyEat {
//!     food: "CauliflowerPotatoCurry".into(),
//! }).unwrap();
//! println!("{}", e.answer);
//! ```

pub mod error;

pub use error::FeoError;

pub use feo_core as core;
pub use feo_foodkg as foodkg;
pub use feo_ontology as ontology;
pub use feo_owl as owl;
pub use feo_rdf as rdf;
pub use feo_recommender as recommender;
pub use feo_serve as serve;
pub use feo_sparql as sparql;

/// One-stop imports for the common workflow: build an engine, open
/// sessions, meter them with budgets, and tune query execution.
///
/// ```
/// use feo::prelude::*;
///
/// let base = EngineBase::new(
///     curated(),
///     UserProfile::new("u"),
///     SystemContext::new(Season::Autumn),
/// )?;
/// let e = base.explain(
///     &Question::WhyEat { food: "CauliflowerPotatoCurry".into() },
///     &ExplainOptions::default(),
/// )?;
/// assert!(e.answer.contains("current season"));
/// # Ok::<(), EngineError>(())
/// ```
pub mod prelude {
    pub use crate::core::{
        BranchDiff, BranchInfo, BudgetedOutcome, CommitInfo, DegradationReport, EngineBase,
        EngineError, EpochId, ExplainOptions, Explanation, ExplanationEngine, Hypothesis,
        PlanCacheStats, Question, Session, ToJson,
    };
    pub use crate::error::FeoError;
    pub use crate::foodkg::{curated, Season, SystemContext, UserProfile};
    pub use crate::owl::{MaterializeOptions, Reasoner};
    pub use crate::rdf::governor::{Budget, CancelFlag, Exhausted, Guard};
    pub use crate::rdf::Parallelism;
    pub use crate::serve::{ServeConfig, Server};
    pub use crate::sparql::{Planner, QueryOptions, QueryResult};
}
