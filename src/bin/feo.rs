//! `feo` — command-line interface to the FEO explanation stack.
//!
//! ```text
//! feo recommend [profile flags]                 rank recipes for a profile
//! feo explain why-eat <Food> [flags]            contextual explanation
//! feo explain why-over <A> <B> [flags]          contrastive explanation
//! feo explain what-if-pregnant [flags]          counterfactual explanation
//! feo explain steps <Food> [flags]              trace-based explanation
//! feo proof <Individual> <fact|foil> [flags]    reasoner proof tree
//! feo query <SPARQL> [--explain] [--planner P]  query the materialized graph
//! feo export [--raw]                            dump the graph as Turtle
//! feo list                                      list recipes and ingredients
//!
//! profile flags:
//!   --likes A,B   --dislikes A,B   --allergies A,B   --diet D
//!   --goals G1,G2 --region R       --season spring|summer|autumn|winter
//!   --pregnant    --top N
//! ```

use std::process::exit;

use feo::core::ecosystem::assemble;
use feo::prelude::*;
use feo::recommender::{HealthCoach, Recommender};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage_and_exit();
    };
    let rest = &args[1..];
    match command.as_str() {
        "recommend" => cmd_recommend(rest),
        "explain" => cmd_explain(rest),
        "proof" => cmd_proof(rest),
        "query" => cmd_query(rest),
        "export" => cmd_export(rest),
        "list" => cmd_list(),
        "help" | "--help" | "-h" => usage_and_exit(),
        other => {
            eprintln!("unknown command '{other}'");
            usage_and_exit();
        }
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "feo — Food Explanation Ontology CLI\n\
         \n\
         USAGE:\n\
           feo recommend [profile flags]\n\
           feo explain why-eat <Food> [profile flags]\n\
           feo explain why-over <FoodA> <FoodB> [profile flags]\n\
           feo explain what-if-pregnant [profile flags]\n\
           feo explain steps <Food> [profile flags]\n\
           feo proof <Individual> <fact|foil> [profile flags]\n\
           feo query <SPARQL string> [--explain] [--planner off|greedy|cost-based]\n\
                     [--threads off|auto|N]\n\
           feo export [--raw] [profile flags]\n\
           feo list\n\
         \n\
         PROFILE FLAGS:\n\
           --likes A,B --dislikes A,B --allergies A,B --diet D --goals G,H\n\
           --region R --season spring|summer|autumn|winter --pregnant --top N\n\
         \n\
         Identifiers are CamelCase local names from `feo list`\n\
         (e.g. ButternutSquashSoup, Broccoli, Vegetarian, HighFiberGoal)."
    );
    exit(2);
}

/// Parsed profile flags shared by all commands.
struct Opts {
    user: UserProfile,
    ctx: SystemContext,
    top: usize,
    raw: bool,
    explain: bool,
    planner: Planner,
    parallelism: Parallelism,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut user = UserProfile::new("cli-user");
    let mut season = Season::Autumn;
    let mut region: Option<String> = None;
    let mut top = 10usize;
    let mut raw = false;
    let mut explain = false;
    let mut planner = Planner::default();
    let mut parallelism = Parallelism::default();
    let mut positional = Vec::new();
    let mut i = 0;
    let list = |v: &str| -> Vec<String> {
        v.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    };
    while i < args.len() {
        let arg = &args[i];
        let mut value = |name: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--likes" => user.likes = list(&value("--likes")),
            "--dislikes" => user.dislikes = list(&value("--dislikes")),
            "--allergies" => user.allergies = list(&value("--allergies")),
            "--diet" => user.diet = Some(value("--diet")),
            "--goals" => user.goals = list(&value("--goals")),
            "--region" => region = Some(value("--region")),
            "--season" => {
                season = match value("--season").to_ascii_lowercase().as_str() {
                    "spring" => Season::Spring,
                    "summer" => Season::Summer,
                    "autumn" | "fall" => Season::Autumn,
                    "winter" => Season::Winter,
                    other => {
                        eprintln!("unknown season '{other}'");
                        exit(2);
                    }
                }
            }
            "--pregnant" => user.pregnant = true,
            "--top" => {
                top = value("--top").parse().unwrap_or_else(|_| {
                    eprintln!("--top needs an integer");
                    exit(2);
                })
            }
            "--raw" => raw = true,
            "--explain" => explain = true,
            "--planner" => {
                planner = match value("--planner").to_ascii_lowercase().as_str() {
                    "off" => Planner::Off,
                    "greedy" => Planner::Greedy,
                    "cost-based" | "cost" => Planner::CostBased,
                    other => {
                        eprintln!("unknown planner '{other}' (off | greedy | cost-based)");
                        exit(2);
                    }
                }
            }
            "--threads" => {
                parallelism = match value("--threads").to_ascii_lowercase().as_str() {
                    "off" | "1" => Parallelism::Off,
                    "auto" => Parallelism::Auto,
                    n => match n.parse::<usize>() {
                        Ok(n) if n > 0 => Parallelism::Fixed(n),
                        _ => {
                            eprintln!("--threads needs a positive integer, 'off', or 'auto'");
                            exit(2);
                        }
                    },
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}'");
                exit(2);
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    if let Some(r) = &region {
        user.region = Some(r.clone());
    }
    let mut ctx = SystemContext::new(season);
    if let Some(r) = region {
        ctx = ctx.region(&r);
    }
    Opts {
        user,
        ctx,
        top,
        raw,
        explain,
        planner,
        parallelism,
        positional,
    }
}

fn engine_for(opts: &Opts, proofs: bool) -> ExplanationEngine {
    let result = if proofs {
        ExplanationEngine::new_with_proofs(curated(), opts.user.clone(), opts.ctx.clone())
    } else {
        ExplanationEngine::new(curated(), opts.user.clone(), opts.ctx.clone())
    };
    result.unwrap_or_else(|e| {
        eprintln!("failed to build engine: {e}");
        exit(1);
    })
}

fn cmd_recommend(args: &[String]) {
    let opts = parse_opts(args);
    let kg = curated();
    let coach = HealthCoach::new(&kg);
    let set = coach.recommend(&opts.user, &opts.ctx, opts.top);
    println!("Recommendations ({}):", opts.ctx.season.name());
    for (i, r) in set.recommendations.iter().enumerate() {
        println!("  {:>2}. {:<28} score {:.2}", i + 1, r.recipe_id, r.score);
    }
    if !set.eliminated.is_empty() {
        println!("\nEliminated by hard constraints:");
        for step in &set.eliminated {
            println!("  - {step}");
        }
    }
}

fn cmd_explain(args: &[String]) {
    let Some(kind) = args.first().cloned() else {
        eprintln!("explain needs a subcommand (why-eat | why-over | what-if-pregnant | steps)");
        exit(2);
    };
    let opts = parse_opts(&args[1..]);
    let question = match kind.as_str() {
        "why-eat" => Question::WhyEat {
            food: opts.positional.first().cloned().unwrap_or_else(|| {
                eprintln!("why-eat needs a food id");
                exit(2);
            }),
        },
        "why-over" => {
            if opts.positional.len() < 2 {
                eprintln!("why-over needs two food ids");
                exit(2);
            }
            Question::WhyEatOver {
                preferred: opts.positional[0].clone(),
                alternative: opts.positional[1].clone(),
            }
        }
        "what-if-pregnant" => Question::WhatIf {
            hypothesis: Hypothesis::Pregnant,
        },
        "steps" => Question::WhatSteps {
            food: opts.positional.first().cloned().unwrap_or_else(|| {
                eprintln!("steps needs a food id");
                exit(2);
            }),
        },
        other => {
            eprintln!("unknown explain subcommand '{other}'");
            exit(2);
        }
    };
    let mut engine = engine_for(&opts, false);
    if matches!(question, Question::WhatSteps { .. }) {
        let kg = curated();
        let coach = HealthCoach::new(&kg);
        let recs = coach.recommend(&opts.user, &opts.ctx, 50);
        engine = engine.with_recommendations(recs);
    }
    match engine.explain(&question) {
        Ok(e) => {
            println!("Q: {}", question.text());
            if !e.bindings.is_empty() {
                println!("\n{}", e.bindings);
            }
            println!("A: {}", e.answer);
        }
        Err(err) => {
            eprintln!("cannot explain: {err}");
            exit(1);
        }
    }
}

fn cmd_proof(args: &[String]) {
    if args.len() < 2 {
        eprintln!("proof needs <Individual> <fact|foil>");
        exit(2);
    }
    let individual = args[0].clone();
    let class = match args[1].to_ascii_lowercase().as_str() {
        "fact" => feo::ontology::ns::eo::FACT,
        "foil" => feo::ontology::ns::eo::FOIL,
        other => {
            eprintln!("expected 'fact' or 'foil', got '{other}'");
            exit(2);
        }
    };
    let opts = parse_opts(&args[2..]);
    let mut engine = engine_for(&opts, true);
    // A question parameter is needed for fact/foil classification; use the
    // first liked food or a default.
    let param = opts
        .user
        .likes
        .first()
        .cloned()
        .unwrap_or_else(|| "ButternutSquashSoup".to_string());
    let _ = engine.explain(&Question::WhyEat { food: param });
    match engine.proof_of_type(&individual, class) {
        Some(p) => println!("{p}"),
        None => {
            println!(
                "{individual} is not classified as {} under this profile/context.",
                args[1]
            );
        }
    }
}

fn cmd_query(args: &[String]) {
    let opts = parse_opts(args);
    let Some(sparql) = opts.positional.first() else {
        eprintln!("query needs a SPARQL string");
        exit(2);
    };
    let mut g = assemble(&curated(), &opts.user, &opts.ctx);
    let _ = Reasoner::new().materialize(&mut g, &Default::default());
    // Prepend the standard prefixes so short queries work out of the box.
    let full = format!("{}{}", feo::ontology::ns::sparql_prologue(), sparql);
    let qopts = QueryOptions {
        guard: None,
        planner: opts.planner,
        parallelism: opts.parallelism,
        explain: opts.explain,
    };
    match feo::sparql::query(&g, &full, &qopts) {
        Ok(QueryResult::Solutions(t)) => print!("{t}"),
        Ok(QueryResult::Boolean(b)) => println!("{b}"),
        Ok(QueryResult::Graph(g2)) => {
            print!(
                "{}",
                feo::rdf::turtle::write_turtle(&g2, feo::ontology::ns::PREFIXES)
            )
        }
        Ok(QueryResult::Plan(p)) => print!("{p}"),
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}

fn cmd_export(args: &[String]) {
    let opts = parse_opts(args);
    let mut g = assemble(&curated(), &opts.user, &opts.ctx);
    if !opts.raw {
        let _ = Reasoner::new().materialize(&mut g, &Default::default());
    }
    print!(
        "{}",
        feo::rdf::turtle::write_turtle(&g, feo::ontology::ns::PREFIXES)
    );
}

fn cmd_list() {
    let kg = curated();
    println!("Recipes:");
    for r in &kg.recipes {
        println!("  {:<28} {} kcal", r.id, r.calories);
    }
    println!("\nIngredients:");
    let names: Vec<&str> = kg.ingredients.iter().map(|i| i.id.as_str()).collect();
    for chunk in names.chunks(5) {
        println!("  {}", chunk.join(", "));
    }
    println!("\nDiets:");
    for d in &kg.diets {
        println!("  {:<14} forbids {}", d.id, d.forbids_categories.join(", "));
    }
    println!("\nGoals:");
    for g in &kg.goals {
        println!("  {:<18} wants {}", g.id, g.wants_nutrient);
    }
}
