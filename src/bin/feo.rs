//! `feo` — command-line interface to the FEO explanation stack.
//!
//! ```text
//! feo recommend [profile flags]                 rank recipes for a profile
//! feo explain why-eat <Food> [flags]            contextual explanation
//! feo explain why-over <A> <B> [flags]          contrastive explanation
//! feo explain what-if-pregnant [flags]          counterfactual explanation
//! feo explain steps <Food> [flags]              trace-based explanation
//! feo proof <Individual> <fact|foil> [flags]    reasoner proof tree
//! feo query <SPARQL> [--explain] [--planner P]  query the materialized graph
//! feo history [--commit S ...]                  show the epoch ledger chain
//! feo branch create|diff|list ...               named what-if branch worlds
//! feo export [--raw]                            dump the graph as Turtle
//! feo list                                      list recipes and ingredients
//! feo serve [--port N] [serve flags]            run the HTTP explanation service
//! feo compact --store <dir>                     fold the store's WAL into a new segment
//!
//! profile flags:
//!   --likes A,B   --dislikes A,B   --allergies A,B   --diet D
//!   --goals G1,G2 --region R       --season spring|summer|autumn|winter
//!   --pregnant    --top N          --json (machine-readable output)
//!
//! ledger flags (the CLI is stateless, so each invocation builds its
//! chain from hypothesis specs S = pregnant | diet:<D> | allergic:<I>):
//!   --commit S       commit S as an epoch on the main chain (repeatable)
//!   --as-of N        answer `query`/`explain` at epoch N instead of head
//!   --branch name=S  fork a branch at head and apply S (repeatable)
//!   --from N         fork epoch for `branch create`
//!   --apply S        hypothesis applied by `branch create` (repeatable)
//!
//! store flags (persistent dictionary-encoded store, `feo-rdf::disk`):
//!   --store <dir>    open the engine from <dir> (memory-mapped, no
//!                    re-materialization); first use writes the store.
//!                    `--commit` epochs append to its WAL.
//! ```

use std::process::exit;

use feo::core::ecosystem::{apply_hypothesis, assemble};
use feo::prelude::*;
use feo::recommender::{HealthCoach, Recommender};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage_and_exit();
    };
    let rest = &args[1..];
    match command.as_str() {
        "recommend" => cmd_recommend(rest),
        "explain" => cmd_explain(rest),
        "proof" => cmd_proof(rest),
        "query" => cmd_query(rest),
        "history" => cmd_history(rest),
        "branch" => cmd_branch(rest),
        "export" => cmd_export(rest),
        "list" => cmd_list(),
        "serve" => cmd_serve(rest),
        "compact" => cmd_compact(rest),
        "help" | "--help" | "-h" => usage_and_exit(),
        other => {
            eprintln!("unknown command '{other}'");
            usage_and_exit();
        }
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "feo — Food Explanation Ontology CLI\n\
         \n\
         USAGE:\n\
           feo recommend [profile flags]\n\
           feo explain why-eat <Food> [profile flags] [--as-of N] [--commit S]\n\
           feo explain why-over <FoodA> <FoodB> [profile flags]\n\
           feo explain what-if-pregnant [profile flags]\n\
           feo explain steps <Food> [profile flags]\n\
           feo proof <Individual> <fact|foil> [profile flags]\n\
           feo query <SPARQL string> [--explain] [--planner off|greedy|cost-based]\n\
                     [--threads off|auto|N] [--as-of N] [--commit S]\n\
           feo history [--commit S] [profile flags]\n\
           feo branch create <name> [--from N] [--apply S] [--commit S]\n\
           feo branch diff <a> <b> [--branch name=S] [--commit S]\n\
           feo branch list [--branch name=S] [--commit S]\n\
           feo export [--raw] [profile flags]\n\
           feo list\n\
           feo serve [--port N | --addr H:P] [--max-inflight N] [--max-queue N]\n\
                     [--tenant-rate R --tenant-burst B] [--deadline-ms N]\n\
                     [--max-deadline-ms N] [--drain-ms N] [profile + ledger flags]\n\
           feo compact --store <dir>\n\
         \n\
         PROFILE FLAGS:\n\
           --likes A,B --dislikes A,B --allergies A,B --diet D --goals G,H\n\
           --region R --season spring|summer|autumn|winter --pregnant --top N\n\
           --json (emit machine-readable JSON from explain/query/history)\n\
         \n\
         LEDGER FLAGS (hypothesis spec S = pregnant | diet:<D> | allergic:<I>):\n\
           --commit S committed as an epoch on the main chain (repeatable);\n\
           --as-of N answers at epoch N; --branch name=S forks a branch at\n\
           head and applies S; `branch diff` accepts branch names or 'main'.\n\
         \n\
         STORE FLAGS:\n\
           --store <dir> opens `query`/`explain`/`history`/`serve` from a\n\
           persistent dictionary-encoded store (memory-mapped segment +\n\
           WAL; written on first use, no re-materialization afterwards).\n\
           `feo compact --store <dir>` folds the WAL into a new segment.\n\
         \n\
         Identifiers are CamelCase local names from `feo list`\n\
         (e.g. ButternutSquashSoup, Broccoli, Vegetarian, HighFiberGoal)."
    );
    exit(2);
}

/// Parses a hypothesis spec: `pregnant`, `diet:<Diet>`, `allergic:<Ingredient>`.
fn parse_hypothesis(spec: &str) -> Hypothesis {
    if spec.eq_ignore_ascii_case("pregnant") {
        return Hypothesis::Pregnant;
    }
    if let Some(d) = spec.strip_prefix("diet:") {
        return Hypothesis::FollowedDiet(d.to_string());
    }
    if let Some(i) = spec.strip_prefix("allergic:") {
        return Hypothesis::AllergicTo(i.to_string());
    }
    eprintln!("bad hypothesis spec '{spec}' (pregnant | diet:<D> | allergic:<I>)");
    exit(2);
}

/// Parsed profile flags shared by all commands.
struct Opts {
    user: UserProfile,
    ctx: SystemContext,
    top: usize,
    raw: bool,
    json: bool,
    explain: bool,
    planner: Planner,
    parallelism: Parallelism,
    positional: Vec<String>,
    as_of: Option<u64>,
    commits: Vec<(String, Hypothesis)>,
    branches: Vec<(String, Hypothesis)>,
    from: Option<u64>,
    apply: Vec<(String, Hypothesis)>,
    store: Option<std::path::PathBuf>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut user = UserProfile::new("cli-user");
    let mut season = Season::Autumn;
    let mut region: Option<String> = None;
    let mut top = 10usize;
    let mut raw = false;
    let mut json = false;
    let mut explain = false;
    let mut planner = Planner::default();
    let mut parallelism = Parallelism::default();
    let mut as_of: Option<u64> = None;
    let mut commits: Vec<(String, Hypothesis)> = Vec::new();
    let mut branches: Vec<(String, Hypothesis)> = Vec::new();
    let mut from: Option<u64> = None;
    let mut apply: Vec<(String, Hypothesis)> = Vec::new();
    let mut store: Option<std::path::PathBuf> = None;
    let mut positional = Vec::new();
    let mut i = 0;
    let list = |v: &str| -> Vec<String> {
        v.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    };
    while i < args.len() {
        let arg = &args[i];
        let mut value = |name: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--likes" => user.likes = list(&value("--likes")),
            "--dislikes" => user.dislikes = list(&value("--dislikes")),
            "--allergies" => user.allergies = list(&value("--allergies")),
            "--diet" => user.diet = Some(value("--diet")),
            "--goals" => user.goals = list(&value("--goals")),
            "--region" => region = Some(value("--region")),
            "--season" => {
                season = match value("--season").to_ascii_lowercase().as_str() {
                    "spring" => Season::Spring,
                    "summer" => Season::Summer,
                    "autumn" | "fall" => Season::Autumn,
                    "winter" => Season::Winter,
                    other => {
                        eprintln!("unknown season '{other}'");
                        exit(2);
                    }
                }
            }
            "--pregnant" => user.pregnant = true,
            "--top" => {
                top = value("--top").parse().unwrap_or_else(|_| {
                    eprintln!("--top needs an integer");
                    exit(2);
                })
            }
            "--raw" => raw = true,
            "--json" => json = true,
            "--explain" => explain = true,
            "--planner" => {
                planner = match value("--planner").to_ascii_lowercase().as_str() {
                    "off" => Planner::Off,
                    "greedy" => Planner::Greedy,
                    "cost-based" | "cost" => Planner::CostBased,
                    other => {
                        eprintln!("unknown planner '{other}' (off | greedy | cost-based)");
                        exit(2);
                    }
                }
            }
            "--threads" => {
                parallelism = match value("--threads").to_ascii_lowercase().as_str() {
                    "off" | "1" => Parallelism::Off,
                    "auto" => Parallelism::Auto,
                    n => match n.parse::<usize>() {
                        Ok(n) if n > 0 => Parallelism::Fixed(n),
                        _ => {
                            eprintln!("--threads needs a positive integer, 'off', or 'auto'");
                            exit(2);
                        }
                    },
                }
            }
            "--as-of" => {
                as_of = Some(value("--as-of").parse().unwrap_or_else(|_| {
                    eprintln!("--as-of needs an epoch number");
                    exit(2);
                }))
            }
            "--commit" => {
                let spec = value("--commit");
                commits.push((spec.clone(), parse_hypothesis(&spec)));
            }
            "--apply" => {
                let spec = value("--apply");
                apply.push((spec.clone(), parse_hypothesis(&spec)));
            }
            "--from" => {
                from = Some(value("--from").parse().unwrap_or_else(|_| {
                    eprintln!("--from needs an epoch number");
                    exit(2);
                }))
            }
            "--store" => store = Some(std::path::PathBuf::from(value("--store"))),
            "--branch" => {
                let v = value("--branch");
                let Some((name, spec)) = v.split_once('=') else {
                    eprintln!("--branch needs name=<hypothesis spec>");
                    exit(2);
                };
                branches.push((name.to_string(), parse_hypothesis(spec)));
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}'");
                exit(2);
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    if let Some(r) = &region {
        user.region = Some(r.clone());
    }
    let mut ctx = SystemContext::new(season);
    if let Some(r) = region {
        ctx = ctx.region(&r);
    }
    Opts {
        user,
        ctx,
        top,
        raw,
        json,
        explain,
        planner,
        parallelism,
        positional,
        as_of,
        commits,
        branches,
        from,
        apply,
        store,
    }
}

/// Builds an `EngineBase` over the curated KG and commits each
/// `--commit` hypothesis as one epoch on the main chain, then forks
/// each `--branch name=spec` at the head and applies its hypothesis.
///
/// With `--store <dir>`: an existing store is opened (memory-mapped
/// segment + WAL replay — assembly and materialization are skipped);
/// a missing one is bootstrapped by building the engine and saving it.
/// Either way the store stays attached, so `--commit` epochs append to
/// its WAL and survive into the next invocation.
fn base_with_chain(opts: &Opts) -> EngineBase {
    let mut base = match &opts.store {
        Some(dir) if dir.join("MANIFEST").exists() => {
            EngineBase::open(dir, curated(), opts.user.clone(), opts.ctx.clone()).unwrap_or_else(
                |e| {
                    eprintln!("failed to open store {}: {e}", dir.display());
                    exit(1);
                },
            )
        }
        maybe_dir => {
            let mut base = EngineBase::new(curated(), opts.user.clone(), opts.ctx.clone())
                .unwrap_or_else(|e| {
                    eprintln!("failed to build engine: {e}");
                    exit(1);
                });
            if let Some(dir) = maybe_dir {
                if let Err(e) = base.save_to(dir) {
                    eprintln!("failed to write store {}: {e}", dir.display());
                    exit(1);
                }
            }
            base
        }
    };
    for (spec, hypothesis) in &opts.commits {
        let user = opts.user.clone();
        base.commit_with(spec, |overlay| apply_hypothesis(hypothesis, &user, overlay));
    }
    for (name, hypothesis) in &opts.branches {
        let head = base.head();
        let created = base.branch_create(name, head);
        let applied = created.and_then(|_| base.branch_apply(name, hypothesis));
        if let Err(e) = applied {
            eprintln!("branch '{name}': {e}");
            exit(1);
        }
    }
    base
}

fn engine_for(opts: &Opts, proofs: bool) -> ExplanationEngine {
    let result = if proofs {
        ExplanationEngine::new_with_proofs(curated(), opts.user.clone(), opts.ctx.clone())
    } else {
        ExplanationEngine::new(curated(), opts.user.clone(), opts.ctx.clone())
    };
    result.unwrap_or_else(|e| {
        eprintln!("failed to build engine: {e}");
        exit(1);
    })
}

fn cmd_recommend(args: &[String]) {
    let opts = parse_opts(args);
    let kg = curated();
    let coach = HealthCoach::new(&kg);
    let set = coach.recommend(&opts.user, &opts.ctx, opts.top);
    println!("Recommendations ({}):", opts.ctx.season.name());
    for (i, r) in set.recommendations.iter().enumerate() {
        println!("  {:>2}. {:<28} score {:.2}", i + 1, r.recipe_id, r.score);
    }
    if !set.eliminated.is_empty() {
        println!("\nEliminated by hard constraints:");
        for step in &set.eliminated {
            println!("  - {step}");
        }
    }
}

fn cmd_explain(args: &[String]) {
    let Some(kind) = args.first().cloned() else {
        eprintln!("explain needs a subcommand (why-eat | why-over | what-if-pregnant | steps)");
        exit(2);
    };
    let opts = parse_opts(&args[1..]);
    let question = match kind.as_str() {
        "why-eat" => Question::WhyEat {
            food: opts.positional.first().cloned().unwrap_or_else(|| {
                eprintln!("why-eat needs a food id");
                exit(2);
            }),
        },
        "why-over" => {
            if opts.positional.len() < 2 {
                eprintln!("why-over needs two food ids");
                exit(2);
            }
            Question::WhyEatOver {
                preferred: opts.positional[0].clone(),
                alternative: opts.positional[1].clone(),
            }
        }
        "what-if-pregnant" => Question::WhatIf {
            hypothesis: Hypothesis::Pregnant,
        },
        "steps" => Question::WhatSteps {
            food: opts.positional.first().cloned().unwrap_or_else(|| {
                eprintln!("steps needs a food id");
                exit(2);
            }),
        },
        other => {
            eprintln!("unknown explain subcommand '{other}'");
            exit(2);
        }
    };
    if opts.as_of.is_some() || opts.store.is_some() {
        // Ledger path: answer over an epoch view of the (possibly
        // store-backed) chain instead of the single-owner façade.
        let mut base = base_with_chain(&opts);
        if matches!(question, Question::WhatSteps { .. }) {
            let kg = curated();
            let coach = HealthCoach::new(&kg);
            base = base.with_recommendations(coach.recommend(&opts.user, &opts.ctx, 50));
        }
        let n = opts.as_of.unwrap_or(base.head().0);
        let eopts = ExplainOptions {
            guard: None,
            planner: opts.planner,
            parallelism: opts.parallelism,
        };
        match base.explain_as_of(EpochId(n), &question, &eopts) {
            Ok(e) if opts.json => println!("{}", e.to_json()),
            Ok(e) => {
                if opts.as_of.is_some() {
                    println!("Q: {} (as of epoch {n})", question.text());
                } else {
                    println!("Q: {}", question.text());
                }
                if !e.bindings.is_empty() {
                    println!("\n{}", e.bindings);
                }
                println!("A: {}", e.answer);
            }
            Err(err) => {
                eprintln!("cannot explain: {err}");
                exit(1);
            }
        }
        return;
    }
    let mut engine = engine_for(&opts, false);
    if matches!(question, Question::WhatSteps { .. }) {
        let kg = curated();
        let coach = HealthCoach::new(&kg);
        let recs = coach.recommend(&opts.user, &opts.ctx, 50);
        engine = engine.with_recommendations(recs);
    }
    match engine.explain(&question) {
        Ok(e) if opts.json => println!("{}", e.to_json()),
        Ok(e) => {
            println!("Q: {}", question.text());
            if !e.bindings.is_empty() {
                println!("\n{}", e.bindings);
            }
            println!("A: {}", e.answer);
        }
        Err(err) => {
            eprintln!("cannot explain: {err}");
            exit(1);
        }
    }
}

fn cmd_proof(args: &[String]) {
    if args.len() < 2 {
        eprintln!("proof needs <Individual> <fact|foil>");
        exit(2);
    }
    let individual = args[0].clone();
    let class = match args[1].to_ascii_lowercase().as_str() {
        "fact" => feo::ontology::ns::eo::FACT,
        "foil" => feo::ontology::ns::eo::FOIL,
        other => {
            eprintln!("expected 'fact' or 'foil', got '{other}'");
            exit(2);
        }
    };
    let opts = parse_opts(&args[2..]);
    let mut engine = engine_for(&opts, true);
    // A question parameter is needed for fact/foil classification; use the
    // first liked food or a default.
    let param = opts
        .user
        .likes
        .first()
        .cloned()
        .unwrap_or_else(|| "ButternutSquashSoup".to_string());
    let _ = engine.explain(&Question::WhyEat { food: param });
    match engine.proof_of_type(&individual, class) {
        Some(p) => println!("{p}"),
        None => {
            println!(
                "{individual} is not classified as {} under this profile/context.",
                args[1]
            );
        }
    }
}

fn cmd_query(args: &[String]) {
    let opts = parse_opts(args);
    let Some(sparql) = opts.positional.first() else {
        eprintln!("query needs a SPARQL string");
        exit(2);
    };
    // Prepend the standard prefixes so short queries work out of the box.
    let full = format!("{}{}", feo::ontology::ns::sparql_prologue(), sparql);
    if opts.as_of.is_some() || opts.store.is_some() {
        // Ledger path: answer over the epoch view (time travel with
        // --as-of, the store-backed head with --store), not the raw
        // assembled graph.
        let base = base_with_chain(&opts);
        let epoch = EpochId(opts.as_of.unwrap_or(base.head().0));
        let Some(mut session) = base.at_epoch(epoch) else {
            eprintln!("unknown epoch: {} is past the ledger head", epoch.0);
            exit(1);
        };
        let eopts = ExplainOptions {
            guard: None,
            planner: opts.planner,
            parallelism: opts.parallelism,
        };
        match session.query_opts(&full, &eopts) {
            Ok(result) => print_query_result(result, opts.json),
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        }
        return;
    }
    let mut g = assemble(&curated(), &opts.user, &opts.ctx);
    let _ = Reasoner::new().materialize(&mut g, &Default::default());
    let qopts = QueryOptions {
        guard: None,
        planner: opts.planner,
        parallelism: opts.parallelism,
        explain: opts.explain,
        force_join: None,
    };
    match feo::sparql::query(&g, &full, &qopts) {
        Ok(result) => print_query_result(result, opts.json),
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}

fn print_query_result(result: QueryResult, json: bool) {
    if json {
        // W3C SPARQL 1.1 Query Results JSON Format for SELECT/ASK;
        // Turtle-in-JSON for CONSTRUCT/DESCRIBE; plan text for --explain.
        println!("{}", result.to_json());
        return;
    }
    match result {
        QueryResult::Solutions(t) => print!("{t}"),
        QueryResult::Boolean(b) => println!("{b}"),
        QueryResult::Graph(g2) => {
            print!(
                "{}",
                feo::rdf::turtle::write_turtle(&g2, feo::ontology::ns::PREFIXES)
            )
        }
        QueryResult::Plan(p) => print!("{p}"),
    }
}

/// `feo history` — print the epoch ledger: one row per commit with its
/// label, layer sizes, and chained tamper-evidence hash.
fn cmd_history(args: &[String]) {
    let opts = parse_opts(args);
    let base = base_with_chain(&opts);
    if opts.json {
        let rows: Vec<String> = base.history().iter().map(|row| row.to_json()).collect();
        let chain_ok = base.ledger().verify_chain().is_none();
        println!(
            "{{\"head\":{},\"chain_ok\":{},\"commits\":[{}]}}",
            base.head().0,
            chain_ok,
            rows.join(",")
        );
        if !chain_ok {
            exit(1);
        }
        return;
    }
    println!("Epoch ledger ({} commits):", base.head().0);
    for row in base.history() {
        println!(
            "  #{:<3} {:<24} {:>6} triples  {:>5} terms  {:>5} inferred  hash {:016x}",
            row.epoch.0, row.label, row.triples, row.terms, row.inferred, row.hash
        );
    }
    match base.ledger().verify_chain() {
        None => println!("chain OK"),
        Some(epoch) => {
            eprintln!("chain BROKEN at epoch {}", epoch.0);
            exit(1);
        }
    }
}

/// `feo branch create|diff|list` — named what-if worlds forked from the
/// epoch ledger. The CLI is stateless, so each invocation first rebuilds
/// the main chain from `--commit` specs, then forks branches in-process.
fn cmd_branch(args: &[String]) {
    let Some(sub) = args.first().cloned() else {
        eprintln!("branch needs a subcommand (create | diff | list)");
        exit(2);
    };
    let opts = parse_opts(&args[1..]);
    match sub.as_str() {
        "create" => {
            let Some(name) = opts.positional.first().cloned() else {
                eprintln!("branch create needs a name");
                exit(2);
            };
            let mut base = base_with_chain(&opts);
            let from = EpochId(opts.from.unwrap_or(base.head().0));
            if let Err(e) = base.branch_create(&name, from) {
                eprintln!("branch '{name}': {e}");
                exit(1);
            }
            for (spec, hypothesis) in &opts.apply {
                if let Err(e) = base.branch_apply(&name, hypothesis) {
                    eprintln!("branch '{name}' applying {spec}: {e}");
                    exit(1);
                }
            }
            let Some(info) = base.branch_list().into_iter().find(|b| b.name == name) else {
                eprintln!("branch '{name}' vanished after creation");
                exit(1);
            };
            println!(
                "branch '{}' forked at epoch {} with {} commit(s), head {}",
                info.name, info.fork.0, info.commits, info.head.0
            );
            let diff = base.branch_diff(&name, "main").unwrap_or_else(|e| {
                eprintln!("diff vs main: {e}");
                exit(1);
            });
            println!(
                "diverges from main by +{} / -{} triples",
                diff.only_in_a.len(),
                diff.only_in_b.len()
            );
        }
        "diff" => {
            if opts.positional.len() < 2 {
                eprintln!("branch diff needs two names ('main' or --branch names)");
                exit(2);
            }
            let base = base_with_chain(&opts);
            let (a, b) = (&opts.positional[0], &opts.positional[1]);
            match base.branch_diff(a, b) {
                Ok(diff) if diff.is_empty() => println!("branches '{a}' and '{b}' are identical"),
                Ok(diff) => {
                    println!("only in '{a}' ({}):", diff.only_in_a.len());
                    for t in &diff.only_in_a {
                        println!("  + {t}");
                    }
                    println!("only in '{b}' ({}):", diff.only_in_b.len());
                    for t in &diff.only_in_b {
                        println!("  - {t}");
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    exit(1);
                }
            }
        }
        "list" => {
            let base = base_with_chain(&opts);
            let branches = base.branch_list();
            println!(
                "main: head {} ({} commits)",
                base.head().0,
                base.history().len() - 1
            );
            if branches.is_empty() {
                println!("no branches (fork one with --branch name=<spec>)");
            }
            for info in branches {
                let hash = info
                    .head_hash
                    .map(|h| format!("{h:016x}"))
                    .unwrap_or_else(|| "-".to_string());
                println!(
                    "  {:<16} fork #{:<3} +{} commit(s)  head #{:<3} hash {}",
                    info.name, info.fork.0, info.commits, info.head.0, hash
                );
            }
        }
        other => {
            eprintln!("unknown branch subcommand '{other}' (create | diff | list)");
            exit(2);
        }
    }
}

fn cmd_export(args: &[String]) {
    let opts = parse_opts(args);
    let mut g = assemble(&curated(), &opts.user, &opts.ctx);
    if !opts.raw {
        let _ = Reasoner::new().materialize(&mut g, &Default::default());
    }
    print!(
        "{}",
        feo::rdf::turtle::write_turtle(&g, feo::ontology::ns::PREFIXES)
    );
}

/// `feo serve` — run the HTTP explanation service over the engine
/// built from the profile and ledger flags. Serve-specific flags are
/// split off first; everything else (profile, --commit, --branch)
/// feeds `base_with_chain`, so the service can expose committed
/// epochs (`as_of`) and branch worlds (`branch`) to `/query`.
fn cmd_serve(args: &[String]) {
    let mut cfg = ServeConfig::default();
    let mut passthrough: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = |name: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    exit(2);
                })
                .clone()
        };
        let parse_u64 = |name: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name} needs an unsigned integer");
                exit(2);
            })
        };
        let parse_f64 = |name: &str, v: String| -> f64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name} needs a number");
                exit(2);
            })
        };
        match arg {
            "--addr" => cfg.addr = value("--addr"),
            "--port" => cfg.addr = format!("127.0.0.1:{}", parse_u64("--port", value("--port"))),
            "--max-inflight" => {
                cfg.admission.max_inflight =
                    parse_u64("--max-inflight", value("--max-inflight")).max(1) as usize
            }
            "--max-queue" => {
                cfg.admission.max_queue = parse_u64("--max-queue", value("--max-queue")) as usize
            }
            "--tenant-rate" => {
                cfg.admission.tenant_rate = parse_f64("--tenant-rate", value("--tenant-rate"))
            }
            "--tenant-burst" => {
                cfg.admission.tenant_burst = parse_f64("--tenant-burst", value("--tenant-burst"))
            }
            "--deadline-ms" => {
                cfg.default_deadline_ms = parse_u64("--deadline-ms", value("--deadline-ms")).max(1)
            }
            "--max-deadline-ms" => {
                cfg.max_deadline_ms =
                    parse_u64("--max-deadline-ms", value("--max-deadline-ms")).max(1)
            }
            "--drain-ms" => cfg.drain_deadline_ms = parse_u64("--drain-ms", value("--drain-ms")),
            "--queue-wait-ms" => {
                cfg.queue_wait_cap_ms = parse_u64("--queue-wait-ms", value("--queue-wait-ms"))
            }
            other => passthrough.push(other.to_string()),
        }
        i += 1;
    }
    let opts = parse_opts(&passthrough);
    cfg.parallelism = opts.parallelism;
    let base = std::sync::Arc::new(base_with_chain(&opts));
    let server = match Server::bind(base, cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    };
    // The ci.sh serve stage and the bench harness parse this line to
    // discover the ephemeral port, so keep its shape stable.
    println!("feo-serve listening on {}", server.local_addr());
    feo::serve::shutdown::install();
    let stop = server.shutdown_flag();
    std::thread::spawn(move || {
        while !feo::serve::shutdown::requested() {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
    });
    match server.run() {
        Ok(outcome) => {
            if outcome.clean {
                eprintln!("feo-serve: drained cleanly, exiting");
            } else {
                eprintln!(
                    "feo-serve: drain deadline hit, force-cancelled {} request(s)",
                    outcome.force_cancelled
                );
            }
            exit(0);
        }
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}

/// `feo compact --store <dir>` — open the store (replaying its WAL) and
/// fold every committed layer into a fresh base segment with an empty
/// WAL. The swap is atomic (MANIFEST rename), so a crash mid-compaction
/// leaves the old segment/WAL pair intact.
fn cmd_compact(args: &[String]) {
    let opts = parse_opts(args);
    let Some(dir) = &opts.store else {
        eprintln!("compact needs --store <dir>");
        exit(2);
    };
    let mut base = EngineBase::open(dir, curated(), opts.user.clone(), opts.ctx.clone())
        .unwrap_or_else(|e| {
            eprintln!("failed to open store {}: {e}", dir.display());
            exit(1);
        });
    let folded = base.head().0;
    if let Err(e) = base.compact() {
        eprintln!("compact failed: {e}");
        exit(1);
    }
    let index = base.store().map(|s| s.segment_index()).unwrap_or_default();
    println!(
        "compacted {} WAL epoch(s) into segment {:06} ({} triples, {} terms)",
        folded,
        index,
        base.graph().len(),
        base.graph().term_count()
    );
}

fn cmd_list() {
    let kg = curated();
    println!("Recipes:");
    for r in &kg.recipes {
        println!("  {:<28} {} kcal", r.id, r.calories);
    }
    println!("\nIngredients:");
    let names: Vec<&str> = kg.ingredients.iter().map(|i| i.id.as_str()).collect();
    for chunk in names.chunks(5) {
        println!("  {}", chunk.join(", "));
    }
    println!("\nDiets:");
    for d in &kg.diets {
        println!("  {:<14} forbids {}", d.id, d.forbids_categories.join(", "));
    }
    println!("\nGoals:");
    for g in &kg.goals {
        println!("  {:<18} wants {}", g.id, g.wants_nutrient);
    }
}
