//! The crate-spanning error taxonomy.
//!
//! Each layer of the stack has its own typed error (`TurtleError`,
//! `SparqlError`, `ReasonerError`, `EngineError`); [`FeoError`] unifies
//! them for applications driving the whole pipeline, with `From` impls so
//! `?` composes across layers. The [`FeoError::exhausted`] accessor
//! recovers the governor trip regardless of which layer it surfaced in.

use std::fmt;

use feo_core::EngineError;
use feo_owl::ReasonerError;
use feo_rdf::governor::Exhausted;
use feo_rdf::turtle::TurtleError;
use feo_rdf::RdfError;
use feo_sparql::SparqlError;

/// Any error the FEO pipeline can produce, by layer.
#[derive(Debug)]
pub enum FeoError {
    /// Turtle / N-Triples syntax error (with line/column).
    Syntax(TurtleError),
    /// SPARQL parse or evaluation error.
    Sparql(SparqlError),
    /// OWL materialization stopped by a budget (carries the partial
    /// closure's statistics).
    Reasoner(ReasonerError),
    /// Explanation-engine error (unknown entity, inconsistency, …).
    Engine(EngineError),
    /// A budget trip surfaced directly from a guarded parser or other
    /// layer-free entry point.
    Exhausted(Exhausted),
}

impl FeoError {
    /// The governor trip behind this error, wherever it surfaced, or
    /// `None` for errors unrelated to budgets. Applications use this to
    /// distinguish "degrade gracefully" from "report a bug".
    pub fn exhausted(&self) -> Option<&Exhausted> {
        match self {
            FeoError::Syntax(_) => None,
            FeoError::Sparql(e) => e.as_exhausted(),
            FeoError::Reasoner(e) => Some(e.exhausted()),
            FeoError::Engine(EngineError::Exhausted(e)) => Some(e),
            FeoError::Engine(_) => None,
            FeoError::Exhausted(e) => Some(e),
        }
    }
}

impl fmt::Display for FeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeoError::Syntax(e) => write!(f, "syntax: {e}"),
            FeoError::Sparql(e) => write!(f, "sparql: {e}"),
            FeoError::Reasoner(e) => write!(f, "reasoner: {e}"),
            FeoError::Engine(e) => write!(f, "engine: {e}"),
            FeoError::Exhausted(e) => write!(f, "budget: {e}"),
        }
    }
}

impl std::error::Error for FeoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeoError::Syntax(e) => Some(e),
            FeoError::Sparql(e) => Some(e),
            FeoError::Reasoner(e) => Some(e),
            FeoError::Engine(e) => Some(e),
            FeoError::Exhausted(e) => Some(e),
        }
    }
}

impl From<TurtleError> for FeoError {
    fn from(e: TurtleError) -> Self {
        FeoError::Syntax(e)
    }
}

impl From<RdfError> for FeoError {
    fn from(e: RdfError) -> Self {
        match e {
            RdfError::Syntax(e) => FeoError::Syntax(e),
            RdfError::Exhausted(e) => FeoError::Exhausted(e),
            RdfError::Store(e) => FeoError::Engine(EngineError::Store(e)),
        }
    }
}

impl From<SparqlError> for FeoError {
    fn from(e: SparqlError) -> Self {
        FeoError::Sparql(e)
    }
}

impl From<ReasonerError> for FeoError {
    fn from(e: ReasonerError) -> Self {
        FeoError::Reasoner(e)
    }
}

impl From<EngineError> for FeoError {
    fn from(e: EngineError) -> Self {
        FeoError::Engine(e)
    }
}

impl From<Exhausted> for FeoError {
    fn from(e: Exhausted) -> Self {
        FeoError::Exhausted(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_rdf::governor::Resource;

    fn trip() -> Exhausted {
        Exhausted {
            resource: Resource::WallClock,
            spent: 12,
            limit: 10,
        }
    }

    #[test]
    fn question_marks_compose_across_layers() {
        fn pipeline() -> Result<(), FeoError> {
            feo_rdf::turtle::parse_turtle("broken", &Default::default())?;
            Ok(())
        }
        let err = pipeline().unwrap_err();
        assert!(matches!(err, FeoError::Syntax(_)));
        assert!(err.exhausted().is_none());
    }

    #[test]
    fn exhausted_is_recovered_from_every_layer() {
        let by_layer: Vec<FeoError> = vec![
            FeoError::Sparql(SparqlError::from(trip())),
            FeoError::Engine(EngineError::Exhausted(trip())),
            FeoError::Exhausted(trip()),
        ];
        for err in by_layer {
            assert_eq!(
                err.exhausted().expect("carries the trip").resource,
                Resource::WallClock,
                "{err}"
            );
        }
    }

    #[test]
    fn display_prefixes_the_layer() {
        let e = FeoError::from(trip());
        assert!(e.to_string().starts_with("budget:"));
    }
}
