//! Snapshot + overlay architecture tests: per-question session
//! isolation, concurrent explanation over one shared base, and
//! order-insensitive engine builders.

use std::sync::Arc;
use std::thread;

use feo::core::{EngineBase, ExplainOptions, ExplanationEngine, Hypothesis, Population, Question};
use feo::foodkg::{curated, Season, SystemContext, UserProfile};
use feo::recommender::{HealthCoach, Recommender};

fn paper_user() -> UserProfile {
    UserProfile::new("user")
        .likes(&["BroccoliCheddarSoup", "LentilSoup"])
        .allergies(&["Broccoli"])
        .diet("Vegetarian")
        .goals(&["HighFiberGoal"])
}

fn base_full() -> EngineBase {
    let kg = curated();
    let user = paper_user();
    let ctx = SystemContext::new(Season::Autumn).region("Florida");
    let coach_kg = curated();
    let coach = HealthCoach::new(&coach_kg);
    let recs = coach.recommend(&user, &ctx, 10);
    let population = Population::generate(&kg, 150, 42);
    EngineBase::new(kg, user, ctx)
        .unwrap()
        .with_population(population)
        .with_recommendations(recs)
}

fn cq1() -> Question {
    Question::WhyEat {
        food: "CauliflowerPotatoCurry".into(),
    }
}

fn cq2() -> Question {
    Question::WhyEatOver {
        preferred: "ButternutSquashSoup".into(),
        alternative: "BroccoliCheddarSoup".into(),
    }
}

fn cq3() -> Question {
    Question::WhatIf {
        hypothesis: Hypothesis::Pregnant,
    }
}

/// Regression: answering CQ2 first must not change CQ1's bindings.
/// Under the old single-graph engine, question individuals and their
/// inferred classifications accumulated in the shared graph; with
/// per-question sessions the CQ1 result is byte-identical whether or
/// not CQ2 ran before it.
#[test]
fn cq2_then_cq1_bindings_are_byte_identical() {
    let base = base_full();

    let alone = base.explain(&cq1(), &ExplainOptions::default()).unwrap();
    let _ = base.explain(&cq2(), &ExplainOptions::default()).unwrap();
    let after = base.explain(&cq1(), &ExplainOptions::default()).unwrap();

    assert_eq!(alone.answer, after.answer);
    assert_eq!(alone.bindings.rows, after.bindings.rows);
    assert_eq!(
        format!("{:?}", alone.bindings),
        format!("{:?}", after.bindings),
        "CQ1 bindings must be byte-identical with and without a preceding CQ2"
    );
}

/// Sessions write only into their overlay: the shared base graph is
/// bit-for-bit unchanged by explain calls.
#[test]
fn explain_leaves_the_base_untouched() {
    let base = base_full();
    let triples = base.graph().len();
    let terms = base.graph().term_count();
    for q in [cq1(), cq2(), cq3()] {
        base.explain(&q, &ExplainOptions::default()).unwrap();
    }
    assert_eq!(base.graph().len(), triples);
    assert_eq!(base.graph().term_count(), terms);
}

/// CQ1–CQ3 answered concurrently from many threads over one
/// `Arc<EngineBase>` produce exactly the single-threaded answers.
#[test]
fn concurrent_sessions_match_single_threaded() {
    let base = Arc::new(base_full());
    let questions = [cq1(), cq2(), cq3()];
    let expected: Vec<String> = questions
        .iter()
        .map(|q| base.explain(q, &ExplainOptions::default()).unwrap().answer)
        .collect();

    let handles: Vec<_> = (0..9)
        .map(|i| {
            let base = Arc::clone(&base);
            let q = questions[i % 3].clone();
            thread::spawn(move || {
                (0..3)
                    .map(|_| base.explain(&q, &ExplainOptions::default()).unwrap().answer)
                    .collect::<Vec<String>>()
            })
        })
        .collect();

    for (i, h) in handles.into_iter().enumerate() {
        let answers = h.join().expect("thread panicked");
        for a in answers {
            assert_eq!(a, expected[i % 3], "thread {i} diverged");
        }
    }
}

/// `with_population` and `with_recommendations` commute: either order
/// yields the same graph and the same answers for the explanation types
/// that depend on them.
#[test]
fn builder_order_is_insensitive() {
    let make = |pop_first: bool| {
        let kg = curated();
        let user = paper_user();
        let ctx = SystemContext::new(Season::Autumn).region("Florida");
        let coach_kg = curated();
        let coach = HealthCoach::new(&coach_kg);
        let recs = coach.recommend(&user, &ctx, 10);
        let population = Population::generate(&kg, 150, 42);
        let base = EngineBase::new(kg, user, ctx).unwrap();
        if pop_first {
            base.with_population(population).with_recommendations(recs)
        } else {
            base.with_recommendations(recs).with_population(population)
        }
    };
    let a = make(true);
    let b = make(false);
    assert_eq!(a.graph().len(), b.graph().len());
    assert_eq!(a.graph().term_count(), b.graph().term_count());
    let dependents = [
        Question::WhatOtherUsers {
            food: "LentilSoup".into(),
        },
        Question::WhatEvidenceForDiet {
            diet: "Vegetarian".into(),
        },
        Question::WhatSteps {
            food: "ButternutSquashSoup".into(),
        },
    ];
    for q in dependents {
        assert_eq!(
            a.explain(&q, &ExplainOptions::default()).unwrap().answer,
            b.explain(&q, &ExplainOptions::default()).unwrap().answer,
            "{q:?} differs between builder orders"
        );
    }
}

/// The legacy façade still accumulates proof state across questions
/// while the new API underneath stays incremental.
#[test]
fn legacy_engine_still_accumulates_and_converts_to_base() {
    let kg = curated();
    let user = paper_user();
    let ctx = SystemContext::new(Season::Autumn).region("Florida");
    let mut engine = ExplanationEngine::new(kg, user, ctx).unwrap();
    let first = engine.explain(&cq1()).unwrap();
    let second = engine.explain(&cq1()).unwrap();
    assert_eq!(first.answer, second.answer);
    // The owned base can be extracted and shared afterwards.
    let base: EngineBase = engine.into_base();
    let third = base.explain(&cq1(), &ExplainOptions::default()).unwrap();
    assert_eq!(first.answer, third.answer);
}
