//! Join-algorithm equivalence: hash, sorted-merge, leapfrog, and nested
//! joins are alternative *physical operators*, never alternative
//! *semantics* — and not even alternative *orders*: every operator must
//! return the byte-identical row-ordered table for the same plan, on
//! every storage backend (in-memory indexes, mmap segment runs, overlay
//! deltas stacked on either) and in both thread modes. A tripping
//! `Guard` must yield a typed `SparqlError::Exhausted`, never a silently
//! truncated table.

use feo::core::ecosystem::assemble;
use feo::foodkg::{synthetic, FoodKg, Season, SyntheticConfig, SystemContext, UserProfile};
use feo::ontology::ns::sparql_prologue;
use feo::owl::Reasoner;
use feo::rdf::disk::segment::{write_segment, Segment};
use feo::rdf::governor::Budget;
use feo::rdf::{Graph, GraphStore, GraphView, Overlay, Parallelism};
use feo::sparql::{query, JoinAlgo, Planner, QueryOptions, QueryResult, SparqlError};
use proptest::prelude::*;
use std::path::PathBuf;

/// `None` is the planner's own choice; the four `Some` entries force
/// each operator onto every join step (leapfrog degrades to nested
/// outside star groups, which is itself part of the contract).
const FORCES: [Option<JoinAlgo>; 5] = [
    None,
    Some(JoinAlgo::Nested),
    Some(JoinAlgo::Hash),
    Some(JoinAlgo::Merge),
    Some(JoinAlgo::Leapfrog),
];

const MODES: [Parallelism; 2] = [Parallelism::Off, Parallelism::Fixed(4)];

/// Queries chosen to give the operators real work: a ground-object star
/// (the leapfrog target shape), variable-chain joins probing both key
/// columns of the merge directory, mixed boundness arriving from an
/// OPTIONAL, and an aggregate consuming join output.
fn equivalence_queries() -> Vec<String> {
    let p = sparql_prologue();
    // The generator's Zipf sampling makes the low-index ingredients the
    // most frequent, so this star has large per-member runs and a small
    // intersection — exactly the leapfrog case.
    let ing0 = FoodKg::iri("SynIngredient0");
    let ing1 = FoodKg::iri("SynIngredient1");
    vec![
        // Star on a shared subject with ground objects: k triple
        // patterns intersecting ordered subject runs.
        format!(
            "{p}SELECT ?r WHERE {{\n\
               ?r food:hasIngredient <{ing0}> .\n\
               ?r food:hasIngredient <{ing1}> .\n\
               ?r a food:Recipe .\n\
             }}"
        ),
        // Same star but the shared variable is already bound when the
        // group runs: the intersection acts as a semijoin filter.
        format!(
            "{p}SELECT ?r ?c WHERE {{\n\
               ?r food:calories ?c .\n\
               FILTER (?c > 300) .\n\
               ?r food:hasIngredient <{ing0}> .\n\
               ?r food:hasIngredient <{ing1}> .\n\
               ?r a food:Recipe .\n\
             }}"
        ),
        // Adversarial author order: the first two patterns share no
        // variable; only the third connects them (subject–object join).
        format!(
            "{p}SELECT ?r ?i ?s WHERE {{\n\
               ?r food:calories ?c .\n\
               ?i food:availableInSeason ?s .\n\
               ?r food:hasIngredient ?i .\n\
               FILTER (?c > 700) .\n\
             }}"
        ),
        // Variable chain joining on the subject key column and then the
        // object key column of the scan.
        format!(
            "{p}SELECT ?r ?i ?n WHERE {{\n\
               ?r a food:Recipe .\n\
               ?r food:hasIngredient ?i .\n\
               ?i food:hasNutrient ?n .\n\
             }}"
        ),
        // OPTIONAL feeds partially-bound rows into the next join.
        format!(
            "{p}SELECT ?i ?x ?n WHERE {{\n\
               ?i a food:Ingredient .\n\
               OPTIONAL {{ ?i food:availableInSeason ?x }}\n\
               ?i food:hasNutrient ?n .\n\
             }}"
        ),
        // Aggregate on top of a join.
        format!(
            "{p}SELECT ?r (COUNT(?i) AS ?k) WHERE {{\n\
               ?r food:hasIngredient ?i .\n\
             }} GROUP BY ?r"
        ),
    ]
}

/// The engine's own pipeline: generate, assemble, materialize.
fn materialized_graph(recipes: usize, seed: u64) -> Graph {
    let kg = synthetic(&SyntheticConfig {
        recipes,
        ingredients: recipes / 2 + 10,
        seed,
        ..Default::default()
    });
    let user = UserProfile::new("u")
        .likes(&[&kg.recipes[0].id])
        .allergies(&[&kg.ingredients[0].id]);
    let ctx = SystemContext::new(Season::Autumn);
    let mut g = assemble(&kg, &user, &ctx);
    Reasoner::new()
        .materialize(&mut g, &Default::default())
        .expect("unguarded materialization converges");
    g
}

fn segment_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("feo-joineq-{}-{tag}.seg", std::process::id()))
}

/// Extra cross-links layered over a base so overlay-backed runs merge a
/// real delta (duplicates against the base are no-ops, so every insert
/// here is chosen to be new).
fn extend_delta(delta: &mut impl GraphStore) {
    let ing0 = FoodKg::iri("SynIngredient0");
    let ing1 = FoodKg::iri("SynIngredient1");
    for r in 0..4 {
        let recipe = FoodKg::iri(&format!("DeltaRecipe{r}"));
        delta.insert_iris(
            &recipe,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
            "http://purl.org/heals/food#Recipe",
        );
        delta.insert_iris(&recipe, "http://purl.org/heals/food#hasIngredient", &ing0);
        if r % 2 == 0 {
            delta.insert_iris(&recipe, "http://purl.org/heals/food#hasIngredient", &ing1);
        }
    }
}

/// Byte-level table identity: the row *order* must match, not just the
/// multiset — the determinism contract says the physical operator is
/// invisible in the output.
fn rows(result: QueryResult) -> Vec<Vec<String>> {
    result.expect_solutions().local_rows().to_vec()
}

/// Every (force, parallelism) combination must reproduce the reference
/// table byte-for-byte on the given view.
fn assert_all_combos_identical<G: GraphView + Sync + Copy>(view: G, q: &str, backend: &str) {
    let reference = rows(
        query(
            view,
            q,
            &QueryOptions {
                force_join: Some(JoinAlgo::Hash),
                ..Default::default()
            },
        )
        .expect("hash reference evaluates"),
    );
    for force in FORCES {
        for parallelism in MODES {
            let opts = QueryOptions {
                force_join: force,
                parallelism,
                ..Default::default()
            };
            let got = rows(query(view, q, &opts).expect("forced evaluation evaluates"));
            assert_eq!(
                got, reference,
                "{backend}: force={force:?} {parallelism:?} diverged on:\n{q}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Forced hash / merge / leapfrog / nested and the planner's own
    /// choice return byte-identical row-ordered tables on the in-memory
    /// backend and on overlay deltas stacked over it.
    #[test]
    fn forced_algorithms_match_in_memory(
        recipes in 15usize..45,
        seed in 0u64..10_000,
    ) {
        let g = materialized_graph(recipes, seed);
        let mut overlay = Overlay::new(&g);
        extend_delta(&mut overlay);
        for q in equivalence_queries() {
            assert_all_combos_identical(&g, &q, "memory");
            assert_all_combos_identical(&overlay, &q, "memory+overlay");
        }
    }

    /// The same contract over mmap segment runs: the segment's gallop
    /// cursors and the overlay's merged cursors must be order-identical
    /// to the hash path.
    #[test]
    fn forced_algorithms_match_on_segment(
        recipes in 15usize..35,
        seed in 0u64..10_000,
    ) {
        let g = materialized_graph(recipes, seed);
        let path = segment_path(&format!("{recipes}-{seed}"));
        write_segment(&path, &g, g.stats(), 0).expect("segment writes");
        let seg = Segment::open(&path, true).expect("segment opens");
        let mut overlay = Overlay::new(&seg);
        extend_delta(&mut overlay);
        for q in equivalence_queries() {
            assert_all_combos_identical(&seg, &q, "segment");
            assert_all_combos_identical(&overlay, &q, "segment+overlay");
        }
        drop(overlay);
        drop(seg);
        let _ = std::fs::remove_file(&path);
    }

    /// Under a guard, every forced operator either returns exactly the
    /// unguarded table or fails with a typed `Exhausted` — never a
    /// silently partial table. (Operators legitimately differ in
    /// *whether* they trip: leapfrog produces no intermediate rows where
    /// hash would.)
    #[test]
    fn guarded_forced_runs_are_exact_or_exhausted(
        recipes in 15usize..40,
        seed in 0u64..10_000,
        max_solutions in 1u64..400,
    ) {
        let g = materialized_graph(recipes, seed);
        let budget = Budget::new().with_max_solutions(max_solutions);
        for q in equivalence_queries() {
            let reference = rows(
                query(&g, &q, &Default::default()).expect("unguarded evaluates"),
            );
            for force in FORCES {
                let guard = budget.start();
                let opts = QueryOptions {
                    guard: Some(&guard),
                    force_join: force,
                    ..Default::default()
                };
                match query(&g, &q, &opts) {
                    Ok(result) => prop_assert_eq!(
                        &rows(result),
                        &reference,
                        "guarded force={:?} returned a different table on seed {}",
                        force, seed
                    ),
                    Err(SparqlError::Exhausted(_)) => {}
                    Err(other) => prop_assert!(
                        false,
                        "force={:?} failed with a non-budget error: {:?}",
                        force, other
                    ),
                }
            }
        }
    }
}

// ---- EXPLAIN determinism ------------------------------------------------

/// The cost-based planner pins the algorithm choice: the same query over
/// the same graph renders the same plan twice, and the ground-object
/// star compiles to a fused leapfrog group.
#[test]
fn explain_pins_leapfrog_star_deterministically() {
    let g = materialized_graph(30, 7);
    let q = &equivalence_queries()[0];
    let explain = |g: &Graph| -> String {
        match query(
            g,
            q,
            &QueryOptions {
                explain: true,
                planner: Planner::CostBased,
                ..Default::default()
            },
        )
        .expect("explain evaluates")
        {
            QueryResult::Plan(p) => p,
            other => panic!("EXPLAIN returned {other:?}"),
        }
    };
    let first = explain(&g);
    let second = explain(&g);
    assert_eq!(first, second, "EXPLAIN must be deterministic");
    assert!(
        first.contains("join=leapfrog"),
        "ground-object star must plan as leapfrog:\n{first}"
    );
}
