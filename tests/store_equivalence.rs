//! Differential store equivalence: the mmap-backed disk store is a
//! *representation* change, never a semantics change. For seeded
//! synthetic KGs, an engine reopened from a persistent store
//! (`EngineBase::save_to` → `EngineBase::open`) must answer every
//! CQ1–CQ3 explanation and every probe query byte-identically to a
//! freshly built in-memory engine — under all three planners and both
//! parallelism modes. Commits replay through the WAL to the same
//! epochs, the same layer sizes, and the same tamper-evidence hashes;
//! compaction folds the WAL without perturbing a single byte of any
//! answer.
//!
//! `ExplainOptions::parallelism` defaults to `Parallelism::Auto`,
//! which honours `FEO_THREADS` — ci runs this suite under
//! `FEO_THREADS=1` and `FEO_THREADS=4`; the explicit
//! `Off`/`Fixed(4)` loop below pins both paths in a single run too.

use feo::core::ecosystem::{apply_hypothesis, assert_question};
use feo::core::{EngineBase, EpochId, ExplainOptions, Hypothesis, Question, ToJson};
use feo::foodkg::{
    random_profiles, synthetic, user_to_rdf, FoodKg, Season, SyntheticConfig, SystemContext,
    UserProfile,
};
use feo::ontology::ns::sparql_prologue;
use feo::rdf::{GraphStore, Parallelism};
use feo::sparql::Planner;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const PLANNERS: [Planner; 3] = [Planner::Off, Planner::Greedy, Planner::CostBased];
const MODES: [Parallelism; 2] = [Parallelism::Off, Parallelism::Fixed(4)];

/// A unique, self-cleaning store directory per proptest case.
fn store_dir(tag: &str, recipes: usize, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "feo-store-eq-{tag}-{}-{recipes}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn world(recipes: usize, seed: u64) -> (FoodKg, UserProfile) {
    let kg = synthetic(&SyntheticConfig {
        recipes,
        ingredients: recipes / 2 + 10,
        seed,
        ..Default::default()
    });
    let user = random_profiles(&kg, 1, seed)
        .pop()
        .unwrap_or_else(|| UserProfile::new("u"))
        .likes(&[&kg.recipes[0].id]);
    (kg, user)
}

/// Builds the memory reference and its disk twin: one throwaway build
/// persists the store, a *fresh* build stays purely in memory (no
/// store attached), and `open` memory-maps the persisted segment.
fn twin_engines(
    kg: &FoodKg,
    user: &UserProfile,
    dir: &Path,
) -> Result<(EngineBase, EngineBase), TestCaseError> {
    let ctx = SystemContext::new(Season::Autumn);
    let mut builder = EngineBase::new(kg.clone(), user.clone(), ctx)
        .map_err(|e| TestCaseError::fail(format!("build: {e}")))?;
    builder
        .save_to(dir)
        .map_err(|e| TestCaseError::fail(format!("save_to: {e}")))?;
    drop(builder);

    let mem = EngineBase::new(kg.clone(), user.clone(), SystemContext::new(Season::Autumn))
        .map_err(|e| TestCaseError::fail(format!("rebuild: {e}")))?;
    let disk = EngineBase::open(
        dir,
        kg.clone(),
        user.clone(),
        SystemContext::new(Season::Autumn),
    )
    .map_err(|e| TestCaseError::fail(format!("open: {e}")))?;
    prop_assert!(disk.store().is_some(), "open attaches the disk store");
    Ok((mem, disk))
}

/// The paper's three competency questions over the generated recipes.
fn cq_questions(kg: &FoodKg) -> Vec<Question> {
    vec![
        Question::WhyEat {
            food: kg.recipes[0].id.clone(),
        },
        Question::WhyEatOver {
            preferred: kg.recipes[0].id.clone(),
            alternative: kg.recipes[1 % kg.recipes.len()].id.clone(),
        },
        Question::WhatIf {
            hypothesis: Hypothesis::Pregnant,
        },
    ]
}

/// Join-heavy probe queries with real rows at epoch 0 (the CQ
/// templates themselves bind per-session question individuals, which
/// `explain_fingerprint` covers through the session path).
fn probe_queries() -> Vec<String> {
    let p = sparql_prologue();
    vec![
        format!(
            "{p}SELECT ?r ?i ?n WHERE {{\n\
               ?r a food:Recipe .\n\
               ?r food:hasIngredient ?i .\n\
               ?i food:hasNutrient ?n .\n\
             }} ORDER BY ?r ?i ?n"
        ),
        format!("{p}SELECT ?r ?n WHERE {{ ?r (food:hasIngredient/food:hasNutrient) ?n }} ORDER BY ?r ?n"),
    ]
}

/// Everything observable about one explanation: the rendered sentence,
/// the supporting statements, the raw binding rows, and the serialized
/// JSON the HTTP service would ship.
fn explain_fingerprint(
    base: &EngineBase,
    epoch: EpochId,
    question: &Question,
    planner: Planner,
    parallelism: Parallelism,
) -> Result<String, TestCaseError> {
    let opts = ExplainOptions {
        guard: None,
        planner,
        parallelism,
    };
    let e = base
        .explain_as_of(epoch, question, &opts)
        .map_err(|e| TestCaseError::fail(format!("explain_as_of: {e}")))?;
    Ok(format!(
        "{}|{:?}|{:?}|{}",
        e.answer,
        e.statements,
        e.bindings.rows,
        e.to_json()
    ))
}

/// A raw query's full serialized result through an epoch session.
fn query_fingerprint(
    base: &EngineBase,
    epoch: EpochId,
    sparql: &str,
    planner: Planner,
    parallelism: Parallelism,
) -> Result<String, TestCaseError> {
    let mut session = base
        .at_epoch(epoch)
        .ok_or_else(|| TestCaseError::fail(format!("epoch {} off the chain", epoch.0)))?;
    let opts = ExplainOptions {
        guard: None,
        planner,
        parallelism,
    };
    let result = session
        .query_opts(sparql, &opts)
        .map_err(|e| TestCaseError::fail(format!("query: {e}")))?;
    Ok(result.to_json())
}

/// One comparable line per history row — the whole chain including the
/// tamper-evidence hashes.
fn history_fingerprint(base: &EngineBase) -> Vec<String> {
    base.history()
        .iter()
        .map(|c| {
            format!(
                "{}|{}|{}|{}|{}|{:016x}",
                c.epoch.0, c.label, c.triples, c.terms, c.inferred, c.hash
            )
        })
        .collect()
}

/// The same seeded ABox delta `tests/ledger.rs` commits: a newcomer
/// profile, a hypothesis, and a question individual.
fn write_delta(g: &mut impl GraphStore, kg: &FoodKg, user: &UserProfile, seed: u64) {
    let newcomer = random_profiles(kg, 1, seed ^ 0xBEEF)
        .pop()
        .unwrap_or_else(|| UserProfile::new("newcomer"));
    user_to_rdf(&newcomer, g);
    let hypothesis = match seed % 3 {
        0 => Hypothesis::Pregnant,
        1 => Hypothesis::FollowedDiet("Vegan".into()),
        _ => Hypothesis::AllergicTo("Broccoli".into()),
    };
    apply_hypothesis(&hypothesis, user, g);
    assert_question(
        &Question::WhyEat {
            food: format!("R{}", seed % 7),
        },
        g,
    );
}

/// Asserts the two backends are observably indistinguishable at every
/// epoch on the chain: closure size, dictionary size, history chain,
/// every CQ explanation, and every probe query, across all planners
/// and both parallelism modes.
fn assert_twins_equal(
    mem: &EngineBase,
    disk: &EngineBase,
    kg: &FoodKg,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        mem.graph().len(),
        disk.graph().len(),
        "{}: base size",
        label
    );
    prop_assert_eq!(
        mem.graph().term_count(),
        disk.graph().term_count(),
        "{}: dictionary size",
        label
    );
    prop_assert_eq!(mem.head(), disk.head(), "{}: head epoch", label);
    prop_assert_eq!(
        history_fingerprint(mem),
        history_fingerprint(disk),
        "{}: history chain (labels, sizes, hashes)",
        label
    );
    for epoch in (0..=mem.head().0).map(EpochId) {
        for planner in PLANNERS {
            for parallelism in MODES {
                for q in cq_questions(kg) {
                    prop_assert_eq!(
                        explain_fingerprint(mem, epoch, &q, planner, parallelism)?,
                        explain_fingerprint(disk, epoch, &q, planner, parallelism)?,
                        "{}: {:?} diverged at epoch {} ({:?}, {:?})",
                        label,
                        q,
                        epoch.0,
                        planner,
                        parallelism
                    );
                }
                for sparql in probe_queries() {
                    prop_assert_eq!(
                        query_fingerprint(mem, epoch, &sparql, planner, parallelism)?,
                        query_fingerprint(disk, epoch, &sparql, planner, parallelism)?,
                        "{}: query diverged at epoch {} ({:?}, {:?}):\n{}",
                        label,
                        epoch.0,
                        planner,
                        parallelism,
                        sparql
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Epoch 0 over the mmap segment answers byte-identically to the
    /// freshly materialized in-memory graph.
    #[test]
    fn sealed_base_is_byte_identical_across_backends(
        recipes in 10usize..24,
        seed in 0u64..10_000,
    ) {
        let (kg, user) = world(recipes, seed);
        let dir = store_dir("base", recipes, seed);
        let (mem, disk) = twin_engines(&kg, &user, &dir)?;
        assert_twins_equal(&mem, &disk, &kg, "sealed base")?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The same commit chain applied to both backends lands on the
    /// same epochs, hashes, and answers — and a *third* engine that
    /// replays the WAL from disk (warm reopen) matches both.
    #[test]
    fn committed_chains_replay_identically(
        recipes in 10usize..24,
        seed in 0u64..10_000,
        commits in 1usize..4,
    ) {
        let (kg, user) = world(recipes, seed);
        let dir = store_dir("chain", recipes, seed);
        let (mut mem, mut disk) = twin_engines(&kg, &user, &dir)?;

        for i in 0..commits {
            let delta_seed = seed.wrapping_add(i as u64).wrapping_mul(0x9E37);
            let mem_epoch = mem.commit_with("delta", |overlay| {
                write_delta(overlay, &kg, &user, delta_seed);
            });
            let disk_epoch = disk.commit_with("delta", |overlay| {
                write_delta(overlay, &kg, &user, delta_seed);
            });
            prop_assert_eq!(mem_epoch, disk_epoch, "commit {} epoch", i);
        }
        assert_twins_equal(&mem, &disk, &kg, "committed chain")?;

        // Warm reopen: the WAL-appended commits replay from disk.
        let reopened = EngineBase::open(
            &dir,
            kg.clone(),
            user.clone(),
            SystemContext::new(Season::Autumn),
        )
        .map_err(|e| TestCaseError::fail(format!("reopen: {e}")))?;
        assert_twins_equal(&mem, &reopened, &kg, "warm reopen")?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Compaction folds the WAL into a fresh segment without changing
    /// the head's answers — before, after, and after yet another
    /// reopen of the compacted store.
    #[test]
    fn compaction_preserves_head_answers(
        recipes in 10usize..20,
        seed in 0u64..10_000,
    ) {
        let (kg, user) = world(recipes, seed);
        let dir = store_dir("compact", recipes, seed);
        let (mut mem, mut disk) = twin_engines(&kg, &user, &dir)?;
        mem.commit_with("delta", |overlay| write_delta(overlay, &kg, &user, seed));
        disk.commit_with("delta", |overlay| write_delta(overlay, &kg, &user, seed));

        let head = disk.head();
        let before: Vec<String> = cq_questions(&kg)
            .iter()
            .map(|q| explain_fingerprint(&disk, head, q, Planner::CostBased, Parallelism::Off))
            .collect::<Result<_, _>>()?;

        disk.compact().map_err(|e| TestCaseError::fail(format!("compact: {e}")))?;
        prop_assert_eq!(disk.head(), EpochId(0), "compaction reseals the chain");
        prop_assert_eq!(disk.history().len(), 1, "history collapses to the new base");

        let after: Vec<String> = cq_questions(&kg)
            .iter()
            .map(|q| {
                explain_fingerprint(&disk, EpochId(0), q, Planner::CostBased, Parallelism::Off)
            })
            .collect::<Result<_, _>>()?;
        prop_assert_eq!(&before, &after, "compaction changed a head answer");

        // The in-memory engine's head agrees with the compacted base.
        let mem_head: Vec<String> = cq_questions(&kg)
            .iter()
            .map(|q| explain_fingerprint(&mem, mem.head(), q, Planner::CostBased, Parallelism::Off))
            .collect::<Result<_, _>>()?;
        prop_assert_eq!(&before, &mem_head, "compacted store diverged from memory head");

        let reopened = EngineBase::open(
            &dir,
            kg.clone(),
            user.clone(),
            SystemContext::new(Season::Autumn),
        )
        .map_err(|e| TestCaseError::fail(format!("reopen compacted: {e}")))?;
        let again: Vec<String> = cq_questions(&kg)
            .iter()
            .map(|q| {
                explain_fingerprint(&reopened, EpochId(0), q, Planner::CostBased, Parallelism::Off)
            })
            .collect::<Result<_, _>>()?;
        prop_assert_eq!(&before, &again, "reopened compacted store diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
