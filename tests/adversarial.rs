//! Fault-injection harness: the whole pipeline under hostile inputs.
//!
//! Contract asserted for every case: no panic, a typed `Exhausted` /
//! syntax error or a bounded partial result, and wall-clock time bounded
//! by the deadline (plus scheduling slack). The pathological inputs come
//! from `feo_foodkg::adversarial`.

use std::time::{Duration, Instant};

use feo_foodkg::adversarial::{
    closure_blowup_turtle, cyclic_subclass_turtle, deep_transitive_chain_turtle,
    malformed_turtle_corpus,
};
use feo_owl::{MaterializeOptions, Reasoner, ReasonerError};
use feo_rdf::governor::{Budget, CancelFlag, Guard, Resource};
use feo_rdf::turtle::{parse_turtle, parse_turtle_into};
use feo_rdf::{Graph, ParseOptions, RdfError};
use feo_sparql::{query, QueryOptions, SparqlError};

/// Generous ceiling for "the governor actually stopped the work": each
/// case sets a deadline in the tens of milliseconds; a run that takes
/// longer than this either ignored the guard or looped.
const HARD_CEILING: Duration = Duration::from_secs(20);

fn load(src: &str) -> Graph {
    let mut g = Graph::new();
    parse_turtle_into(src, &mut g, &Default::default()).expect("adversarial fixture parses");
    g
}

#[test]
fn malformed_turtle_yields_typed_positioned_errors() {
    let guard = Guard::default();
    for doc in malformed_turtle_corpus() {
        match parse_turtle(
            doc,
            &ParseOptions {
                guard: Some(&guard),
            },
        ) {
            Err(RdfError::Syntax(e)) => {
                assert!(e.line >= 1 && e.column >= 1, "position for {doc:?}");
            }
            Err(RdfError::Exhausted(e)) => panic!("unlimited guard tripped: {e}"),
            Err(RdfError::Store(e)) => panic!("parser surfaced a store error: {e}"),
            Ok(_) => panic!("malformed document parsed: {doc:?}"),
        }
    }
}

#[test]
fn subclass_cycle_terminates_and_stays_consistent() {
    let started = Instant::now();
    let mut g = load(&cyclic_subclass_turtle(64));
    let guard = Budget::new().with_deadline(Duration::from_secs(10)).start();
    let result = Reasoner::new()
        .materialize(&mut g, &MaterializeOptions::guarded(&guard))
        .expect("a subclass cycle is legal OWL and must close within budget");
    assert!(result.converged);
    // Every class in the cycle is equivalent: the victim gets all 64.
    let victim = g.lookup_iri("http://adversarial/victim").unwrap();
    let ty = g
        .lookup_iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        .unwrap();
    for i in 0..64 {
        let c = g.lookup_iri(&format!("http://adversarial/C{i}")).unwrap();
        assert!(g.contains_ids(victim, ty, c), "victim typed C{i}");
    }
    assert!(started.elapsed() < HARD_CEILING);
}

#[test]
fn deep_transitive_chain_is_cut_by_inference_budget() {
    let started = Instant::now();
    // 10k-deep chain: the full closure would be ~50M pairs. The budget
    // stops it after 100k derived triples.
    let mut g = load(&deep_transitive_chain_turtle(10_000));
    let guard = Budget::new()
        .with_max_inferred(100_000)
        .with_deadline(Duration::from_secs(15))
        .start();
    let err = Reasoner::new()
        .materialize(&mut g, &MaterializeOptions::guarded(&guard))
        .expect_err("50M-pair closure cannot fit a 100k budget");
    let ReasonerError::Exhausted { exhausted, partial } = err;
    assert!(
        exhausted.resource == Resource::InferredTriples
            || exhausted.resource == Resource::WallClock,
        "tripped on {exhausted}"
    );
    // The partial closure is sound: whatever was derived is in the graph.
    assert!(partial.added > 0, "partial result carries derived triples");
    assert!(started.elapsed() < HARD_CEILING);
}

#[test]
fn closure_blowup_is_cut_by_round_or_triple_budget() {
    let started = Instant::now();
    let mut g = load(&closure_blowup_turtle(40, 4));
    let guard = Budget::new()
        .with_max_rounds(5)
        .with_deadline(Duration::from_secs(10))
        .start();
    // Membership cascades one equivalence level per round; 40 levels
    // cannot finish in 5 rounds.
    let err = Reasoner::new()
        .materialize(&mut g, &MaterializeOptions::guarded(&guard))
        .expect_err("40-level cascade cannot fit 5 rounds");
    let ReasonerError::Exhausted { exhausted, partial } = err;
    assert_eq!(exhausted.resource, Resource::Rounds);
    assert!(!partial.converged, "partial result is marked non-converged");
    assert!(started.elapsed() < HARD_CEILING);
}

#[test]
fn pathological_query_on_pathological_graph_is_bounded() {
    let started = Instant::now();
    let mut g = load(&deep_transitive_chain_turtle(300));
    // Close what a small budget allows, keep the partial graph.
    let guard = Budget::new().with_max_inferred(5_000).start();
    let _ = Reasoner::new().materialize(&mut g, &MaterializeOptions::guarded(&guard));
    // Then hit the partial closure with a cross-product query under a
    // fresh solution budget.
    let guard = Budget::new()
        .with_max_solutions(10_000)
        .with_deadline(Duration::from_secs(10))
        .start();
    let err = query(
        &g,
        "SELECT * WHERE { ?a ?p ?b . ?c ?q ?d }",
        &QueryOptions::guarded(&guard),
    )
    .expect_err("cross-product over thousands of triples must trip");
    match err {
        SparqlError::Exhausted(e) => assert!(
            e.resource == Resource::Solutions || e.resource == Resource::WallClock,
            "tripped on {e}"
        ),
        other => panic!("expected Exhausted, got {other:?}"),
    }
    assert!(started.elapsed() < HARD_CEILING);
}

#[test]
fn cancellation_interrupts_materialization() {
    let mut g = load(&deep_transitive_chain_turtle(2_000));
    let flag = CancelFlag::new();
    flag.cancel();
    let guard = Budget::new().with_cancel(flag).start();
    let err = Reasoner::new()
        .materialize(&mut g, &MaterializeOptions::guarded(&guard))
        .expect_err("pre-cancelled run must stop");
    assert_eq!(err.exhausted().resource, Resource::Cancelled);
}

#[test]
fn oversized_documents_are_rejected_before_parsing() {
    let src = deep_transitive_chain_turtle(1_000);
    let guard = Budget::new().with_max_input_bytes(1024).start();
    match parse_turtle(
        &src,
        &ParseOptions {
            guard: Some(&guard),
        },
    ) {
        Err(RdfError::Exhausted(e)) => {
            assert_eq!(e.resource, Resource::InputSize);
            assert!(e.spent as usize == src.len());
        }
        other => panic!("expected input-size trip, got {other:?}"),
    }
}

#[test]
fn end_to_end_engine_survives_budget_exhaustion() {
    use feo_core::{EngineBase, Question};
    use feo_foodkg::{curated, Season, SystemContext, UserProfile};

    let base = EngineBase::new(
        curated(),
        UserProfile::new("user").allergies(&["Broccoli"]),
        SystemContext::new(Season::Autumn),
    )
    .unwrap();
    let questions = vec![
        Question::WhyEat {
            food: "CauliflowerPotatoCurry".into(),
        },
        Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        },
    ];
    // A budget too small for the batch: the engine must return what it
    // could do plus a degradation report, not an error or a panic.
    let budget = Budget::new().with_max_solutions(1);
    let outcome = base.explain_with_budget(&questions, &budget).unwrap();
    let report = outcome.degradation.expect("budget must trip");
    assert_eq!(report.exhausted.resource, Resource::Solutions);
    assert_eq!(
        report.completed.len() + report.skipped.len(),
        questions.len()
    );
}
