//! Integration tests for the `feo` CLI binary.

use std::process::Command;

fn feo(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_feo"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn recommend_ranks_and_reports_eliminations() {
    let (stdout, _, ok) = feo(&[
        "recommend",
        "--allergies",
        "Broccoli",
        "--diet",
        "Vegetarian",
        "--top",
        "5",
    ]);
    assert!(ok);
    assert!(stdout.contains("Recommendations"));
    assert!(stdout.contains("Eliminated by hard constraints"));
    assert!(
        !stdout.contains("BroccoliCheddarSoup\n"),
        "allergen dish not ranked"
    );
    assert!(stdout.contains("allergen Broccoli"));
}

#[test]
fn explain_why_over_reproduces_cq2() {
    let (stdout, _, ok) = feo(&[
        "explain",
        "why-over",
        "ButternutSquashSoup",
        "BroccoliCheddarSoup",
        "--likes",
        "BroccoliCheddarSoup",
        "--allergies",
        "Broccoli",
    ]);
    assert!(ok);
    assert!(stdout.contains("SeasonCharacteristic"));
    assert!(stdout.contains("AllergicFoodCharacteristic"));
    assert!(stdout.contains("allergic to Broccoli"));
}

#[test]
fn explain_what_if_pregnant() {
    let (stdout, _, ok) = feo(&["explain", "what-if-pregnant", "--likes", "Sushi"]);
    assert!(ok);
    assert!(stdout.contains("forbidden from eating Sushi"));
    assert!(stdout.contains("Spinach Frittata"));
}

#[test]
fn proof_renders_rule_chain() {
    let (stdout, _, ok) = feo(&[
        "proof",
        "Broccoli",
        "foil",
        "--likes",
        "BroccoliCheddarSoup",
        "--allergies",
        "Broccoli",
    ]);
    assert!(ok);
    assert!(stdout.contains("[cls]"));
    assert!(stdout.contains("[asserted]"));
    assert!(stdout.contains("prp-spo2"), "chain rule appears: {stdout}");
}

#[test]
fn query_runs_sparql_with_default_prefixes() {
    let (stdout, _, ok) = feo(&[
        "query",
        "SELECT (COUNT(?r) AS ?n) WHERE { ?r a food:Recipe }",
    ]);
    assert!(ok);
    assert!(stdout.contains("32"), "32 curated recipes: {stdout}");
}

#[test]
fn export_produces_parseable_turtle() {
    let (stdout, _, ok) = feo(&["export", "--raw"]);
    assert!(ok);
    let mut g = feo::rdf::Graph::new();
    feo::rdf::turtle::parse_turtle_into(&stdout, &mut g, &Default::default())
        .expect("export parses");
    assert!(g.len() > 500);
}

#[test]
fn list_shows_inventory() {
    let (stdout, _, ok) = feo(&["list"]);
    assert!(ok);
    assert!(stdout.contains("ButternutSquashSoup"));
    assert!(stdout.contains("Vegetarian"));
    assert!(stdout.contains("HighProteinGoal"));
}

#[test]
fn history_prints_the_epoch_chain() {
    let (stdout, _, ok) = feo(&["history", "--commit", "pregnant", "--commit", "diet:Vegan"]);
    assert!(ok);
    assert!(stdout.contains("Epoch ledger (2 commits)"), "{stdout}");
    assert!(stdout.contains("#0"), "base row: {stdout}");
    assert!(stdout.contains("pregnant"), "commit label: {stdout}");
    assert!(stdout.contains("diet:Vegan"), "commit label: {stdout}");
    assert!(stdout.contains("chain OK"), "hash chain verifies: {stdout}");
}

#[test]
fn query_as_of_travels_to_an_old_epoch() {
    // Epoch 0 predates the pregnancy commit, so the count of pregnancy
    // characteristics is strictly smaller there than at epoch 1, where
    // the commit asserted one on the user.
    let q = "SELECT (COUNT(?u) AS ?n) WHERE { ?u feo:hasCharacteristic feo:Pregnancy }";
    let count = |stdout: &str| -> usize {
        stdout
            .split('|')
            .filter_map(|cell| cell.trim().parse().ok())
            .next()
            .unwrap_or_else(|| panic!("no count in: {stdout}"))
    };
    let (at0, _, ok0) = feo(&["query", q, "--as-of", "0", "--commit", "pregnant"]);
    let (at1, _, ok1) = feo(&["query", q, "--as-of", "1", "--commit", "pregnant"]);
    assert!(ok0 && ok1);
    assert_eq!(
        count(&at0) + 1,
        count(&at1),
        "the commit adds exactly the user's pregnancy: {at0} vs {at1}"
    );

    // Past the head is a clean error, not a panic.
    let (_, stderr, ok) = feo(&["query", q, "--as-of", "9", "--commit", "pregnant"]);
    assert!(!ok);
    assert!(stderr.contains("epoch"), "{stderr}");
}

#[test]
fn explain_as_of_reproduces_the_old_answer() {
    let args_tail = [
        "--likes",
        "ButternutSquashSoup",
        "--commit",
        "allergic:Broccoli",
    ];
    let mut at1 = vec!["explain", "why-eat", "ButternutSquashSoup", "--as-of", "1"];
    at1.extend_from_slice(&args_tail);
    let (stdout, _, ok) = feo(&at1);
    assert!(ok);
    assert!(stdout.contains("as of epoch 1"), "{stdout}");
    assert!(stdout.contains("SeasonCharacteristic"), "{stdout}");
    assert!(stdout.contains("A: "), "{stdout}");
}

#[test]
fn branch_create_diff_and_list() {
    let (stdout, _, ok) = feo(&[
        "branch", "create", "trial", "--from", "0", "--apply", "pregnant",
    ]);
    assert!(ok);
    assert!(
        stdout.contains("branch 'trial' forked at epoch 0"),
        "{stdout}"
    );
    assert!(stdout.contains("diverges from main by +3"), "{stdout}");

    let (stdout, _, ok) = feo(&[
        "branch",
        "diff",
        "whatif",
        "main",
        "--branch",
        "whatif=pregnant",
    ]);
    assert!(ok);
    assert!(stdout.contains("only in 'whatif' (3)"), "{stdout}");
    assert!(stdout.contains("Pregnancy"), "{stdout}");
    assert!(stdout.contains("only in 'main' (0)"), "{stdout}");

    let (stdout, _, ok) = feo(&[
        "branch",
        "list",
        "--commit",
        "allergic:Broccoli",
        "--branch",
        "whatif=pregnant",
    ]);
    assert!(ok);
    assert!(stdout.contains("main: head 1"), "{stdout}");
    assert!(stdout.contains("whatif"), "{stdout}");
    assert!(stdout.contains("fork #1"), "{stdout}");

    // Reserved and unknown names fail cleanly.
    let (_, stderr, ok) = feo(&["branch", "create", "main"]);
    assert!(!ok);
    assert!(!stderr.is_empty());
    let (_, stderr, ok) = feo(&["branch", "diff", "ghost", "main"]);
    assert!(!ok);
    assert!(stderr.contains("ghost"), "{stderr}");
}

#[test]
fn bad_input_fails_cleanly() {
    let (_, stderr, ok) = feo(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (_, stderr, ok) = feo(&["explain", "why-eat"]);
    assert!(!ok);
    assert!(stderr.contains("needs a food id"));
    let (_, stderr, ok) = feo(&["query", "SELECT WHERE"]);
    assert!(!ok);
    assert!(!stderr.is_empty());
}
