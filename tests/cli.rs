//! Integration tests for the `feo` CLI binary.

use std::process::Command;

fn feo(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_feo"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn recommend_ranks_and_reports_eliminations() {
    let (stdout, _, ok) = feo(&[
        "recommend",
        "--allergies",
        "Broccoli",
        "--diet",
        "Vegetarian",
        "--top",
        "5",
    ]);
    assert!(ok);
    assert!(stdout.contains("Recommendations"));
    assert!(stdout.contains("Eliminated by hard constraints"));
    assert!(
        !stdout.contains("BroccoliCheddarSoup\n"),
        "allergen dish not ranked"
    );
    assert!(stdout.contains("allergen Broccoli"));
}

#[test]
fn explain_why_over_reproduces_cq2() {
    let (stdout, _, ok) = feo(&[
        "explain",
        "why-over",
        "ButternutSquashSoup",
        "BroccoliCheddarSoup",
        "--likes",
        "BroccoliCheddarSoup",
        "--allergies",
        "Broccoli",
    ]);
    assert!(ok);
    assert!(stdout.contains("SeasonCharacteristic"));
    assert!(stdout.contains("AllergicFoodCharacteristic"));
    assert!(stdout.contains("allergic to Broccoli"));
}

#[test]
fn explain_what_if_pregnant() {
    let (stdout, _, ok) = feo(&["explain", "what-if-pregnant", "--likes", "Sushi"]);
    assert!(ok);
    assert!(stdout.contains("forbidden from eating Sushi"));
    assert!(stdout.contains("Spinach Frittata"));
}

#[test]
fn proof_renders_rule_chain() {
    let (stdout, _, ok) = feo(&[
        "proof",
        "Broccoli",
        "foil",
        "--likes",
        "BroccoliCheddarSoup",
        "--allergies",
        "Broccoli",
    ]);
    assert!(ok);
    assert!(stdout.contains("[cls]"));
    assert!(stdout.contains("[asserted]"));
    assert!(stdout.contains("prp-spo2"), "chain rule appears: {stdout}");
}

#[test]
fn query_runs_sparql_with_default_prefixes() {
    let (stdout, _, ok) = feo(&[
        "query",
        "SELECT (COUNT(?r) AS ?n) WHERE { ?r a food:Recipe }",
    ]);
    assert!(ok);
    assert!(stdout.contains("32"), "32 curated recipes: {stdout}");
}

#[test]
fn export_produces_parseable_turtle() {
    let (stdout, _, ok) = feo(&["export", "--raw"]);
    assert!(ok);
    let mut g = feo::rdf::Graph::new();
    feo::rdf::turtle::parse_turtle_into(&stdout, &mut g, &Default::default())
        .expect("export parses");
    assert!(g.len() > 500);
}

#[test]
fn list_shows_inventory() {
    let (stdout, _, ok) = feo(&["list"]);
    assert!(ok);
    assert!(stdout.contains("ButternutSquashSoup"));
    assert!(stdout.contains("Vegetarian"));
    assert!(stdout.contains("HighProteinGoal"));
}

#[test]
fn bad_input_fails_cleanly() {
    let (_, stderr, ok) = feo(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (_, stderr, ok) = feo(&["explain", "why-eat"]);
    assert!(!ok);
    assert!(stderr.contains("needs a food id"));
    let (_, stderr, ok) = feo(&["query", "SELECT WHERE"]);
    assert!(!ok);
    assert!(!stderr.is_empty());
}
