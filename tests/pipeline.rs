//! Workspace integration tests: the full pipeline exercised through the
//! `feo` facade, across every crate boundary — KG → recommender →
//! ontology assembly → reasoner → SPARQL → explanation, plus export
//! fidelity (the paper's "export the ontology with the inferred axioms"
//! step round-tripped through Turtle).

use feo::core::{
    competency, scenario_a, scenario_b, scenario_c, ExplanationEngine, Population, Question,
};
use feo::foodkg::{
    curated, synthetic, FoodKg, Season, SyntheticConfig, SystemContext, UserProfile,
};
use feo::rdf::turtle::{parse_turtle_into, write_turtle};
use feo::rdf::{Graph, GraphView};
use feo::recommender::{HealthCoach, PopularityRecommender, Recommender};
use feo::sparql::query;

#[test]
fn paper_competency_questions_reproduce() {
    let outcomes = competency::all().expect("all CQs run");
    assert_eq!(outcomes.len(), 3);
    for o in &outcomes {
        assert!(
            o.expected_found,
            "{}: expected rows missing:\n{}",
            o.scenario.name, o.bindings
        );
    }
    // CQ1 and CQ2 match the paper exactly; CQ3 has one extra row from the
    // richer curated KG (documented in EXPERIMENTS.md).
    assert_eq!(outcomes[0].extra_rows, 0, "CQ1 exact");
    assert_eq!(outcomes[1].extra_rows, 0, "CQ2 exact");
    assert!(outcomes[2].extra_rows <= 1, "CQ3 shape");
}

#[test]
fn recommend_then_explain_round_trip() {
    // The deployment loop: Health Coach recommends, FEO explains, and the
    // explanation is consistent with the recommender's own reasons.
    let kg = curated();
    let user = UserProfile::new("u")
        .likes(&["BroccoliCheddarSoup"])
        .allergies(&["Broccoli"]);
    let ctx = SystemContext::new(Season::Autumn);
    let coach = HealthCoach::new(&kg);
    let recs = coach.recommend(&user, &ctx, 5);
    let top = recs.top().expect("recommended").to_string();

    let mut engine = ExplanationEngine::new(curated(), user, ctx)
        .expect("consistent")
        .with_recommendations(recs);
    let contextual = engine
        .explain(&Question::WhyEat { food: top.clone() })
        .unwrap();
    let trace = engine.explain(&Question::WhatSteps { food: top }).unwrap();
    assert!(contextual.is_informative() || trace.is_informative());
}

#[test]
fn materialized_export_round_trips_through_turtle() {
    // Export the materialized graph as Turtle, re-parse it, and verify
    // the competency query gives identical rows over the re-import.
    let s = scenario_b();
    let mut engine = s.engine().expect("consistent");
    let direct = engine.explain(&s.question).unwrap();

    // Export the full head view — base plus every committed layer (the
    // façade's explain committed the question delta as an epoch).
    let head = engine.base().ledger().head_view();
    let ttl = write_turtle(&head, feo::ontology::ns::PREFIXES);
    let mut reimported = Graph::new();
    parse_turtle_into(&ttl, &mut reimported, &Default::default()).expect("export parses");
    assert_eq!(head.len(), reimported.len(), "lossless export");

    let q = feo::core::queries::contrastive_query(&s.question);
    let table = query(&reimported, &q, &Default::default())
        .unwrap()
        .expect_solutions();
    assert_eq!(
        table.rows, direct.bindings.rows,
        "same rows over the re-import"
    );
}

#[test]
fn synthetic_kg_pipeline_end_to_end() {
    let kg = synthetic(&SyntheticConfig {
        recipes: 60,
        ingredients: 50,
        seed: 99,
        ..Default::default()
    });
    let recipe = kg.recipes[3].id.clone();
    let user = UserProfile::new("u").likes(&[&kg.recipes[0].id]);
    let ctx = SystemContext::new(Season::Winter);
    let mut engine = ExplanationEngine::new(kg, user, ctx).expect("synthetic stack is consistent");
    assert!(engine.inference().is_consistent());
    assert!(engine.inference().warnings.is_empty());
    let e = engine.explain(&Question::WhyEat { food: recipe }).unwrap();
    // Synthetic recipes may or may not have winter support; either way the
    // pipeline must answer without error.
    assert!(!e.answer.is_empty());
}

#[test]
fn coach_beats_baseline_on_constraint_respect() {
    // The shape the paper's motivation predicts: a popularity baseline
    // recommends allergy-violating dishes; the Health Coach never does.
    let kg = curated();
    let population = feo::foodkg::random_profiles(&kg, 300, 13);
    let baseline = PopularityRecommender::from_population(&kg, &population);
    let coach = HealthCoach::new(&kg);
    let ctx = SystemContext::new(Season::Autumn);

    let mut baseline_violations = 0usize;
    let mut coach_violations = 0usize;
    let mut checked = 0usize;
    for user in feo::foodkg::random_profiles(&kg, 50, 17) {
        if user.allergies.is_empty() {
            continue;
        }
        checked += 1;
        let violates = |set: &feo::recommender::RecommendationSet| {
            set.recommendations.iter().any(|r| {
                kg.recipe(&r.recipe_id)
                    .map(|rec| rec.ingredients.iter().any(|i| user.allergies.contains(i)))
                    .unwrap_or(false)
            })
        };
        if violates(&baseline.recommend(&user, &ctx, 10)) {
            baseline_violations += 1;
        }
        if violates(&coach.recommend(&user, &ctx, 10)) {
            coach_violations += 1;
        }
    }
    assert!(checked > 0);
    assert_eq!(coach_violations, 0, "coach must never violate allergies");
    assert!(
        baseline_violations > 0,
        "popularity baseline should violate at least once over {checked} allergy users"
    );
}

#[test]
fn figures_regenerate() {
    let g = feo::ontology::schema::tbox_graph();
    let tree = feo::ontology::report::characteristic_tree(&g).unwrap();
    assert!(tree.size() >= 14);
    let lattice = feo::ontology::report::property_lattice(&g);
    assert!(lattice.len() >= 25);
    let matrix = feo::core::figure3_matrix();
    assert_eq!(matrix.len(), 4);
}

#[test]
fn scenarios_are_mutually_consistent_with_recommender() {
    // Scenario B says the system recommends Butternut Squash Soup for the
    // broccoli-allergic soup lover — our recommender should agree that
    // squash soup outranks anything broccoli-based.
    let s = scenario_b();
    let kg = s.kg();
    let coach = HealthCoach::new(&kg);
    let set = coach.recommend(&s.user, &s.context, 10);
    assert!(set.get("ButternutSquashSoup").is_some());
    assert!(set.get("BroccoliCheddarSoup").is_none());

    // Scenario C: sushi survives for the non-pregnant user.
    let s = scenario_c();
    let set = coach.recommend(&s.user, &s.context, 40);
    assert!(set.get("Sushi").is_some());
}

#[test]
fn inference_counts_are_substantial() {
    // The reasoner must be doing real work: the materialized graph grows
    // by a large factor over the asserted one.
    let s = scenario_a();
    let engine = s.engine().unwrap();
    let inferred = engine.inference().added;
    assert!(
        inferred > 500,
        "expected substantive inference, got {inferred} added triples"
    );
}

#[test]
fn full_engine_supports_all_nine_types_via_facade() {
    let kg = curated();
    let user = UserProfile::new("u")
        .likes(&["LentilSoup"])
        .diet("Vegetarian")
        .goals(&["HighFiberGoal"]);
    let ctx = SystemContext::new(Season::Autumn);
    let kg2 = curated();
    let coach = HealthCoach::new(&kg2);
    let recs = coach.recommend(&user, &ctx, 10);
    let mut engine = ExplanationEngine::new(kg, user, ctx)
        .unwrap()
        .with_population(Population::generate(&curated(), 100, 1))
        .with_recommendations(recs);
    for q in [
        Question::WhyEat {
            food: "LentilSoup".into(),
        },
        Question::WhatSteps {
            food: "LentilSoup".into(),
        },
        Question::WhatOtherUsers {
            food: "LentilSoup".into(),
        },
        Question::WhyGenerally {
            food: "LentilSoup".into(),
        },
        Question::WhatLiterature {
            food: "LentilSoup".into(),
        },
        Question::WhatIfEatenDaily {
            food: "LentilSoup".into(),
        },
        Question::WhatEvidenceForDiet {
            diet: "Vegetarian".into(),
        },
    ] {
        engine.explain(&q).unwrap_or_else(|e| panic!("{q:?}: {e}"));
    }
}

#[test]
fn curated_kg_is_iri_resolvable() {
    let kg = curated();
    let mut g = Graph::new();
    feo::foodkg::kg_to_rdf(&kg, &mut g);
    for r in &kg.recipes {
        assert!(
            g.lookup_iri(&FoodKg::iri(&r.id)).is_some(),
            "recipe {} missing from RDF",
            r.id
        );
    }
}
