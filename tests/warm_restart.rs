//! Warm restart: a persisted store reopens via mmap *without*
//! re-running materialization and answers CQ1–CQ3 byte-identically to
//! the engine that saved it — in the same process (structural
//! assertions on the reopened engine) and across real process
//! boundaries (the `feo` binary, each invocation a fresh process).

use std::path::PathBuf;
use std::process::Command;

use feo::core::{EngineBase, EpochId, ExplainOptions, Hypothesis, Question, ToJson};
use feo::foodkg::{curated, Season, SystemContext, UserProfile};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("feo-warm-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn paper_user() -> UserProfile {
    UserProfile::new("user")
        .likes(&["BroccoliCheddarSoup", "LentilSoup"])
        .allergies(&["Broccoli"])
        .diet("Vegetarian")
}

fn cqs() -> Vec<Question> {
    vec![
        Question::WhyEat {
            food: "CauliflowerPotatoCurry".into(),
        },
        Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        },
        Question::WhatIf {
            hypothesis: Hypothesis::Pregnant,
        },
    ]
}

fn fingerprint(base: &EngineBase, epoch: EpochId, q: &Question) -> String {
    let e = base
        .explain_as_of(epoch, q, &ExplainOptions::default())
        .expect("epoch on chain");
    format!(
        "{}|{:?}|{:?}|{}",
        e.answer,
        e.statements,
        e.bindings.rows,
        e.to_json()
    )
}

/// Same process: save, reopen, and prove the reopened engine (a) never
/// ran the reasoner and (b) answers every CQ at every epoch
/// byte-identically.
#[test]
fn reopened_engine_skips_materialization_and_answers_identically() {
    let dir = tmp_dir("inproc");
    let ctx = SystemContext::new(Season::Autumn).region("Florida");
    let mut original = EngineBase::new(curated(), paper_user(), ctx).expect("consistent");
    original.commit_with("pregnant", |overlay| {
        feo::core::ecosystem::apply_hypothesis(&Hypothesis::Pregnant, &paper_user(), overlay);
    });
    original.save_to(&dir).expect("save");
    assert!(
        original.inference().rounds > 0,
        "the cold build ran the reasoner"
    );

    let reopened = EngineBase::open(
        &dir,
        curated(),
        paper_user(),
        SystemContext::new(Season::Autumn).region("Florida"),
    )
    .expect("open");

    // No materialization on the warm path: zero reasoner rounds, yet
    // the inferred-triple bookkeeping carries over exactly.
    assert_eq!(
        reopened.inference().rounds,
        0,
        "warm open must not re-run materialization"
    );
    assert_eq!(reopened.inference().added, original.inference().added);
    assert!(reopened.inference().converged);
    assert!(reopened.store().is_some(), "store stays attached");

    // Same chain, same sizes, same hashes.
    assert_eq!(reopened.head(), original.head());
    let fp = |b: &EngineBase| {
        b.history()
            .iter()
            .map(|c| {
                format!(
                    "{}|{}|{}|{}|{:016x}",
                    c.epoch.0, c.label, c.triples, c.inferred, c.hash
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(fp(&reopened), fp(&original));

    // Byte-identical CQ1–CQ3 at every epoch.
    for epoch in (0..=original.head().0).map(EpochId) {
        for q in cqs() {
            assert_eq!(
                fingerprint(&reopened, epoch, &q),
                fingerprint(&original, epoch, &q),
                "{q:?} diverged at epoch {}",
                epoch.0
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- fresh-process restarts (the real contract) ------------------------

fn feo(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_feo"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

/// One fixed profile for every invocation — the store is bootstrapped
/// with it, so memory and disk answer for the same world.
const PROFILE: [&str; 6] = [
    "--likes",
    "BroccoliCheddarSoup,LentilSoup",
    "--allergies",
    "Broccoli",
    "--diet",
    "Vegetarian",
];

/// The CLI invocations whose stdout must be bitwise stable across
/// restarts: one per competency question, plus a query.
fn cli_probes() -> Vec<Vec<String>> {
    let with_profile = |mut v: Vec<String>| -> Vec<String> {
        v.extend(PROFILE.iter().map(|s| s.to_string()));
        v
    };
    vec![
        with_profile(vec![
            "explain".into(),
            "why-eat".into(),
            "CauliflowerPotatoCurry".into(),
        ]),
        with_profile(vec![
            "explain".into(),
            "why-over".into(),
            "ButternutSquashSoup".into(),
            "BroccoliCheddarSoup".into(),
        ]),
        with_profile(vec!["explain".into(), "what-if-pregnant".into()]),
        with_profile(vec![
            "query".into(),
            "SELECT ?r ?i WHERE { ?r food:hasIngredient ?i } ORDER BY ?r ?i".into(),
        ]),
    ]
}

fn run_probes(store: Option<&str>, label: &str) -> Vec<String> {
    cli_probes()
        .iter()
        .map(|probe| {
            let mut args: Vec<&str> = probe.iter().map(String::as_str).collect();
            if let Some(dir) = store {
                args.push("--store");
                args.push(dir);
            }
            let (stdout, stderr, ok) = feo(&args);
            assert!(ok, "{label}: {args:?} failed: {stderr}");
            stdout
        })
        .collect()
}

/// Bootstrap the store in one process, then re-answer everything from
/// the mmap in fresh processes — every stdout byte-identical to the
/// memory-only runs, before and after `feo compact`.
#[test]
fn fresh_process_restart_is_byte_identical() {
    let dir = tmp_dir("cli");
    let store = dir.to_string_lossy().to_string();

    // Memory reference (no store), then a bootstrap pass (cold build +
    // save on first probe, warm opens after), then a pure warm pass in
    // fresh processes. All byte-identical.
    let memory = run_probes(None, "memory");
    let bootstrap = run_probes(Some(&store), "bootstrap");
    assert!(
        dir.join("MANIFEST").exists(),
        "first pass persisted the store"
    );
    let warm = run_probes(Some(&store), "warm");
    assert_eq!(
        memory, bootstrap,
        "store-backed answers diverged from memory"
    );
    assert_eq!(memory, warm, "restarted process answered differently");

    // Append an epoch to the WAL, replay it in a fresh process.
    let (h1, _, ok) = feo(&["history", "--store", &store, "--commit", "pregnant"]);
    assert!(ok);
    let (h2, _, ok) = feo(&["history", "--store", &store]);
    assert!(ok);
    assert_eq!(h1, h2, "WAL replay changed the chain the committer saw");
    assert!(h2.contains("pregnant"), "committed epoch persisted");

    // Compaction folds the committed epoch into a new base segment;
    // the head the probes answer at is semantically unchanged, so
    // their stdout must not move by a byte.
    let committed = run_probes(Some(&store), "committed");
    let (out, stderr, ok) = feo(&["compact", "--store", &store]);
    assert!(ok, "compact failed: {stderr}");
    assert!(out.contains("compacted"), "compact reported nothing: {out}");
    let after = run_probes(Some(&store), "post-compact");
    assert_eq!(committed, after, "compaction changed an answer");
    let _ = std::fs::remove_dir_all(&dir);
}
