//! Epoch-ledger properties: replaying any historical epoch must
//! reproduce the answers the engine gave at that epoch byte for byte,
//! commits must chain tamper-evident hashes, and branch worlds must
//! diverge without ever perturbing the parent chain.
//!
//! The deltas committed here are the same kinds of triples sessions
//! assert — newcomer profiles, hypotheses, question individuals — in
//! the style of `tests/incremental_closure.rs`.

use feo::core::ecosystem::{apply_hypothesis, assert_question};
use feo::core::{EngineBase, EngineError, EpochId, ExplainOptions, Hypothesis, Question};
use feo::foodkg::{
    curated, random_profiles, synthetic, user_to_rdf, FoodKg, Season, SyntheticConfig,
    SystemContext, UserProfile,
};
use feo::rdf::GraphStore;
use proptest::prelude::*;

/// Writes a seeded ABox delta: a newcomer profile, a hypothesis, and a
/// question individual.
fn write_delta(g: &mut impl GraphStore, kg: &FoodKg, user: &UserProfile, seed: u64) {
    let newcomer = random_profiles(kg, 1, seed ^ 0xBEEF)
        .pop()
        .unwrap_or_else(|| UserProfile::new("newcomer"));
    user_to_rdf(&newcomer, g);
    let hypothesis = match seed % 3 {
        0 => Hypothesis::Pregnant,
        1 => Hypothesis::FollowedDiet("Vegan".into()),
        _ => Hypothesis::AllergicTo("Broccoli".into()),
    };
    apply_hypothesis(&hypothesis, user, g);
    let question = match seed % 2 {
        0 => Question::WhyEat {
            food: format!("R{}", seed % 7),
        },
        _ => Question::WhatIf { hypothesis },
    };
    assert_question(&question, g);
}

fn world(recipes: usize, seed: u64) -> (FoodKg, UserProfile, EngineBase) {
    let kg = synthetic(&SyntheticConfig {
        recipes,
        ingredients: recipes,
        seed,
        ..Default::default()
    });
    let user = random_profiles(&kg, 1, seed)
        .pop()
        .unwrap_or_else(|| UserProfile::new("u"));
    let ctx = SystemContext::new(Season::Autumn);
    let base = EngineBase::new(kg.clone(), user.clone(), ctx).expect("consistent world");
    (kg, user, base)
}

/// Everything observable about one answer: the rendered sentence, the
/// supporting statements, and the raw binding rows.
fn answer_fingerprint(base: &EngineBase, epoch: EpochId, question: &Question) -> String {
    let e = base
        .explain_as_of(epoch, question, &ExplainOptions::default())
        .expect("epoch is on the chain");
    format!("{}|{:?}|{:?}", e.answer, e.statements, e.bindings.rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random commit chain, then time travel: `explain_as_of(n)` after
    /// the whole chain is committed must equal the capture taken when
    /// epoch `n` *was* the head, byte for byte — later commits cannot
    /// perturb history. The hash chain must also verify end to end.
    #[test]
    fn replayed_epochs_answer_byte_identically(
        seed in 0u64..1024,
        recipes in 10usize..30,
        commits in 1usize..5,
    ) {
        let (kg, user, mut base) = world(recipes, seed);
        let question = Question::WhyEat { food: kg.recipes[0].id.clone() };

        let mut captured = vec![answer_fingerprint(&base, EpochId(0), &question)];
        for i in 0..commits {
            let delta_seed = seed.wrapping_add(i as u64).wrapping_mul(0x9E37);
            let epoch = base.commit_with("delta", |overlay| {
                write_delta(overlay, &kg, &user, delta_seed);
            });
            prop_assert_eq!(epoch, EpochId(i as u64 + 1), "epochs are dense");
            captured.push(answer_fingerprint(&base, epoch, &question));
        }

        for (n, expected) in captured.iter().enumerate() {
            let replayed = answer_fingerprint(&base, EpochId(n as u64), &question);
            prop_assert_eq!(
                &replayed, expected,
                "epoch {} stopped reproducing its answer after {} commits", n, commits
            );
        }
        prop_assert!(base.ledger().verify_chain().is_none(), "hash chain verifies");
        prop_assert_eq!(base.head(), EpochId(commits as u64));
    }

    /// Branches fork from any epoch and diverge through their own
    /// commits; the parent chain's hashes and answers must be bitwise
    /// untouched afterwards.
    #[test]
    fn branch_commits_never_perturb_parent_epochs(
        seed in 0u64..1024,
        recipes in 10usize..30,
        commits in 1usize..4,
    ) {
        let (kg, user, mut base) = world(recipes, seed);
        let question = Question::WhyEat { food: kg.recipes[0].id.clone() };

        for i in 0..commits {
            let delta_seed = seed.wrapping_add(i as u64).wrapping_mul(0x9E37);
            base.commit_with("delta", |overlay| {
                write_delta(overlay, &kg, &user, delta_seed);
            });
        }
        let head_before = base.head();
        let hashes: Vec<u64> = (0..=head_before.0)
            .map(|n| base.ledger().hash_at(EpochId(n)).expect("on chain"))
            .collect();
        let answers: Vec<String> = (0..=head_before.0)
            .map(|n| answer_fingerprint(&base, EpochId(n), &question))
            .collect();

        // Fork from a mid-chain epoch and diverge with two commits.
        let fork = EpochId(head_before.0 / 2);
        base.branch_create("what-if", fork).expect("fresh name");
        base.branch_apply("what-if", &Hypothesis::Pregnant).expect("branch applies");
        base.branch_apply("what-if", &Hypothesis::FollowedDiet("Vegan".into()))
            .expect("branch applies");

        prop_assert_eq!(base.head(), head_before, "main head never moves");
        for n in 0..=head_before.0 {
            prop_assert_eq!(
                base.ledger().hash_at(EpochId(n)).expect("on chain"),
                hashes[n as usize],
                "parent epoch {} hash changed after branch commits", n
            );
            prop_assert_eq!(
                &answer_fingerprint(&base, EpochId(n), &question),
                &answers[n as usize],
                "parent epoch {} answer changed after branch commits", n
            );
        }
        prop_assert!(base.ledger().verify_chain().is_none());

        let info = &base.branch_list()[0];
        prop_assert_eq!(info.fork, fork);
        prop_assert_eq!(info.commits, 2);
        prop_assert_eq!(info.head, EpochId(fork.0 + 2));
    }
}

/// The commit log: epoch 0 is the sealed base, every commit appends one
/// labeled row, and the rows carry the layer sizes.
#[test]
fn history_records_the_chain() {
    let (kg, user, mut base) = world(12, 42);
    assert_eq!(base.history().len(), 1);
    assert_eq!(base.history()[0].label, "base");
    assert_eq!(base.history()[0].triples, base.graph().len());

    base.commit_with("first", |overlay| write_delta(overlay, &kg, &user, 1));
    base.commit_with("second", |overlay| write_delta(overlay, &kg, &user, 2));

    let history = base.history();
    assert_eq!(history.len(), 3);
    assert_eq!(history[1].label, "first");
    assert_eq!(history[2].label, "second");
    assert_eq!(history[1].epoch, EpochId(1));
    assert!(history[1].triples > 0, "the delta committed triples");
    // Hashes chain: every row's hash is distinct.
    assert_ne!(history[0].hash, history[1].hash);
    assert_ne!(history[1].hash, history[2].hash);
}

/// Epochs past the head are unknown — `at_epoch` returns `None` and
/// `explain_as_of` surfaces a typed error.
#[test]
fn unknown_epochs_are_rejected() {
    let (_, _, base) = world(12, 43);
    assert!(base.at_epoch(EpochId(0)).is_some());
    assert!(base.at_epoch(EpochId(1)).is_none());
    let err = base
        .explain_as_of(
            EpochId(9),
            &Question::WhyEat { food: "R0".into() },
            &ExplainOptions::default(),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::UnknownEpoch(9)), "{err}");
}

/// Branch names are unique and `"main"` is reserved for the main chain.
#[test]
fn branch_names_are_guarded() {
    let (_, _, mut base) = world(12, 44);
    base.branch_create("fork", EpochId(0)).expect("fresh name");
    assert!(matches!(
        base.branch_create("fork", EpochId(0)),
        Err(EngineError::DuplicateBranch(_))
    ));
    assert!(matches!(
        base.branch_create("main", EpochId(0)),
        Err(EngineError::DuplicateBranch(_))
    ));
    assert!(matches!(
        base.branch_create("late", EpochId(7)),
        Err(EngineError::UnknownEpoch(7))
    ));
    assert!(matches!(
        base.branch_diff("fork", "ghost"),
        Err(EngineError::UnknownBranch(_))
    ));
}

/// A freshly forked branch is content-identical to its fork point, and
/// `branch_diff` reports divergence only after the branch commits.
#[test]
fn branch_diff_tracks_divergence() {
    let (kg, user, mut base) = world(12, 45);
    base.commit_with("delta", |overlay| write_delta(overlay, &kg, &user, 5));
    base.branch_create("what-if", base.head())
        .expect("fresh name");

    let clean = base.branch_diff("what-if", "main").expect("both exist");
    assert!(clean.is_empty(), "fresh fork equals its parent head");

    base.branch_apply("what-if", &Hypothesis::Pregnant)
        .expect("applies");
    let diverged = base.branch_diff("what-if", "main").expect("both exist");
    assert!(
        !diverged.only_in_a.is_empty(),
        "the hypothesis triples live only on the branch"
    );
    assert!(
        diverged.only_in_b.is_empty(),
        "the branch contains everything main has"
    );
}

/// The deprecated `absorb` shim still works and lands on the ledger.
#[test]
fn absorb_shim_commits_an_epoch() {
    let (_, _, mut base) = world(12, 46);
    #[allow(deprecated)]
    base.absorb(Vec::new(), Vec::new(), Default::default());
    assert_eq!(base.head(), EpochId(1));
    assert!(base.ledger().verify_chain().is_none());
}

/// The curated KG exercises the same replay property on real data.
#[test]
fn curated_chain_replays_byte_identically() {
    let kg = curated();
    let user = UserProfile::new("u")
        .likes(&["BroccoliCheddarSoup"])
        .allergies(&["Broccoli"]);
    let ctx = SystemContext::new(Season::Autumn);
    let mut base = EngineBase::new(kg.clone(), user.clone(), ctx).expect("consistent");
    let question = Question::WhyEat {
        food: "CauliflowerPotatoCurry".into(),
    };

    let at0 = answer_fingerprint(&base, EpochId(0), &question);
    base.commit_with("delta", |overlay| write_delta(overlay, &kg, &user, 2));
    let at1 = answer_fingerprint(&base, EpochId(1), &question);
    base.commit_with("delta", |overlay| write_delta(overlay, &kg, &user, 3));

    assert_eq!(answer_fingerprint(&base, EpochId(0), &question), at0);
    assert_eq!(answer_fingerprint(&base, EpochId(1), &question), at1);
    assert!(base.ledger().verify_chain().is_none());
}
