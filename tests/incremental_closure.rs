//! Differential property tests for the semi-naïve incremental closure:
//! for an already-closed base graph and an ABox delta Δ,
//! `materialize_delta(base, Δ)` must yield exactly the same triple set
//! as a full re-materialization of `base ∪ Δ`.

use feo::core::ecosystem::{apply_hypothesis, assemble, assert_question};
use feo::core::{Hypothesis, Question};
use feo::foodkg::{
    curated, random_profiles, synthetic, user_to_rdf, FoodKg, Season, SyntheticConfig,
    SystemContext, UserProfile,
};
use feo::owl::{MaterializeOptions, Reasoner};
use feo::rdf::{GraphStore, GraphView, Overlay};
use proptest::prelude::*;

/// Canonical sorted rendering of a view's triples (base ∪ delta for
/// overlays), so graphs with different id spaces compare by content.
fn triple_set(g: &impl GraphView) -> Vec<String> {
    let mut v: Vec<String> = g.iter_triples().map(|t| t.to_string()).collect();
    v.sort();
    v
}

/// Writes a seeded ABox delta: a newcomer profile, a hypothesis, and a
/// question individual — the same kinds of triples sessions assert.
fn apply_delta(g: &mut impl GraphStore, kg: &FoodKg, user: &UserProfile, seed: u64) {
    let newcomer = random_profiles(kg, 1, seed ^ 0xBEEF)
        .pop()
        .unwrap_or_else(|| UserProfile::new("newcomer"));
    user_to_rdf(&newcomer, g);
    let hypothesis = match seed % 3 {
        0 => Hypothesis::Pregnant,
        1 => Hypothesis::FollowedDiet("Vegan".into()),
        _ => Hypothesis::AllergicTo("Broccoli".into()),
    };
    apply_hypothesis(&hypothesis, user, g);
    let question = match seed % 2 {
        0 => Question::WhyEat {
            food: format!("R{}", seed % 7),
        },
        _ => Question::WhatIf { hypothesis },
    };
    assert_question(&question, g);
}

/// The property itself, checked for one (KG, seed) pair.
fn delta_matches_full(kg: FoodKg, seed: u64) {
    let user = random_profiles(&kg, 1, seed)
        .pop()
        .unwrap_or_else(|| UserProfile::new("u"));
    let ctx = SystemContext::new(Season::Autumn);
    let mut base = assemble(&kg, &user, &ctx);
    let reasoner = Reasoner::new();
    let rules = reasoner.compile(&mut base);
    reasoner
        .materialize(&mut base, &MaterializeOptions::with_rules(&rules))
        .expect("materialize");

    // Full path: copy the closed base, add Δ, re-run the whole fixpoint.
    let mut full = base.clone();
    apply_delta(&mut full, &kg, &user, seed);
    reasoner
        .materialize(&mut full, &MaterializeOptions::with_rules(&rules))
        .expect("materialize");

    // Incremental path: overlay Δ on the shared closed base and close
    // only from the delta.
    let mut overlay = Overlay::new(&base);
    apply_delta(&mut overlay, &kg, &user, seed);
    reasoner
        .materialize_delta(&mut overlay, &MaterializeOptions::with_rules(&rules))
        .expect("materialize");

    assert_eq!(
        triple_set(&full),
        triple_set(&overlay),
        "incremental closure diverged from full re-materialization (seed {seed})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn incremental_equals_full_on_synthetic_kgs(
        seed in 0u64..1024,
        recipes in 10usize..40,
    ) {
        let kg = synthetic(&SyntheticConfig {
            recipes,
            ingredients: recipes,
            seed,
            ..Default::default()
        });
        delta_matches_full(kg, seed);
    }

    #[test]
    fn incremental_equals_full_on_the_curated_kg(seed in 0u64..1024) {
        delta_matches_full(curated(), seed);
    }
}

/// An empty delta is a no-op: the overlay stays triple-for-triple the
/// closed base.
#[test]
fn empty_delta_derives_nothing() {
    let kg = curated();
    let user = UserProfile::new("u").likes(&["LentilSoup"]);
    let ctx = SystemContext::new(Season::Autumn);
    let mut base = assemble(&kg, &user, &ctx);
    let reasoner = Reasoner::new();
    let rules = reasoner.compile(&mut base);
    reasoner
        .materialize(&mut base, &MaterializeOptions::with_rules(&rules))
        .expect("materialize");

    let mut overlay = Overlay::new(&base);
    let result = reasoner
        .materialize_delta(&mut overlay, &MaterializeOptions::with_rules(&rules))
        .expect("materialize");
    assert_eq!(result.added, 0);
    assert_eq!(overlay.delta_len(), 0);
}
