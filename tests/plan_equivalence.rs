//! Planner equivalence: the cost-based planner, the greedy reorderer,
//! and author-order evaluation are alternative *orders*, never
//! alternative *semantics*. For seeded synthetic KGs (the
//! `feo-foodkg` generator, assembled and materialized exactly as the
//! engine does it) every planner must return the identical solution
//! multiset — and a tripping `Guard` must yield a typed
//! `SparqlError::Exhausted`, never a silently truncated table.

use feo::core::ecosystem::assemble;
use feo::foodkg::{synthetic, Season, SyntheticConfig, SystemContext, UserProfile};
use feo::ontology::ns::sparql_prologue;
use feo::owl::Reasoner;
use feo::rdf::governor::Budget;
use feo::rdf::Graph;
use feo::sparql::{query, Planner, QueryOptions, SolutionTable, SparqlError};
use proptest::prelude::*;

const PLANNERS: [Planner; 3] = [Planner::Off, Planner::Greedy, Planner::CostBased];

/// Queries chosen to give the planners real decisions: multi-pattern
/// joins (including an adversarial author order that opens with a
/// cartesian product), OPTIONAL / UNION nodes, a property path, and an
/// aggregate.
fn equivalence_queries() -> Vec<String> {
    let p = sparql_prologue();
    vec![
        // Adversarial author order: the first two patterns share no
        // variable; only the third connects them.
        format!(
            "{p}SELECT ?r ?i ?s WHERE {{\n\
               ?r food:calories ?c .\n\
               ?i food:availableInSeason ?s .\n\
               ?r food:hasIngredient ?i .\n\
               FILTER (?c > 700) .\n\
             }}"
        ),
        // Star join around recipes, type patterns included.
        format!(
            "{p}SELECT ?r ?i ?n WHERE {{\n\
               ?r a food:Recipe .\n\
               ?r food:hasIngredient ?i .\n\
               ?i food:hasNutrient ?n .\n\
             }}"
        ),
        // OPTIONAL + UNION exercise the non-BGP plan nodes.
        format!(
            "{p}SELECT ?i ?x WHERE {{\n\
               ?i a food:Ingredient .\n\
               OPTIONAL {{ ?i food:availableInSeason ?x }}\n\
             }}"
        ),
        format!(
            "{p}SELECT ?r ?v WHERE {{\n\
               {{ ?r food:hasIngredient ?v }} UNION {{ ?r food:availableInSeason ?v }}\n\
             }}"
        ),
        // Property path over the recipe→ingredient→nutrient chain.
        format!("{p}SELECT ?r ?n WHERE {{ ?r (food:hasIngredient/food:hasNutrient) ?n }}"),
        // Aggregate on top of a join.
        format!(
            "{p}SELECT ?r (COUNT(?i) AS ?k) WHERE {{\n\
               ?r food:hasIngredient ?i .\n\
             }} GROUP BY ?r"
        ),
    ]
}

/// The engine's own pipeline: generate, assemble, materialize.
fn materialized_graph(recipes: usize, seed: u64) -> Graph {
    let kg = synthetic(&SyntheticConfig {
        recipes,
        ingredients: recipes / 2 + 10,
        seed,
        ..Default::default()
    });
    let user = UserProfile::new("u")
        .likes(&[&kg.recipes[0].id])
        .allergies(&[&kg.ingredients[0].id]);
    let ctx = SystemContext::new(Season::Autumn);
    let mut g = assemble(&kg, &user, &ctx);
    Reasoner::new()
        .materialize(&mut g, &Default::default())
        .expect("unguarded materialization converges");
    g
}

/// Rows as sorted strings: multiset comparison independent of solution
/// order (projection order keeps columns aligned across planners).
fn multiset(t: &SolutionTable) -> Vec<String> {
    let mut rows: Vec<String> = t.local_rows().iter().map(|r| r.join("|")).collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All three planners agree on every query over every generated KG.
    #[test]
    fn planners_return_identical_multisets(
        recipes in 15usize..45,
        seed in 0u64..10_000,
    ) {
        let g = materialized_graph(recipes, seed);
        for q in equivalence_queries() {
            let reference = query(&g, &q, &QueryOptions { planner: Planner::Off, ..Default::default() })
                .expect("author order evaluates")
                .expect_solutions();
            let reference = multiset(&reference);
            for planner in [Planner::Greedy, Planner::CostBased] {
                let got = query(&g, &q, &QueryOptions { planner, ..Default::default() })
                    .expect("planned evaluation evaluates")
                    .expect_solutions();
                prop_assert_eq!(
                    &multiset(&got),
                    &reference,
                    "planner {:?} diverged on seed {} query:\n{}",
                    planner, seed, q
                );
            }
        }
    }

    /// Under a guard, each planner either returns exactly the unguarded
    /// multiset or fails with a typed `Exhausted` — never a silently
    /// partial table. (Planners legitimately differ in *whether* they
    /// trip: a better join order produces fewer intermediate rows.)
    #[test]
    fn guarded_runs_are_exact_or_exhausted(
        recipes in 15usize..40,
        seed in 0u64..10_000,
        max_solutions in 1u64..400,
    ) {
        let g = materialized_graph(recipes, seed);
        let budget = Budget::new().with_max_solutions(max_solutions);
        for q in equivalence_queries() {
            let reference = query(&g, &q, &Default::default())
                .expect("unguarded evaluates")
                .expect_solutions();
            let reference = multiset(&reference);
            for planner in PLANNERS {
                let guard = budget.start();
                let opts = QueryOptions { guard: Some(&guard), planner, ..Default::default() };
                match query(&g, &q, &opts) {
                    Ok(result) => prop_assert_eq!(
                        &multiset(&result.expect_solutions()),
                        &reference,
                        "guarded {:?} returned a different table on seed {}",
                        planner, seed
                    ),
                    Err(SparqlError::Exhausted(_)) => {}
                    Err(other) => prop_assert!(
                        false,
                        "planner {:?} failed with a non-budget error: {:?}",
                        planner, other
                    ),
                }
            }
        }
    }

    /// A guard with headroom is behaviorally invisible for every planner.
    #[test]
    fn generous_guard_is_transparent_for_all_planners(
        recipes in 15usize..40,
        seed in 0u64..10_000,
    ) {
        let g = materialized_graph(recipes, seed);
        let budget = Budget::new().with_max_solutions(50_000_000);
        for q in equivalence_queries() {
            for planner in PLANNERS {
                let bare = query(&g, &q, &QueryOptions { planner, ..Default::default() })
                    .expect("evaluates")
                    .expect_solutions();
                let guard = budget.start();
                let guarded = query(
                    &g,
                    &q,
                    &QueryOptions { guard: Some(&guard), planner, ..Default::default() },
                )
                .expect("generous guard never trips")
                .expect_solutions();
                prop_assert_eq!(multiset(&bare), multiset(&guarded));
            }
        }
    }
}

// ---- greedy tie-break regression ---------------------------------------

/// Two disconnected patterns with identical statistics: every planner
/// ties, ties keep author order, and author order pins the exact row
/// sequence (first pattern outer, second inner, both in index order).
/// Before the deterministic tie-break the greedy reorder depended on
/// selection-scan incidentals and this order was unstable.
#[test]
fn tied_patterns_pin_solution_order() {
    let mut g = Graph::new();
    for i in 1..=2 {
        g.insert_iris(
            &format!("http://e/s{i}"),
            "http://e/p",
            &format!("http://e/o{i}"),
        );
        g.insert_iris(
            &format!("http://e/t{i}"),
            "http://e/q",
            &format!("http://e/u{i}"),
        );
    }
    let q = "SELECT ?a ?b ?c ?d WHERE { ?a <http://e/p> ?b . ?c <http://e/q> ?d }";
    let expected: Vec<Vec<String>> = vec![
        vec!["s1".into(), "o1".into(), "t1".into(), "u1".into()],
        vec!["s1".into(), "o1".into(), "t2".into(), "u2".into()],
        vec!["s2".into(), "o2".into(), "t1".into(), "u1".into()],
        vec!["s2".into(), "o2".into(), "t2".into(), "u2".into()],
    ];
    for planner in PLANNERS {
        let t = query(
            &g,
            q,
            &QueryOptions {
                planner,
                ..Default::default()
            },
        )
        .expect("evaluates")
        .expect_solutions();
        assert_eq!(
            t.local_rows(),
            expected,
            "{planner:?} must keep author order on tied patterns"
        );
    }
}
