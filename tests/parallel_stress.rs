//! Concurrency stress: budgets and cancellation racing parallel
//! execution from a second thread must always surface as typed
//! [`Exhausted`] partials — never a panic, never a torn closure, never
//! an incoherent index. The partial closure a tripped materialization
//! leaves behind must be sound: a superset of the input and a subset of
//! the full fixpoint.

use std::collections::BTreeSet;
use std::thread;
use std::time::Duration;

use feo::core::ecosystem::assemble;
use feo::core::{EngineBase, EngineError, ExplainOptions, Population, Question};
use feo::foodkg::{synthetic, Season, SyntheticConfig, SystemContext, UserProfile};
use feo::owl::{MaterializeOptions, Reasoner, ReasonerError};
use feo::rdf::governor::{Budget, CancelFlag, Resource};
use feo::rdf::{Graph, Parallelism};

fn assembled(recipes: usize, seed: u64) -> Graph {
    let kg = synthetic(&SyntheticConfig {
        recipes,
        ingredients: recipes / 2 + 10,
        seed,
        ..Default::default()
    });
    let user = UserProfile::new("u")
        .likes(&[&kg.recipes[0].id])
        .allergies(&[&kg.ingredients[0].id]);
    let ctx = SystemContext::new(Season::Autumn);
    assemble(&kg, &user, &ctx)
}

/// The full unguarded fixpoint, used as the soundness reference.
fn full_closure(template: &Graph) -> BTreeSet<[u32; 3]> {
    let mut g = template.clone();
    Reasoner::new()
        .materialize(&mut g, &Default::default())
        .expect("unguarded materialization converges");
    g.iter_ids()
        .map(|[s, p, o]| [s.index() as u32, p.index() as u32, o.index() as u32])
        .collect()
}

fn triples(g: &Graph) -> BTreeSet<[u32; 3]> {
    g.iter_ids()
        .map(|[s, p, o]| [s.index() as u32, p.index() as u32, o.index() as u32])
        .collect()
}

/// Asserts the invariant every interrupted run must uphold: whatever
/// closure fragment survived is coherent, contains the input, and
/// derives nothing outside the true fixpoint.
fn assert_sound_partial(g: &Graph, input: &BTreeSet<[u32; 3]>, full: &BTreeSet<[u32; 3]>) {
    assert!(g.check_index_coherence(), "torn indexes after a trip");
    let partial = triples(g);
    assert!(
        partial.is_superset(input),
        "a trip must never lose asserted triples"
    );
    assert!(
        partial.is_subset(full),
        "a trip must never fabricate triples outside the fixpoint"
    );
}

/// A budget cap hit mid-flight during parallel materialization yields a
/// typed `InferredTriples` trip and a sound partial closure, at several
/// cap positions and worker counts.
#[test]
fn budget_trips_during_parallel_materialization_are_typed_and_sound() {
    let template = assembled(120, 7);
    let full = full_closure(&template);
    let input = triples(&template);
    for workers in [2usize, 4] {
        for cap in [1u64, 5, 50, 500] {
            let mut g = template.clone();
            let budget = Budget::new().with_max_inferred(cap);
            let guard = budget.start();
            let result = Reasoner::new().materialize(
                &mut g,
                &MaterializeOptions {
                    guard: Some(&guard),
                    parallelism: Parallelism::Fixed(workers),
                    ..Default::default()
                },
            );
            match result {
                Err(ReasonerError::Exhausted { exhausted, .. }) => {
                    assert_eq!(exhausted.resource, Resource::InferredTriples);
                }
                Ok(_) => panic!("cap {cap} should trip on this KG"),
            }
            assert_sound_partial(&g, &input, &full);
        }
    }
}

/// Cancellation raised from a second thread mid-materialization: the
/// reasoner either finishes first (small KG, fast machine) or stops
/// with a typed `Cancelled` trip — and the graph is sound either way.
#[test]
fn cancellation_from_second_thread_during_materialization() {
    let template = assembled(200, 11);
    let full = full_closure(&template);
    let input = triples(&template);
    for delay_us in [0u64, 50, 200, 1000, 5000] {
        let mut g = template.clone();
        let flag = CancelFlag::new();
        let budget = Budget::new().with_cancel(flag.clone());
        let guard = budget.start();
        let canceller = {
            let flag = flag.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_micros(delay_us));
                flag.cancel();
            })
        };
        let result = Reasoner::new().materialize(
            &mut g,
            &MaterializeOptions {
                guard: Some(&guard),
                parallelism: Parallelism::Fixed(4),
                ..Default::default()
            },
        );
        canceller.join().expect("canceller panicked");
        match result {
            Ok(_) => assert_eq!(
                triples(&g),
                full,
                "a completed run must be the full fixpoint"
            ),
            Err(ReasonerError::Exhausted { exhausted, .. }) => {
                assert_eq!(exhausted.resource, Resource::Cancelled);
                assert_sound_partial(&g, &input, &full);
            }
        }
    }
}

fn stress_base() -> (EngineBase, Vec<Question>) {
    let kg = synthetic(&SyntheticConfig {
        recipes: 40,
        ingredients: 30,
        seed: 3,
        ..Default::default()
    });
    let population = Population::generate(&kg, 40, 3);
    let names: Vec<String> = kg.recipes.iter().map(|r| r.id.clone()).collect();
    let user = UserProfile::new("u")
        .likes(&[&names[0]])
        .diet("Vegetarian")
        .goals(&["HighFiberGoal"]);
    let ctx = SystemContext::new(Season::Autumn).region("Florida");
    let base = EngineBase::new(kg, user, ctx)
        .expect("synthetic world is consistent")
        .with_population(population);
    let questions = (0..24)
        .map(|i| {
            let food = names[i % names.len()].clone();
            match i % 3 {
                0 => Question::WhyEat { food },
                1 => Question::WhyEatOver {
                    preferred: food,
                    alternative: names[(i + 5) % names.len()].clone(),
                },
                _ => Question::WhatOtherUsers { food },
            }
        })
        .collect();
    (base, questions)
}

/// Cancelling a parallel `explain_batch` from a second thread: every
/// slot resolves to a real explanation or a typed `Exhausted` error —
/// no panics, no missing slots — and the shared base is untouched.
#[test]
fn cancellation_from_second_thread_during_explain_batch() {
    let (base, questions) = stress_base();
    let base_triples = base.graph().len();
    let base_terms = base.graph().term_count();
    for delay_us in [0u64, 100, 500, 2000, 10_000] {
        let flag = CancelFlag::new();
        let budget = Budget::new().with_cancel(flag.clone());
        let guard = budget.start();
        let opts = ExplainOptions {
            guard: Some(&guard),
            parallelism: Parallelism::Fixed(4),
            ..Default::default()
        };
        let canceller = {
            let flag = flag.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_micros(delay_us));
                flag.cancel();
            })
        };
        let results = base.explain_batch(&questions, &opts);
        canceller.join().expect("canceller panicked");
        assert_eq!(results.len(), questions.len(), "every slot must resolve");
        for (i, result) in results.iter().enumerate() {
            match result {
                Ok(e) => assert!(!e.answer.is_empty(), "slot {i} returned an empty answer"),
                Err(EngineError::Exhausted(exhausted)) => {
                    assert_eq!(exhausted.resource, Resource::Cancelled, "slot {i}");
                }
                Err(other) => panic!("slot {i} failed with a non-budget error: {other:?}"),
            }
        }
        assert_eq!(base.graph().len(), base_triples, "base graph grew");
        assert_eq!(
            base.graph().term_count(),
            base_terms,
            "base dictionary grew"
        );
    }
}

/// The budgeted aggregate: after a mid-batch trip the outcome still
/// partitions the batch exactly into completed + skipped, every
/// returned explanation is complete, and the trip is typed.
#[test]
fn budgeted_batch_degrades_gracefully_under_parallelism() {
    let (base, questions) = stress_base();
    // Generous reference run — must complete everything.
    let outcome = base
        .explain_batch_with_budget(&questions, &Budget::new(), Parallelism::Fixed(4))
        .expect("no hard errors");
    assert!(outcome.is_complete());
    assert_eq!(outcome.explanations.len(), questions.len());

    // Tight solution budgets trip somewhere in the middle.
    for max_solutions in [1u64, 20, 200] {
        let budget = Budget::new().with_max_solutions(max_solutions);
        let outcome = base
            .explain_batch_with_budget(&questions, &budget, Parallelism::Fixed(4))
            .expect("budget trips are not hard errors");
        match outcome.degradation {
            Some(report) => {
                assert_eq!(
                    report.completed.len() + report.skipped.len(),
                    questions.len(),
                    "completed + skipped must cover the batch exactly"
                );
                assert_eq!(outcome.explanations.len(), report.completed.len());
                assert!(!report.skipped.is_empty());
            }
            None => assert_eq!(outcome.explanations.len(), questions.len()),
        }
    }
}

/// Many racing cancellers against many batches: a smoke loop shaking
/// out ordering-dependent panics (poisoned locks, torn counters) that
/// a single race rarely hits.
#[test]
fn repeated_cancel_races_never_panic() {
    let (base, questions) = stress_base();
    for round in 0..8u64 {
        let flag = CancelFlag::new();
        let budget = Budget::new().with_cancel(flag.clone());
        let guard = budget.start();
        let opts = ExplainOptions {
            guard: Some(&guard),
            parallelism: Parallelism::Fixed(4),
            ..Default::default()
        };
        let canceller = {
            let flag = flag.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_micros(round * 300));
                flag.cancel();
            })
        };
        let results = base.explain_batch(&questions[..8], &opts);
        canceller.join().expect("canceller panicked");
        assert_eq!(results.len(), 8);
        // The plan cache must stay coherent through racing sessions.
        let stats = base.plan_cache_stats();
        assert!(stats.hits + stats.misses >= stats.entries as u64);
    }
}
