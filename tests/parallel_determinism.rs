//! Parallel-vs-sequential determinism: `Parallelism` is a throughput
//! knob, never a semantics knob. For seeded synthetic KGs assembled and
//! materialized exactly as the engine does it, `Parallelism::Fixed(4)`
//! must produce byte-identical results to `Parallelism::Off` — the
//! same closure triples, the same query tables in the same row order,
//! and the same `explain_batch` answers slot for slot.
//!
//! One statistic is deliberately *not* compared: `InferenceResult::rounds`.
//! The parallel complex-axiom sweep evaluates every candidate against
//! the pre-pass snapshot, so a membership that depends on another
//! candidate's new membership can land one outer round later than on
//! the sequential path. The fixpoint is the same either way; only the
//! round bookkeeping may differ.

use feo::core::ecosystem::assemble;
use feo::core::{EngineBase, ExplainOptions, Population, Question};
use feo::foodkg::{synthetic, Season, SyntheticConfig, SystemContext, UserProfile};
use feo::ontology::ns::sparql_prologue;
use feo::owl::{MaterializeOptions, Reasoner};
use feo::rdf::{Graph, IdTriple, Parallelism};
use feo::sparql::{query, Planner, QueryOptions};
use proptest::prelude::*;

const MODES: [Parallelism; 2] = [Parallelism::Off, Parallelism::Fixed(4)];

fn synthetic_world(recipes: usize, seed: u64) -> (Graph, Vec<String>) {
    let kg = synthetic(&SyntheticConfig {
        recipes,
        ingredients: recipes / 2 + 10,
        seed,
        ..Default::default()
    });
    let user = UserProfile::new("u")
        .likes(&[&kg.recipes[0].id])
        .allergies(&[&kg.ingredients[0].id]);
    let ctx = SystemContext::new(Season::Autumn);
    let g = assemble(&kg, &user, &ctx);
    let names = kg.recipes.iter().map(|r| r.id.clone()).collect();
    (g, names)
}

/// Everything observable about a materialization except round counts:
/// the exact triple sequence (the store iterates in id order, so equal
/// sequences mean equal graphs), the dictionary size, and the stats
/// that must match when the fixpoints match.
fn closure_fingerprint(
    recipes: usize,
    seed: u64,
    parallelism: Parallelism,
) -> (Vec<IdTriple>, usize, usize, bool, usize) {
    let (mut g, _) = synthetic_world(recipes, seed);
    let result = Reasoner::new()
        .materialize(
            &mut g,
            &MaterializeOptions {
                parallelism,
                ..Default::default()
            },
        )
        .expect("unguarded materialization converges");
    (
        g.iter_ids().collect(),
        g.term_count(),
        result.added,
        result.converged,
        result.inconsistencies.len(),
    )
}

/// Join-heavy queries whose intermediaries are large enough to cross
/// the parallel-scan and parallel-hash-join thresholds on the bigger
/// generated KGs (and stay on the sequential path on the smaller ones —
/// both must agree regardless).
fn probe_queries() -> Vec<String> {
    let p = sparql_prologue();
    vec![
        format!(
            "{p}SELECT ?r ?i ?n WHERE {{\n\
               ?r a food:Recipe .\n\
               ?r food:hasIngredient ?i .\n\
               ?i food:hasNutrient ?n .\n\
             }}"
        ),
        format!(
            "{p}SELECT ?r ?i ?s WHERE {{\n\
               ?r food:calories ?c .\n\
               ?i food:availableInSeason ?s .\n\
               ?r food:hasIngredient ?i .\n\
               FILTER (?c > 300) .\n\
             }}"
        ),
        format!("{p}SELECT ?r ?n WHERE {{ ?r (food:hasIngredient/food:hasNutrient) ?n }}"),
        format!(
            "{p}SELECT ?r (COUNT(?i) AS ?k) WHERE {{\n\
               ?r food:hasIngredient ?i .\n\
             }} GROUP BY ?r"
        ),
    ]
}

/// A mixed batch over the synthetic KG: contextual, contrastive,
/// knowledge-based, simulation, case-based, and statistical questions,
/// cycled across the generated recipe names.
fn question_batch(names: &[String], len: usize) -> Vec<Question> {
    (0..len)
        .map(|i| {
            let food = names[i % names.len()].clone();
            match i % 6 {
                0 => Question::WhyEat { food },
                1 => Question::WhyEatOver {
                    preferred: food,
                    alternative: names[(i + 1) % names.len()].clone(),
                },
                2 => Question::WhyGenerally { food },
                3 => Question::WhatIfEatenDaily { food },
                4 => Question::WhatOtherUsers { food },
                _ => Question::WhatEvidenceForDiet {
                    diet: "Vegetarian".into(),
                },
            }
        })
        .collect()
}

/// One comparable line per batch slot: the rendered answer plus the
/// binding rows on success, the error's debug form on failure.
fn batch_fingerprint(
    base: &EngineBase,
    questions: &[Question],
    parallelism: Parallelism,
) -> Vec<String> {
    let opts = ExplainOptions {
        parallelism,
        ..Default::default()
    };
    base.explain_batch(questions, &opts)
        .into_iter()
        .map(|r| match r {
            Ok(e) => format!("ok|{}|{:?}|{:?}", e.answer, e.statements, e.bindings.rows),
            Err(err) => format!("err|{err:?}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The materialized closure is byte-identical at every worker count.
    #[test]
    fn parallel_closure_matches_sequential(
        recipes in 20usize..80,
        seed in 0u64..10_000,
    ) {
        let reference = closure_fingerprint(recipes, seed, Parallelism::Off);
        for workers in [2usize, 4, 8] {
            let got = closure_fingerprint(recipes, seed, Parallelism::Fixed(workers));
            prop_assert_eq!(
                &got, &reference,
                "closure diverged at {} workers on seed {}", workers, seed
            );
        }
    }

    /// Query tables are byte-identical — same rows in the same order,
    /// not merely the same multiset — under every planner.
    #[test]
    fn parallel_queries_match_sequential(
        recipes in 20usize..80,
        seed in 0u64..10_000,
    ) {
        let (mut g, _) = synthetic_world(recipes, seed);
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("converges");
        for q in probe_queries() {
            for planner in [Planner::Off, Planner::Greedy, Planner::CostBased] {
                let run = |parallelism: Parallelism| {
                    query(&g, &q, &QueryOptions { planner, parallelism, ..Default::default() })
                        .expect("evaluates")
                        .expect_solutions()
                };
                let reference = run(Parallelism::Off);
                let got = run(Parallelism::Fixed(4));
                prop_assert_eq!(
                    got.local_rows(), reference.local_rows(),
                    "{:?} rows diverged on seed {} query:\n{}", planner, seed, q
                );
            }
        }
    }

    /// `explain_batch` output is byte-identical slot for slot, including
    /// which slots hold errors.
    #[test]
    fn parallel_explain_batch_matches_sequential(
        recipes in 15usize..40,
        seed in 0u64..10_000,
    ) {
        let kg = synthetic(&SyntheticConfig {
            recipes,
            ingredients: recipes / 2 + 10,
            seed,
            ..Default::default()
        });
        let population = Population::generate(&kg, 40, seed);
        let names: Vec<String> = kg.recipes.iter().map(|r| r.id.clone()).collect();
        let user = UserProfile::new("u")
            .likes(&[&names[0]])
            .diet("Vegetarian")
            .goals(&["HighFiberGoal"]);
        let ctx = SystemContext::new(Season::Autumn).region("Florida");
        let base = EngineBase::new(kg, user, ctx)
            .expect("synthetic world is consistent")
            .with_population(population);
        let questions = question_batch(&names, 12);
        let reference = batch_fingerprint(&base, &questions, Parallelism::Off);
        for workers in [2usize, 4] {
            let got = batch_fingerprint(&base, &questions, Parallelism::Fixed(workers));
            prop_assert_eq!(
                &got, &reference,
                "explain_batch diverged at {} workers on seed {}", workers, seed
            );
        }
    }
}

/// Derivation tracking no longer forces the sequential path: with
/// tracking on, pool workers capture each conclusion's premises and the
/// pinned-order merge records them. The closure must stay
/// byte-identical across worker counts, the parallel run must be
/// reproducible (same derivation map twice), and every recorded
/// derivation must be structurally sound — its premises are triples of
/// the closed graph, so proof trees render without dangling references.
#[test]
fn tracked_derivations_survive_the_parallel_path() {
    use feo::owl::ReasonerOptions;

    let close = |parallelism: Parallelism| {
        let (mut g, _) = synthetic_world(40, 7);
        let result = Reasoner::with_options(ReasonerOptions {
            track_derivations: true,
            ..Default::default()
        })
        .materialize(
            &mut g,
            &MaterializeOptions {
                parallelism,
                ..Default::default()
            },
        )
        .expect("converges");
        (g, result)
    };

    let (seq_g, seq) = close(Parallelism::Off);
    let (par_g, par) = close(Parallelism::Fixed(4));
    let (par_g2, par2) = close(Parallelism::Fixed(4));

    // Same fixpoint, and the parallel run is reproducible down to the
    // recorded derivations.
    assert_eq!(
        seq_g.iter_ids().collect::<Vec<_>>(),
        par_g.iter_ids().collect::<Vec<_>>(),
        "closure diverged with tracking on"
    );
    assert_eq!(par.derivations.len(), par2.derivations.len());
    for (t, d) in &par.derivations {
        let again = par2.derivations.get(t).expect("reproducible key set");
        assert_eq!((d.rule, &d.premises), (again.rule, &again.premises));
    }
    assert_eq!(par_g.len(), par_g2.len());

    // Both modes explain every inferred triple, and premises always
    // reference real triples of the closure (acyclic proof DAG).
    assert_eq!(seq.derivations.len(), par.derivations.len());
    assert!(!par.derivations.is_empty(), "tracking recorded nothing");
    for (t, d) in &par.derivations {
        assert!(
            par_g.contains_ids(t[0], t[1], t[2]),
            "derived triple missing from closure"
        );
        for p in &d.premises {
            assert!(
                par_g.contains_ids(p[0], p[1], p[2]),
                "premise of {:?} ({}) not in closure",
                t,
                d.rule
            );
        }
        let node = feo::owl::proof(&par, *t);
        assert!(!node.render(&par_g).is_empty());
    }
}

/// `Parallelism::Auto` (the default in every options struct) honours
/// `FEO_THREADS`, so the suite run under `FEO_THREADS=1` and
/// `FEO_THREADS=4` exercises both paths; this pins the explicit modes
/// against each other once more on the curated KG for good measure.
#[test]
fn curated_kg_closure_is_mode_independent() {
    let run = |parallelism: Parallelism| {
        let kg = feo::foodkg::curated();
        let user = UserProfile::new("u")
            .likes(&["LentilSoup"])
            .diet("Vegetarian");
        let ctx = SystemContext::new(Season::Autumn).region("Florida");
        let mut g = assemble(&kg, &user, &ctx);
        let r = Reasoner::new()
            .materialize(
                &mut g,
                &MaterializeOptions {
                    parallelism,
                    ..Default::default()
                },
            )
            .expect("converges");
        (g.iter_ids().collect::<Vec<_>>(), g.term_count(), r.added)
    };
    let mut fingerprints = MODES.iter().map(|&m| run(m));
    let first = fingerprints.next().expect("at least one mode");
    for other in fingerprints {
        assert_eq!(first, other);
    }
}
