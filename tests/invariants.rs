//! Cross-crate property tests: invariants of the reasoner, the
//! recommender, and the explanation pipeline over randomly generated
//! knowledge graphs and user profiles.

use feo::core::ecosystem::assemble;
use feo::core::{classify, Classification, ExplanationEngine, Question};
use feo::foodkg::{synthetic, FoodKg, Season, SyntheticConfig, SystemContext, UserProfile};
use feo::owl::Reasoner;
use feo::recommender::{HealthCoach, Recommender};
use proptest::prelude::*;

fn arb_season() -> impl Strategy<Value = Season> {
    prop_oneof![
        Just(Season::Spring),
        Just(Season::Summer),
        Just(Season::Autumn),
        Just(Season::Winter),
    ]
}

/// Small synthetic KGs keep each case fast while varying structure.
fn arb_kg() -> impl Strategy<Value = FoodKg> {
    (10usize..40, 10usize..30, any::<u64>()).prop_map(|(recipes, ingredients, seed)| {
        synthetic(&SyntheticConfig {
            recipes,
            ingredients,
            seed,
            ..Default::default()
        })
    })
}

fn arb_user(kg: &FoodKg, seed: u64) -> UserProfile {
    feo::foodkg::random_profiles(kg, 1, seed)
        .pop()
        .expect("one profile")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Materialization is idempotent: a second run adds nothing.
    #[test]
    fn reasoner_idempotent_on_random_kgs(kg in arb_kg(), seed in any::<u64>(), season in arb_season()) {
        let user = arb_user(&kg, seed);
        let ctx = SystemContext::new(season);
        let mut g = assemble(&kg, &user, &ctx);
        let first = Reasoner::new().materialize(&mut g, &Default::default()).expect("materialize");
        prop_assert!(first.is_consistent());
        let second = Reasoner::new().materialize(&mut g, &Default::default()).expect("materialize");
        prop_assert_eq!(second.added, 0);
    }

    /// Monotonicity: materializing a supergraph yields a supergraph of
    /// the original materialization.
    #[test]
    fn reasoner_monotone(kg in arb_kg(), seed in any::<u64>()) {
        let user = arb_user(&kg, seed);
        let ctx = SystemContext::new(Season::Autumn);
        let mut small = assemble(&kg, &user, &ctx);
        Reasoner::new().materialize(&mut small, &Default::default()).expect("materialize");

        let mut big = assemble(&kg, &user, &ctx);
        // Extra assertion: a new liked food.
        let extra = FoodKg::iri(&kg.recipes[0].id);
        big.insert_iris(
            &FoodKg::iri(&user.id),
            feo::ontology::ns::food::LIKES,
            &extra,
        );
        Reasoner::new().materialize(&mut big, &Default::default()).expect("materialize");

        for t in small.iter_triples() {
            prop_assert!(big.contains(&t), "lost derived triple {t}");
        }
    }

    /// Single-polarity characteristics are never classified Fact and Foil
    /// simultaneously (Figure 3 cells are exclusive per polarity+presence).
    #[test]
    fn fact_foil_exclusive_for_single_polarity(
        supportive in any::<bool>(),
        present in any::<bool>(),
    ) {
        use feo::ontology::ns::feo as feons;
        let mut g = feo::ontology::schema::tbox_graph();
        g.insert_iris("http://t/q", feons::HAS_PRIMARY_PARAMETER, "http://t/P");
        let polarity = if supportive {
            feons::IS_SUPPORTIVE_CHARACTERISTIC_OF
        } else {
            feons::IS_OPPOSING_CHARACTERISTIC_OF
        };
        let presence = if present { feons::PRESENT_IN } else { feons::ABSENT_FROM };
        g.insert_iris("http://t/c", polarity, "http://t/P");
        g.insert_iris("http://t/c", presence, feons::CURRENT_ECOSYSTEM);
        Reasoner::new().materialize(&mut g, &Default::default()).expect("materialize");
        let c = g.lookup_iri("http://t/c").unwrap();
        let class = classify(&g, c);
        prop_assert_ne!(class, Classification::Both);
        // And the expected cell:
        let expected = match (supportive, present) {
            (true, true) => Classification::Fact,
            (true, false) | (false, true) => Classification::Foil,
            (false, false) => Classification::Neither,
        };
        prop_assert_eq!(class, expected);
    }

    /// The recommender never surfaces a recipe violating a hard
    /// constraint, and every eliminated recipe has a recorded reason.
    #[test]
    fn recommender_respects_constraints(kg in arb_kg(), seed in any::<u64>(), season in arb_season()) {
        let user = arb_user(&kg, seed);
        let ctx = SystemContext::new(season);
        let coach = HealthCoach::new(&kg);
        let set = coach.recommend(&user, &ctx, kg.recipes.len());
        for rec in &set.recommendations {
            let recipe = kg.recipe(&rec.recipe_id).unwrap();
            for allergen in &user.allergies {
                prop_assert!(!recipe.ingredients.contains(allergen));
            }
            prop_assert!(!user.dislikes.contains(&rec.recipe_id));
            if let Some(diet_id) = &user.diet {
                let diet = kg.diet(diet_id).unwrap();
                let cats = kg.recipe_categories(recipe);
                for c in &cats {
                    prop_assert!(!diet.forbids_categories.contains(c));
                }
            }
        }
        // Partition: every recipe is either ranked or eliminated.
        prop_assert_eq!(
            set.recommendations.len() + set.eliminated.len(),
            kg.recipes.len()
        );
    }

    /// The explanation engine never errors on WhyEat for any recipe of a
    /// random KG, and answers deterministically.
    #[test]
    fn contextual_explanations_total_and_deterministic(
        kg in arb_kg(),
        seed in any::<u64>(),
        season in arb_season(),
    ) {
        let user = arb_user(&kg, seed);
        let ctx = SystemContext::new(season);
        let target = kg.recipes[kg.recipes.len() / 2].id.clone();
        let mut engine = ExplanationEngine::new(kg, user, ctx).expect("consistent");
        let q = Question::WhyEat { food: target };
        let a = engine.explain(&q).expect("explains");
        let b = engine.explain(&q).expect("explains again");
        prop_assert_eq!(a.answer, b.answer);
        prop_assert_eq!(a.bindings.rows, b.bindings.rows);
    }
}
