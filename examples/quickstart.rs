//! Quickstart: build the engine over the curated knowledge graph, ask the
//! paper's contextual question, and print the answer with the underlying
//! SPARQL bindings.
//!
//! Run with: `cargo run --example quickstart`

use feo::core::{ExplanationEngine, Question};
use feo::foodkg::{curated, Season, SystemContext, UserProfile};

fn main() {
    // The user and the system context form FEO's "ecosystem".
    let user = UserProfile::new("demo-user").region("Florida");
    let ctx = SystemContext::new(Season::Autumn).region("Florida");

    // Assemble TBoxes + FoodKG + ecosystem and materialize inferences
    // (the paper's "run the reasoner, export the inferred axioms" step).
    let mut engine =
        ExplanationEngine::new(curated(), user, ctx).expect("ontology stack is consistent");
    println!(
        "materialized graph: {} triples ({} inferred, {} reasoning rounds)\n",
        engine.graph().len(),
        engine.inference().added,
        engine.inference().rounds
    );

    // The paper's §V-A competency question.
    let question = Question::WhyEat {
        food: "CauliflowerPotatoCurry".into(),
    };
    let explanation = engine.explain(&question).expect("explanation generated");

    println!("Q: {}", question.text());
    println!(
        "\nSPARQL bindings (paper Listing 1 result):\n{}",
        explanation.bindings
    );
    println!("A: {}", explanation.answer);
}
