//! Scaling study over the synthetic FoodKG: how materialization and the
//! competency queries behave as the knowledge graph grows — the
//! systems-level characterization of the substrates (reported in
//! EXPERIMENTS.md).
//!
//! Run with: `cargo run --release --example kg_scaling`

use std::time::Instant;

use feo::core::ecosystem::{assemble, assert_question};
use feo::core::{queries, Question};
use feo::foodkg::{synthetic, SyntheticConfig, SystemContext, UserProfile};
use feo::owl::Reasoner;
use feo::sparql::query;

fn main() {
    println!(
        "{:>8} {:>13} {:>10} {:>12} {:>9} {:>8}",
        "recipes", "base triples", "inferred", "total", "mat. ms", "CQ1 ms"
    );
    for &recipes in &[50usize, 100, 200, 400, 800] {
        let cfg = SyntheticConfig {
            recipes,
            ingredients: recipes / 2 + 25,
            ..Default::default()
        };
        let kg = synthetic(&cfg);
        let user = UserProfile::new("u")
            .likes(&[&kg.recipes[0].id])
            .allergies(&[&kg.ingredients[0].id]);
        let ctx = SystemContext::new(feo::foodkg::Season::Autumn);

        let mut g = assemble(&kg, &user, &ctx);
        let question = Question::WhyEat {
            food: kg.recipes[1].id.clone(),
        };
        assert_question(&question, &mut g);
        let base = g.len();

        let t0 = Instant::now();
        let result = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let mat_ms = t0.elapsed().as_millis();

        let q = queries::contextual_query(&question);
        let t1 = Instant::now();
        let _table = query(&g, &q, &Default::default())
            .expect("CQ1 runs")
            .expect_solutions();
        let q_ms = t1.elapsed().as_millis();

        println!(
            "{:>8} {:>13} {:>10} {:>12} {:>9} {:>8}",
            recipes,
            base,
            result.added,
            g.len(),
            mat_ms,
            q_ms
        );
    }
}
