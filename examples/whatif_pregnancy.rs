//! The paper's §V-C counterfactual scenario ("What if I was pregnant?")
//! plus diet and allergy hypotheticals, showing how recommendations
//! would change under each hypothesis.
//!
//! Run with: `cargo run --example whatif_pregnancy`

use feo::core::{scenario_c, ExplanationEngine, Hypothesis, Question};
use feo::foodkg::{curated, Season, SystemContext, UserProfile};
use feo::recommender::{HealthCoach, Recommender};

fn main() {
    // Exact paper scenario.
    let s = scenario_c();
    println!("== {} ==", s.name);
    println!("Setup: {}", s.setup);
    let mut engine = s.engine().expect("consistent");
    let e = engine.explain(&s.question).expect("explained");
    println!("Q: {}", s.question.text());
    println!("\nListing 3 result table:\n{}", e.bindings);
    println!("A: {}", e.answer);
    println!("(paper: {})\n", s.paper_answer);

    // Cross-check against the recommender: with the hypothesis applied,
    // the recommendation set itself changes.
    let kg = curated();
    let base_user = UserProfile::new("u").likes(&["Sushi"]);
    let ctx = SystemContext::new(Season::Autumn);
    let coach = HealthCoach::new(&kg);
    let before = coach.recommend(&base_user, &ctx, 40);
    let after = coach.recommend(&base_user.clone().pregnant(true), &ctx, 40);
    println!("Recommender cross-check:");
    println!(
        "  sushi ranked before hypothesis: {}",
        before.get("Sushi").is_some()
    );
    println!(
        "  sushi ranked under pregnancy:   {}",
        after.get("Sushi").is_some()
    );
    if let Some(step) = after.elimination("Sushi") {
        println!("  recommender's reason: {step}\n");
    }

    // Other hypotheses.
    let mut engine = ExplanationEngine::new(curated(), base_user, ctx).expect("consistent");
    for hypothesis in [
        Hypothesis::FollowedDiet("Vegan".into()),
        Hypothesis::FollowedDiet("GlutenFree".into()),
        Hypothesis::AllergicTo("Peanuts".into()),
    ] {
        let q = Question::WhatIf { hypothesis };
        let e = engine.explain(&q).expect("explained");
        println!("Q: {}", q.text());
        println!("A: {}\n", e.answer);
    }
}
