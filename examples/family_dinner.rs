//! Group recommendation — the paper's §I motivation: "the seafood
//! allergy of one family member may preclude recipes including shrimp to
//! be recommended to the whole group". The group coach applies every
//! member's constraints, attributes each veto to the responsible member,
//! and FEO explains the surviving top pick.
//!
//! Run with: `cargo run --example family_dinner`

use feo::core::{ExplanationEngine, Question};
use feo::foodkg::{curated, Season, SystemContext, UserProfile};
use feo::recommender::GroupCoach;

fn main() {
    let kg = curated();
    let family = vec![
        UserProfile::new("ana").likes(&["ShrimpScampi", "PastaPrimavera"]),
        UserProfile::new("ben")
            .likes(&["LentilSoup"])
            .diet("Vegetarian"),
        UserProfile::new("dana")
            .allergies(&["Shrimp"])
            .goals(&["HighFiberGoal"]),
    ];
    let ctx = SystemContext::new(Season::Autumn);

    let coach = GroupCoach::new(&kg);
    let set = coach.recommend(&family, &ctx, 5);

    println!("Family dinner candidates (autumn):");
    for (i, r) in set.recommendations.iter().enumerate() {
        println!("  {}. {:<24} avg score {:.2}", i + 1, r.recipe_id, r.score);
    }

    println!("\nVetoed dishes (who objects, and why):");
    let mut seen = std::collections::BTreeSet::new();
    for (member, step) in &set.eliminated {
        let line = format!("  - [{member}] {step}");
        if seen.insert(line.clone()) {
            println!("{line}");
        }
    }

    // Explain the winning dish for the most constrained member.
    let top = set.top().expect("a dish survives").to_string();
    println!("\nWhy {} works for dana:", top);
    let mut engine = ExplanationEngine::new(curated(), family[2].clone(), ctx).expect("consistent");
    let e = engine
        .explain(&Question::WhyEat { food: top })
        .expect("explained");
    println!("  {}", e.answer);
}
