//! Full Health-Coach pipeline: profile a user, run the recommender, then
//! explain the top recommendation with several explanation types —
//! the paper's intended deployment ("integrating the ontology into a
//! health application", §VI).
//!
//! Run with: `cargo run --example health_coach`

use feo::core::{ExplanationEngine, Population, Question};
use feo::foodkg::{curated, Season, SystemContext, UserProfile};
use feo::recommender::{HealthCoach, Recommender};

fn main() {
    let kg = curated();
    let user = UserProfile::new("maya")
        .likes(&["LentilSoup", "KaleQuinoaBowl"])
        .dislikes(&["BeefStew"])
        .allergies(&["Peanuts"])
        .diet("Vegetarian")
        .goals(&["HighFiberGoal"])
        .region("NewYork");
    let ctx = SystemContext::new(Season::Autumn).region("NewYork");

    // 1. Recommend.
    let coach = HealthCoach::new(&kg);
    let recs = coach.recommend(&user, &ctx, 5);
    println!("Top recommendations for {}:", user.id);
    for (i, r) in recs.recommendations.iter().enumerate() {
        println!("  {}. {} (score {:.2})", i + 1, r.recipe_id, r.score);
    }
    println!(
        "  ({} recipes eliminated by hard constraints)\n",
        recs.eliminated.len()
    );
    let top = recs.top().expect("something recommended").to_string();

    // 2. Explain, post-hoc, with FEO.
    let population = Population::generate(&kg, 200, 7);
    let mut engine = ExplanationEngine::new(curated(), user, ctx)
        .expect("consistent")
        .with_population(population)
        .with_recommendations(recs);

    for question in [
        Question::WhyEat { food: top.clone() },
        Question::WhatSteps { food: top.clone() },
        Question::WhatOtherUsers { food: top.clone() },
        Question::WhyGenerally { food: top.clone() },
        Question::WhatEvidenceForDiet {
            diet: "Vegetarian".into(),
        },
    ] {
        let e = engine.explain(&question).expect("explained");
        println!("[{}]", e.explanation_type);
        println!("Q: {}", question.text());
        println!("A: {}\n", e.answer);
    }
}
