//! The paper's §V-B contrastive scenario, plus further contrastive
//! comparisons across the menu: "Why X over Y?" answered with facts for
//! X and foils against Y (Figure 3 semantics).
//!
//! Run with: `cargo run --example contrastive_meal_planning`

use feo::core::{scenario_b, ExplanationEngine, Question};
use feo::foodkg::{curated, Season, SystemContext, UserProfile};

fn main() {
    // Exact paper scenario first.
    let s = scenario_b();
    println!("== {} ==", s.name);
    println!("Setup: {}", s.setup);
    let mut engine = s.engine().expect("consistent");
    let e = engine.explain(&s.question).expect("explained");
    println!("Q: {}", s.question.text());
    println!("\nListing 2 result table:\n{}", e.bindings);
    println!("A: {}", e.answer);
    println!("(paper: {})\n", s.paper_answer);

    // A richer user, more comparisons.
    let user = UserProfile::new("sam")
        .likes(&["PastaPrimavera"])
        .dislikes(&["TunaSalad"])
        .diet("Vegetarian")
        .goals(&["HighFiberGoal"]);
    let ctx = SystemContext::new(Season::Autumn);
    let mut engine = ExplanationEngine::new(curated(), user, ctx).expect("consistent");

    for (preferred, alternative) in [
        ("KaleQuinoaBowl", "GrilledChickenSalad"),
        ("PumpkinRisotto", "TunaSalad"),
        ("LentilSoup", "BeefStew"),
    ] {
        let q = Question::WhyEatOver {
            preferred: preferred.into(),
            alternative: alternative.into(),
        };
        let e = engine.explain(&q).expect("explained");
        println!("Q: {}", q.text());
        println!("A: {}\n", e.answer);
    }
}
