//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The workspace pins `rand = "0.8"` but this build environment has no
//! registry access, so this path crate provides the exact surface the
//! workspace uses: [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and the
//! [`seq::SliceRandom`] sampling helpers. The generator is a
//! splitmix64 — deterministic per seed, which is all the seeded
//! synthetic-KG and population generators require. Stream positions
//! differ from upstream rand, so seeds produce different (but equally
//! stable) fixtures.

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly (`rand::distributions::uniform`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Seeded deterministic generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Mirror of `rand::seq::SliceRandom` for the methods the workspace
    /// uses: `choose`, `choose_multiple`, `shuffle`.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Up to `amount` distinct elements in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher-Yates: the first `amount` slots end up as a
            // uniform sample without replacement.
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(150..800);
            assert!((150..800).contains(&x));
            let y: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let f = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let n: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn slice_helpers_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool: Vec<u32> = (0..10).collect();
        let picked: Vec<u32> = pool.choose_multiple(&mut rng, 10).copied().collect();
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, pool, "sample without replacement covers pool");
        assert!(pool.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
        let mut v = pool.clone();
        v.shuffle(&mut rng);
        v.sort_unstable();
        assert_eq!(v, pool);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
