//! Axiom extraction: reads OWL-in-RDF syntax out of any [`GraphView`]
//! into the structured [`Ontology`] model.
//!
//! Handles the RDF mapping for: `rdfs:subClassOf` / `subPropertyOf` /
//! `domain` / `range`, `owl:equivalentClass`, `owl:disjointWith`,
//! `owl:inverseOf`, the property-characteristic classes
//! (Transitive/Symmetric/Asymmetric/Functional/InverseFunctional/
//! Irreflexive), `owl:propertyChainAxiom`, `owl:sameAs` /
//! `owl:differentFrom`, and restriction blank nodes
//! (`owl:Restriction` with someValuesFrom / allValuesFrom / hasValue) plus
//! `owl:intersectionOf` / `unionOf` / `complementOf` / `oneOf` with RDF
//! lists.

use std::collections::HashMap;

use feo_rdf::vocab::{owl, rdf, rdfs};
use feo_rdf::{GraphView, TermId};

use crate::axiom::{Axiom, ClassExpr, Ontology};

/// Pre-resolved vocabulary ids for one graph. Missing entries mean the
/// graph never mentions that IRI, so no axiom of that kind can exist.
struct Vocab {
    sub_class_of: Option<TermId>,
    sub_property_of: Option<TermId>,
    domain: Option<TermId>,
    range: Option<TermId>,
    equivalent_class: Option<TermId>,
    equivalent_property: Option<TermId>,
    disjoint_with: Option<TermId>,
    inverse_of: Option<TermId>,
    property_chain: Option<TermId>,
    property_disjoint_with: Option<TermId>,
    same_as: Option<TermId>,
    different_from: Option<TermId>,
    rdf_type: Option<TermId>,
    on_property: Option<TermId>,
    some_values_from: Option<TermId>,
    all_values_from: Option<TermId>,
    has_value: Option<TermId>,
    intersection_of: Option<TermId>,
    union_of: Option<TermId>,
    complement_of: Option<TermId>,
    one_of: Option<TermId>,
    transitive: Option<TermId>,
    symmetric: Option<TermId>,
    asymmetric: Option<TermId>,
    functional: Option<TermId>,
    inverse_functional: Option<TermId>,
    irreflexive: Option<TermId>,
}

impl Vocab {
    fn resolve<G: GraphView + ?Sized>(g: &G) -> Self {
        let f = |iri: &str| g.lookup_iri(iri);
        Vocab {
            sub_class_of: f(rdfs::SUB_CLASS_OF),
            sub_property_of: f(rdfs::SUB_PROPERTY_OF),
            domain: f(rdfs::DOMAIN),
            range: f(rdfs::RANGE),
            equivalent_class: f(owl::EQUIVALENT_CLASS),
            equivalent_property: f(owl::EQUIVALENT_PROPERTY),
            disjoint_with: f(owl::DISJOINT_WITH),
            inverse_of: f(owl::INVERSE_OF),
            property_chain: f(owl::PROPERTY_CHAIN_AXIOM),
            property_disjoint_with: f(owl::PROPERTY_DISJOINT_WITH),
            same_as: f(owl::SAME_AS),
            different_from: f(owl::DIFFERENT_FROM),
            rdf_type: f(rdf::TYPE),
            on_property: f(owl::ON_PROPERTY),
            some_values_from: f(owl::SOME_VALUES_FROM),
            all_values_from: f(owl::ALL_VALUES_FROM),
            has_value: f(owl::HAS_VALUE),
            intersection_of: f(owl::INTERSECTION_OF),
            union_of: f(owl::UNION_OF),
            complement_of: f(owl::COMPLEMENT_OF),
            one_of: f(owl::ONE_OF),
            transitive: f(owl::TRANSITIVE_PROPERTY),
            symmetric: f(owl::SYMMETRIC_PROPERTY),
            asymmetric: f(owl::ASYMMETRIC_PROPERTY),
            functional: f(owl::FUNCTIONAL_PROPERTY),
            inverse_functional: f(owl::INVERSE_FUNCTIONAL_PROPERTY),
            irreflexive: f(owl::IRREFLEXIVE_PROPERTY),
        }
    }
}

/// Extracts all recognizable OWL axioms from any graph view.
pub fn extract_axioms<G: GraphView + ?Sized>(graph: &G) -> Ontology {
    Extractor {
        g: graph,
        v: Vocab::resolve(graph),
        expr_cache: HashMap::new(),
        ont: Ontology::default(),
    }
    .run()
}

struct Extractor<'g, G: GraphView + ?Sized> {
    g: &'g G,
    v: Vocab,
    expr_cache: HashMap<TermId, Option<ClassExpr>>,
    ont: Ontology,
}

impl<'g, G: GraphView + ?Sized> Extractor<'g, G> {
    fn run(mut self) -> Ontology {
        self.extract_binary(self.v.sub_class_of, Axiom::SubClassOf);
        self.extract_binary(self.v.equivalent_class, |a, b| {
            Axiom::EquivalentClasses(a, b)
        });
        self.extract_binary(self.v.disjoint_with, Axiom::DisjointClasses);
        self.extract_prop_pairs(self.v.sub_property_of, Axiom::SubPropertyOf);
        self.extract_prop_pairs(self.v.equivalent_property, |a, b| {
            Axiom::EquivalentProperties(a, b)
        });
        self.extract_prop_pairs(self.v.inverse_of, Axiom::InverseOf);
        self.extract_prop_pairs(self.v.property_disjoint_with, |a, b| {
            Axiom::DisjointProperties(a, b)
        });
        self.extract_prop_pairs(self.v.same_as, Axiom::SameAs);
        self.extract_prop_pairs(self.v.different_from, Axiom::DifferentFrom);
        self.extract_domain_range();
        self.extract_characteristics();
        self.extract_chains();
        self.ont
    }

    /// `?a PRED ?b` where both sides are class expressions.
    fn extract_binary(
        &mut self,
        pred: Option<TermId>,
        make: impl Fn(ClassExpr, ClassExpr) -> Axiom,
    ) {
        let Some(pred) = pred else { return };
        for [s, _, o] in self.g.match_pattern(None, Some(pred), None) {
            match (self.class_expr(s), self.class_expr(o)) {
                (Some(a), Some(b)) => self.ont.axioms.push(make(a, b)),
                _ => self.warn(format!(
                    "skipping {} axiom with unparseable class expression ({} / {})",
                    self.g.term_name(pred),
                    self.g.term_name(s),
                    self.g.term_name(o)
                )),
            }
        }
    }

    /// `?a PRED ?b` where both sides are properties (plain ids).
    fn extract_prop_pairs(&mut self, pred: Option<TermId>, make: impl Fn(TermId, TermId) -> Axiom) {
        let Some(pred) = pred else { return };
        for [s, _, o] in self.g.match_pattern(None, Some(pred), None) {
            self.ont.axioms.push(make(s, o));
        }
    }

    fn extract_domain_range(&mut self) {
        if let Some(domain) = self.v.domain {
            for [p, _, c] in self.g.match_pattern(None, Some(domain), None) {
                match self.class_expr(c) {
                    Some(e) => self.ont.axioms.push(Axiom::Domain(p, e)),
                    None => self.warn(format!(
                        "skipping rdfs:domain of {} with unparseable class",
                        self.g.term_name(p)
                    )),
                }
            }
        }
        if let Some(range) = self.v.range {
            for [p, _, c] in self.g.match_pattern(None, Some(range), None) {
                match self.class_expr(c) {
                    Some(e) => self.ont.axioms.push(Axiom::Range(p, e)),
                    None => self.warn(format!(
                        "skipping rdfs:range of {} with unparseable class",
                        self.g.term_name(p)
                    )),
                }
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn extract_characteristics(&mut self) {
        let Some(ty) = self.v.rdf_type else { return };
        let kinds: [(Option<TermId>, fn(TermId) -> Axiom); 6] = [
            (self.v.transitive, Axiom::TransitiveProperty),
            (self.v.symmetric, Axiom::SymmetricProperty),
            (self.v.asymmetric, Axiom::AsymmetricProperty),
            (self.v.functional, Axiom::FunctionalProperty),
            (self.v.inverse_functional, Axiom::InverseFunctionalProperty),
            (self.v.irreflexive, Axiom::IrreflexiveProperty),
        ];
        for (class, make) in kinds {
            if let Some(class) = class {
                for p in self.g.subjects(ty, class) {
                    self.ont.axioms.push(make(p));
                }
            }
        }
    }

    fn extract_chains(&mut self) {
        let Some(chain_pred) = self.v.property_chain else {
            return;
        };
        for [p, _, head] in self.g.match_pattern(None, Some(chain_pred), None) {
            match self.g.read_list(head) {
                Some(chain) if chain.len() >= 2 => {
                    self.ont.axioms.push(Axiom::PropertyChain(chain, p));
                }
                Some(_) => self.warn(format!(
                    "property chain on {} shorter than 2 — ignored",
                    self.g.term_name(p)
                )),
                None => self.warn(format!(
                    "property chain on {} is not a well-formed list",
                    self.g.term_name(p)
                )),
            }
        }
    }

    fn warn(&mut self, msg: String) {
        self.ont.warnings.push(msg);
    }

    /// Parses the class expression rooted at `node`, memoized. IRIs are
    /// named classes; blank nodes are inspected for restriction /
    /// boolean-combination structure.
    fn class_expr(&mut self, node: TermId) -> Option<ClassExpr> {
        if let Some(cached) = self.expr_cache.get(&node) {
            return cached.clone();
        }
        // Mark in-progress to break cycles.
        self.expr_cache.insert(node, None);
        let result = self.class_expr_uncached(node);
        self.expr_cache.insert(node, result.clone());
        result
    }

    fn class_expr_uncached(&mut self, node: TermId) -> Option<ClassExpr> {
        use feo_rdf::Term;
        match self.g.term(node) {
            Term::Iri(_) => return Some(ClassExpr::Named(node)),
            Term::Literal(_) => return None,
            Term::BlankNode(_) => {}
        }

        // Boolean combinations.
        if let Some(p) = self.v.intersection_of {
            if let Some(head) = self.g.object(node, p) {
                let members = self.expr_list(head)?;
                return Some(ClassExpr::IntersectionOf(members));
            }
        }
        if let Some(p) = self.v.union_of {
            if let Some(head) = self.g.object(node, p) {
                let members = self.expr_list(head)?;
                return Some(ClassExpr::UnionOf(members));
            }
        }
        if let Some(p) = self.v.complement_of {
            if let Some(inner) = self.g.object(node, p) {
                return Some(ClassExpr::ComplementOf(Box::new(self.class_expr(inner)?)));
            }
        }
        if let Some(p) = self.v.one_of {
            if let Some(head) = self.g.object(node, p) {
                return Some(ClassExpr::OneOf(self.g.read_list(head)?));
            }
        }

        // Restrictions.
        let property = self.g.object(node, self.v.on_property?)?;
        if let Some(p) = self.v.some_values_from {
            if let Some(filler) = self.g.object(node, p) {
                return Some(ClassExpr::SomeValuesFrom {
                    property,
                    filler: Box::new(self.class_expr(filler)?),
                });
            }
        }
        if let Some(p) = self.v.all_values_from {
            if let Some(filler) = self.g.object(node, p) {
                return Some(ClassExpr::AllValuesFrom {
                    property,
                    filler: Box::new(self.class_expr(filler)?),
                });
            }
        }
        if let Some(p) = self.v.has_value {
            if let Some(value) = self.g.object(node, p) {
                return Some(ClassExpr::HasValue { property, value });
            }
        }
        None
    }

    fn expr_list(&mut self, head: TermId) -> Option<Vec<ClassExpr>> {
        let nodes = self.g.read_list(head)?;
        let mut out = Vec::with_capacity(nodes.len());
        for n in nodes {
            out.push(self.class_expr(n)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_rdf::turtle::parse_turtle_into;
    use feo_rdf::Graph;

    fn graph(src: &str) -> Graph {
        let mut g = Graph::new();
        let prefixed = format!(
            "@prefix rdf: <{}> .\n@prefix rdfs: <{}> .\n@prefix owl: <{}> .\n@prefix e: <http://e/> .\n{}",
            rdf::NS,
            rdfs::NS,
            owl::NS,
            src
        );
        parse_turtle_into(&prefixed, &mut g, &Default::default()).expect("test turtle parses");
        g
    }

    #[test]
    fn extracts_subclass_and_equivalence() {
        let g = graph(
            "e:A rdfs:subClassOf e:B .\n\
             e:C owl:equivalentClass e:D .",
        );
        let ont = extract_axioms(&g);
        assert_eq!(ont.count_of(|a| matches!(a, Axiom::SubClassOf(_, _))), 1);
        assert_eq!(
            ont.count_of(|a| matches!(a, Axiom::EquivalentClasses(_, _))),
            1
        );
        assert!(ont.warnings.is_empty());
    }

    #[test]
    fn extracts_property_axioms() {
        let g = graph(
            "e:p rdfs:subPropertyOf e:q .\n\
             e:p owl:inverseOf e:r .\n\
             e:p a owl:TransitiveProperty .\n\
             e:s a owl:SymmetricProperty .\n\
             e:f a owl:FunctionalProperty .\n\
             e:p rdfs:domain e:A ; rdfs:range e:B .",
        );
        let ont = extract_axioms(&g);
        assert_eq!(ont.count_of(|a| matches!(a, Axiom::SubPropertyOf(_, _))), 1);
        assert_eq!(ont.count_of(|a| matches!(a, Axiom::InverseOf(_, _))), 1);
        assert_eq!(
            ont.count_of(|a| matches!(a, Axiom::TransitiveProperty(_))),
            1
        );
        assert_eq!(
            ont.count_of(|a| matches!(a, Axiom::SymmetricProperty(_))),
            1
        );
        assert_eq!(
            ont.count_of(|a| matches!(a, Axiom::FunctionalProperty(_))),
            1
        );
        assert_eq!(ont.count_of(|a| matches!(a, Axiom::Domain(_, _))), 1);
        assert_eq!(ont.count_of(|a| matches!(a, Axiom::Range(_, _))), 1);
    }

    #[test]
    fn extracts_restriction_expressions() {
        let g = graph(
            "e:Fact owl:equivalentClass [\n\
               a owl:Restriction ;\n\
               owl:onProperty e:supports ;\n\
               owl:someValuesFrom e:Ecosystem\n\
             ] .",
        );
        let ont = extract_axioms(&g);
        let eq = ont
            .axioms
            .iter()
            .find_map(|a| match a {
                Axiom::EquivalentClasses(l, r) => Some((l.clone(), r.clone())),
                _ => None,
            })
            .expect("equivalence extracted");
        let restriction = match (&eq.0, &eq.1) {
            (ClassExpr::Named(_), r) => r.clone(),
            (l, ClassExpr::Named(_)) => l.clone(),
            _ => panic!("one side should be named"),
        };
        assert!(matches!(restriction, ClassExpr::SomeValuesFrom { .. }));
    }

    #[test]
    fn extracts_intersection_with_restrictions() {
        let g = graph(
            "e:C owl:equivalentClass [ owl:intersectionOf (\n\
                e:Base\n\
                [ a owl:Restriction ; owl:onProperty e:p ; owl:hasValue e:v ]\n\
             ) ] .",
        );
        let ont = extract_axioms(&g);
        assert!(ont.warnings.is_empty(), "warnings: {:?}", ont.warnings);
        let found = ont.axioms.iter().any(|a| {
            matches!(
                a,
                Axiom::EquivalentClasses(_, ClassExpr::IntersectionOf(es))
                    if es.len() == 2 && matches!(es[1], ClassExpr::HasValue { .. })
            ) || matches!(
                a,
                Axiom::EquivalentClasses(ClassExpr::IntersectionOf(es), _)
                    if es.len() == 2 && matches!(es[1], ClassExpr::HasValue { .. })
            )
        });
        assert!(found, "axioms: {:?}", ont.axioms);
    }

    #[test]
    fn extracts_property_chain() {
        let g = graph("e:uncle owl:propertyChainAxiom (e:parent e:brother) .");
        let ont = extract_axioms(&g);
        assert_eq!(
            ont.count_of(|a| matches!(a, Axiom::PropertyChain(c, _) if c.len() == 2)),
            1
        );
    }

    #[test]
    fn warns_on_malformed_restriction() {
        // Restriction missing a filler: unparseable, should warn not panic.
        let g = graph("e:A rdfs:subClassOf [ a owl:Restriction ; owl:onProperty e:p ] .");
        let ont = extract_axioms(&g);
        assert_eq!(ont.count_of(|a| matches!(a, Axiom::SubClassOf(_, _))), 0);
        assert_eq!(ont.warnings.len(), 1);
    }

    #[test]
    fn one_of_enumeration() {
        let g = graph(
            "e:Season owl:equivalentClass [ owl:oneOf (e:Spring e:Summer e:Autumn e:Winter) ] .",
        );
        let ont = extract_axioms(&g);
        assert!(ont.axioms.iter().any(|a| matches!(
            a,
            Axiom::EquivalentClasses(_, ClassExpr::OneOf(m)) | Axiom::EquivalentClasses(ClassExpr::OneOf(m), _)
                if m.len() == 4
        )));
    }
}
