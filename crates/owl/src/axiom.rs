//! OWL 2 axiom and class-expression model.
//!
//! Axioms reference terms by [`TermId`], so an axiom set is only meaningful
//! together with the [`feo_rdf::Graph`] it was extracted from. This is
//! deliberate: extraction and reasoning always operate on one graph, and
//! id-level axioms make rule application allocation-free.

use feo_rdf::TermId;

/// An OWL class expression (the fragment FEO exercises).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ClassExpr {
    /// A named class (or the blank node standing for a restriction that
    /// could not be parsed — extraction never produces that; unparseable
    /// expressions are skipped with a warning entry instead).
    Named(TermId),
    /// `owl:intersectionOf` — conjunction of expressions.
    IntersectionOf(Vec<ClassExpr>),
    /// `owl:unionOf` — disjunction of expressions.
    UnionOf(Vec<ClassExpr>),
    /// `owl:complementOf`.
    ComplementOf(Box<ClassExpr>),
    /// `owl:someValuesFrom` restriction on `property`.
    SomeValuesFrom {
        property: TermId,
        filler: Box<ClassExpr>,
    },
    /// `owl:allValuesFrom` restriction on `property`.
    AllValuesFrom {
        property: TermId,
        filler: Box<ClassExpr>,
    },
    /// `owl:hasValue` restriction on `property`.
    HasValue { property: TermId, value: TermId },
    /// `owl:oneOf` enumeration of individuals.
    OneOf(Vec<TermId>),
}

impl ClassExpr {
    /// The named class id when this is a plain named class.
    pub fn as_named(&self) -> Option<TermId> {
        match self {
            ClassExpr::Named(id) => Some(*id),
            _ => None,
        }
    }

    /// Structural size — used by tests and to pick the cheapest conjunct
    /// when enumerating candidates.
    pub fn size(&self) -> usize {
        match self {
            ClassExpr::Named(_) => 1,
            ClassExpr::IntersectionOf(es) | ClassExpr::UnionOf(es) => {
                1 + es.iter().map(ClassExpr::size).sum::<usize>()
            }
            ClassExpr::ComplementOf(e) => 1 + e.size(),
            ClassExpr::SomeValuesFrom { filler, .. } | ClassExpr::AllValuesFrom { filler, .. } => {
                1 + filler.size()
            }
            ClassExpr::HasValue { .. } => 1,
            ClassExpr::OneOf(ids) => 1 + ids.len(),
        }
    }
}

/// An OWL axiom over interned terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Axiom {
    SubClassOf(ClassExpr, ClassExpr),
    EquivalentClasses(ClassExpr, ClassExpr),
    DisjointClasses(ClassExpr, ClassExpr),
    SubPropertyOf(TermId, TermId),
    EquivalentProperties(TermId, TermId),
    /// `owl:propertyChainAxiom`: the chain (in order) is a subproperty of
    /// the named property.
    PropertyChain(Vec<TermId>, TermId),
    InverseOf(TermId, TermId),
    TransitiveProperty(TermId),
    SymmetricProperty(TermId),
    AsymmetricProperty(TermId),
    FunctionalProperty(TermId),
    InverseFunctionalProperty(TermId),
    IrreflexiveProperty(TermId),
    Domain(TermId, ClassExpr),
    Range(TermId, ClassExpr),
    DisjointProperties(TermId, TermId),
    SameAs(TermId, TermId),
    DifferentFrom(TermId, TermId),
}

/// The axioms extracted from a graph, plus notes about constructs the
/// extractor recognized but could not fully parse (e.g. a malformed
/// restriction). Notes are surfaced rather than silently dropped so
/// ontology bugs show up in tests.
#[derive(Debug, Default, Clone)]
pub struct Ontology {
    pub axioms: Vec<Axiom>,
    pub warnings: Vec<String>,
}

impl Ontology {
    /// Iterate all subclass relationships including both directions of
    /// every equivalence (an equivalence is two subclass axioms).
    pub fn subclass_like(&self) -> impl Iterator<Item = (&ClassExpr, &ClassExpr)> {
        self.axioms.iter().flat_map(|a| match a {
            Axiom::SubClassOf(sub, sup) => vec![(sub, sup)],
            Axiom::EquivalentClasses(a, b) => vec![(a, b), (b, a)],
            _ => vec![],
        })
    }

    pub fn count_of(&self, pred: impl Fn(&Axiom) -> bool) -> usize {
        self.axioms.iter().filter(|a| pred(a)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(n: u32) -> TermId {
        // TermId construction for tests: round-trip through an interner.
        let mut i = feo_rdf::Interner::new();
        let mut id = i.intern(&feo_rdf::Term::iri("http://e/0"));
        for k in 1..=n {
            id = i.intern(&feo_rdf::Term::iri(format!("http://e/{k}")));
        }
        id
    }

    #[test]
    fn class_expr_size() {
        let a = ClassExpr::Named(tid(0));
        let b = ClassExpr::SomeValuesFrom {
            property: tid(1),
            filler: Box::new(a.clone()),
        };
        let c = ClassExpr::IntersectionOf(vec![a.clone(), b.clone()]);
        assert_eq!(a.size(), 1);
        assert_eq!(b.size(), 2);
        assert_eq!(c.size(), 4);
    }

    #[test]
    fn subclass_like_expands_equivalences() {
        let a = ClassExpr::Named(tid(0));
        let b = ClassExpr::Named(tid(1));
        let ont = Ontology {
            axioms: vec![
                Axiom::SubClassOf(a.clone(), b.clone()),
                Axiom::EquivalentClasses(a.clone(), b.clone()),
            ],
            warnings: vec![],
        };
        assert_eq!(ont.subclass_like().count(), 3);
    }
}
