//! Forward-chaining materializing reasoner.
//!
//! Implements the OWL 2 RL entailment rules the FEO pipeline depends on,
//! replacing the Pellet reasoner the paper used. The paper's workflow is
//! "run the reasoner, export the ontology with the inferred axioms, then
//! run SPARQL over the export" — [`Reasoner::materialize`] is exactly that
//! export step: it adds every derivable triple to the graph in place.
//!
//! ## Rule coverage
//!
//! Schema: subclass/subproperty transitive closure (scm-sco, scm-spo),
//! equivalence as bidirectional subsumption (scm-eqc, scm-eqp).
//!
//! Instance: cax-sco (type inheritance), prp-spo1 (subproperty),
//! prp-inv (inverses), prp-symp (symmetric), prp-trp (transitive),
//! prp-dom/prp-rng (domain/range, including complex class expressions via
//! membership application), prp-spo2 (property chains), prp-fp / prp-ifp
//! (functional → `owl:sameAs`), eq-sym/eq-rep (sameAs propagation and
//! triple replication), cls-int1/2, cls-svf1, cls-hv1/2, cls-avf, cls-oo —
//! realized as generic "satisfies / apply" evaluation of class
//! expressions on each side of every (Sub|Equivalent)ClassOf axiom.
//!
//! Consistency: cax-dw (disjoint classes), cls-nothing2, prp-irp
//! (irreflexive), prp-asyp (asymmetric), eq-diff1 (sameAs ∧ differentFrom).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

use feo_rdf::governor::{Exhausted, Guard, Resource};
use feo_rdf::pool::{map_chunks, Parallelism};
use feo_rdf::vocab::{owl, rdf, rdfs};
use feo_rdf::{GraphStore, GraphView, Overlay, TermId};

use crate::axiom::{Axiom, ClassExpr, Ontology};
use crate::extract::extract_axioms;

/// Tuning knobs for materialization.
#[derive(Debug, Clone)]
pub struct ReasonerOptions {
    /// Insert the transitive closure of `rdfs:subClassOf` /
    /// `rdfs:subPropertyOf` over named classes/properties into the graph,
    /// so SPARQL queries can use single-hop subclass patterns the way the
    /// paper's Listing 1 does. Default: true.
    pub materialize_schema_closure: bool,
    /// Abort after this many outer rounds (safety valve; the fixpoint
    /// normally converges in a handful). Default: 64.
    pub max_rounds: usize,
    /// Run consistency checks after the fixpoint. Default: true.
    pub check_consistency: bool,
    /// Record, for every inferred triple, the rule that produced it and
    /// its premise triples — the analogue of Pellet's axiom explanations.
    /// Default: false (costs memory proportional to the inferred set).
    pub track_derivations: bool,
}

impl Default for ReasonerOptions {
    fn default() -> Self {
        ReasonerOptions {
            materialize_schema_closure: true,
            max_rounds: 64,
            check_consistency: true,
            track_derivations: false,
        }
    }
}

/// Why an inferred triple holds: the rule that fired and the premise
/// triples it consumed. Premises that were themselves inferred have their
/// own entries, so chains of `Derivation`s form proof trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derivation {
    /// OWL 2 RL rule name (e.g. `cax-sco`, `prp-trp`, `cls`).
    pub rule: &'static str,
    /// The triples this inference consumed.
    pub premises: Vec<[TermId; 3]>,
}

/// A detected inconsistency. The graph is still materialized (all sound
/// derivations are kept); callers decide how to react, mirroring how the
/// paper's pipeline would surface a Pellet inconsistency report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistency {
    pub kind: InconsistencyKind,
    /// Human-readable description using local names.
    pub detail: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InconsistencyKind {
    DisjointClassesViolation,
    DisjointPropertiesViolation,
    NothingHasInstance,
    IrreflexiveViolation,
    AsymmetricViolation,
    SameAndDifferent,
}

/// Statistics and findings from one materialization run.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Triples added to the graph by inference.
    pub added: usize,
    /// Outer fixpoint rounds used.
    pub rounds: usize,
    /// Whether the fixpoint actually converged. `false` means the round
    /// cap ([`ReasonerOptions::max_rounds`]) cut the loop short and the
    /// materialized output may be incomplete. The guarded entry points
    /// surface the same condition as a typed
    /// [`Exhausted`] with [`Resource::Rounds`] instead.
    pub converged: bool,
    /// Number of axioms extracted from the graph.
    pub axiom_count: usize,
    /// Extraction warnings (unparseable expressions).
    pub warnings: Vec<String>,
    /// Detected inconsistencies (empty when consistent).
    pub inconsistencies: Vec<Inconsistency>,
    /// Per-triple derivations (populated only with
    /// [`ReasonerOptions::track_derivations`]).
    pub derivations: HashMap<[TermId; 3], Derivation>,
}

impl Default for InferenceResult {
    fn default() -> Self {
        InferenceResult {
            added: 0,
            rounds: 0,
            // An empty run is trivially converged; the engine flips this
            // only when a round cap actually cuts the fixpoint short.
            converged: true,
            axiom_count: 0,
            warnings: Vec::new(),
            inconsistencies: Vec::new(),
            derivations: HashMap::new(),
        }
    }
}

impl InferenceResult {
    pub fn is_consistent(&self) -> bool {
        self.inconsistencies.is_empty()
    }
}

/// Error surface of the guarded materialization entry points.
#[derive(Debug, Clone)]
pub enum ReasonerError {
    /// An execution budget tripped mid-closure. The triples derived up to
    /// that point are already in the graph/overlay (sound but possibly
    /// incomplete), and `partial` carries the statistics for them —
    /// callers can keep the partial materialization or roll the overlay
    /// back.
    Exhausted {
        exhausted: Exhausted,
        partial: Box<InferenceResult>,
    },
}

impl ReasonerError {
    /// The budget trip behind this error.
    pub fn exhausted(&self) -> &Exhausted {
        match self {
            ReasonerError::Exhausted { exhausted, .. } => exhausted,
        }
    }

    /// Unwraps the partial result, discarding the trip. The derived
    /// triples are already in the store, so callers that want
    /// best-effort semantics (keep whatever closure completed) use
    /// `materialize(..).unwrap_or_else(|e| e.into_partial())`.
    pub fn into_partial(self) -> InferenceResult {
        match self {
            ReasonerError::Exhausted { partial, .. } => *partial,
        }
    }
}

/// Options accepted by the unified materialization entry points
/// ([`Reasoner::materialize`] / [`Reasoner::materialize_delta`]).
///
/// - `guard`: charge the closure against an execution [`Guard`]; a trip
///   surfaces as [`ReasonerError::Exhausted`] with the partial result.
/// - `rules`: reuse a [`CompiledRules`] table instead of re-extracting
///   and compiling the TBox on every call (the snapshot + overlay
///   pipeline compiles once per base graph).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaterializeOptions<'a> {
    /// Execution guard; `None` runs unguarded (never errors).
    pub guard: Option<&'a Guard>,
    /// Precompiled rule tables; `None` compiles from the store itself.
    pub rules: Option<&'a CompiledRules>,
    /// Worker threads for the semi-naïve rounds. The closure is
    /// byte-identical whatever the setting (see the "Deterministic
    /// parallelism" notes on [`Reasoner::materialize`]); with derivation
    /// tracking on, workers capture each conclusion's premises and the
    /// pinned-order merge records them.
    pub parallelism: Parallelism,
}

impl<'a> MaterializeOptions<'a> {
    /// Options with only a guard set.
    pub fn guarded(guard: &'a Guard) -> Self {
        MaterializeOptions {
            guard: Some(guard),
            ..Default::default()
        }
    }

    /// Options with only precompiled rules set.
    pub fn with_rules(rules: &'a CompiledRules) -> Self {
        MaterializeOptions {
            rules: Some(rules),
            ..Default::default()
        }
    }
}

impl fmt::Display for ReasonerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReasonerError::Exhausted { exhausted, partial } => write!(
                f,
                "materialization stopped early: {} ({} triples derived before the trip)",
                exhausted, partial.added
            ),
        }
    }
}

impl std::error::Error for ReasonerError {}

/// The materializing reasoner.
///
/// [`Reasoner::materialize`] recompiles the TBox on every call, so graphs
/// whose schema changes between runs keep working. The snapshot + overlay
/// pipeline instead calls [`Reasoner::compile`] once on the base graph and
/// then [`Reasoner::materialize_delta`] per session overlay, skipping both
/// re-extraction and the full fixpoint.
#[derive(Debug, Default, Clone)]
pub struct Reasoner {
    options: ReasonerOptions,
}

impl Reasoner {
    pub fn new() -> Self {
        Reasoner::default()
    }

    pub fn with_options(options: ReasonerOptions) -> Self {
        Reasoner { options }
    }

    /// Materializes all derivable triples into `graph` and returns run
    /// statistics. Idempotent: a second run adds nothing.
    ///
    /// Behavior under [`MaterializeOptions`]:
    /// - with `rules`, reuses the precompiled tables; otherwise extracts
    ///   and compiles the TBox first (use [`Reasoner::compile`] to split
    ///   that work out across runs);
    /// - with `guard`, the derived-triple budget is charged per
    ///   inference, the deadline / cancellation flag is polled in every
    ///   hot loop, and a trip surfaces as [`ReasonerError::Exhausted`]
    ///   carrying the partial statistics — triples derived before the
    ///   trip stay in the graph. Unguarded runs never error (round caps
    ///   surface as `converged: false` instead).
    /// - with `parallelism` resolving to more than one worker, each
    ///   semi-naïve round partitions its frontier across a scoped worker
    ///   pool; every worker fires the compiled rules against the shared
    ///   read-only store and the candidate buffers are merged **in pinned
    ///   chunk order** on the calling thread, so the final closure is
    ///   byte-identical to a sequential run. Budgets are charged at the
    ///   merge (one choke point, exact counts) and workers poll the
    ///   shared guard, so guarded runs still end exact-or-`Exhausted`.
    ///   With derivation tracking on, workers capture per-conclusion
    ///   premises and the merge records them in the same pinned order,
    ///   so proofs are parallel-safe too.
    pub fn materialize(
        &self,
        graph: &mut (impl GraphStore + Sync),
        opts: &MaterializeOptions,
    ) -> Result<InferenceResult, ReasonerError> {
        let compiled;
        let rules = match opts.rules {
            Some(r) => r,
            None => {
                compiled = CompiledRules::compile(graph);
                &compiled
            }
        };
        let mut engine = Engine::new(graph, rules, &self.options);
        engine.guard = opts.guard;
        engine.workers = opts.parallelism.workers();
        settle(engine.run())
    }

    /// Deprecated form of [`Reasoner::materialize`] with a guard.
    #[deprecated(note = "use `materialize(graph, &MaterializeOptions::guarded(guard))`")]
    pub fn materialize_guarded(
        &self,
        graph: &mut (impl GraphStore + Sync),
        guard: &Guard,
    ) -> Result<InferenceResult, ReasonerError> {
        self.materialize(graph, &MaterializeOptions::guarded(guard))
    }

    /// Extracts the graph's axioms and compiles them into reusable rule
    /// tables (see [`CompiledRules`]).
    pub fn compile(&self, graph: &mut impl GraphStore) -> CompiledRules {
        CompiledRules::compile(graph)
    }

    /// Deprecated form of [`Reasoner::materialize`] with precompiled
    /// rules.
    #[deprecated(note = "use `materialize(graph, &MaterializeOptions::with_rules(rules))`")]
    pub fn materialize_with(
        &self,
        graph: &mut (impl GraphStore + Sync),
        rules: &CompiledRules,
    ) -> InferenceResult {
        self.materialize(graph, &MaterializeOptions::with_rules(rules))
            .unwrap_or_else(|e| e.into_partial())
    }

    /// Deprecated form of [`Reasoner::materialize`] with both rules and
    /// a guard.
    #[deprecated(note = "use `materialize` with `MaterializeOptions { guard, rules }`")]
    pub fn materialize_with_guarded(
        &self,
        graph: &mut (impl GraphStore + Sync),
        rules: &CompiledRules,
        guard: &Guard,
    ) -> Result<InferenceResult, ReasonerError> {
        self.materialize(
            graph,
            &MaterializeOptions {
                guard: Some(guard),
                rules: Some(rules),
                ..Default::default()
            },
        )
    }

    /// Semi-naïve incremental re-closure of an overlay whose base is
    /// already materialized: only consequences reachable from the
    /// overlay's delta triples are derived, which is equivalent to a full
    /// re-materialization of `base ∪ delta` when
    ///
    /// - the base was materialized under the same `rules`, and
    /// - the delta contains ABox assertions only (the TBox, and therefore
    ///   `rules`, is unchanged).
    ///
    /// All derived triples land in the overlay's delta; the base is never
    /// touched. Consistency checking (when enabled) is likewise scoped to
    /// the delta: only violations involving delta-affected triples or
    /// individuals are reported.
    ///
    /// The rule tables normally arrive via [`MaterializeOptions::rules`],
    /// compiled once from the base; when absent they are compiled from
    /// the overlay itself (correct, but repeats the TBox work the
    /// snapshot pipeline exists to avoid). With a guard set, a trip
    /// leaves the triples derived so far in the overlay's delta; the
    /// caller decides whether to keep or discard the partial closure.
    pub fn materialize_delta<B: GraphView + Sync>(
        &self,
        overlay: &mut Overlay<B>,
        opts: &MaterializeOptions,
    ) -> Result<InferenceResult, ReasonerError> {
        let seed: Vec<[TermId; 3]> = overlay.delta_log().to_vec();
        let compiled;
        let rules = match opts.rules {
            Some(r) => r,
            None => {
                compiled = CompiledRules::compile(overlay);
                &compiled
            }
        };
        let mut engine = Engine::new(overlay, rules, &self.options);
        engine.guard = opts.guard;
        engine.workers = opts.parallelism.workers();
        settle(engine.run_delta(&seed))
    }

    /// Deprecated form of [`Reasoner::materialize_delta`] with a guard.
    #[deprecated(note = "use `materialize_delta` with `MaterializeOptions { guard, rules }`")]
    pub fn materialize_delta_guarded<B: GraphView + Sync>(
        &self,
        overlay: &mut Overlay<B>,
        rules: &CompiledRules,
        guard: &Guard,
    ) -> Result<InferenceResult, ReasonerError> {
        self.materialize_delta(
            overlay,
            &MaterializeOptions {
                guard: Some(guard),
                rules: Some(rules),
                ..Default::default()
            },
        )
    }
}

/// Maps an engine run's `(result, tripped)` pair onto the guarded
/// entry points' `Result` surface.
fn settle(
    (result, tripped): (InferenceResult, Option<Exhausted>),
) -> Result<InferenceResult, ReasonerError> {
    match tripped {
        None => Ok(result),
        Some(exhausted) => Err(ReasonerError::Exhausted {
            exhausted,
            partial: Box::new(result),
        }),
    }
}

/// Rule tables compiled once from a graph's TBox, reusable across any
/// number of closure runs over stores sharing that graph's id space
/// (the graph itself, or [`Overlay`]s based on it).
///
/// Compilation is the expensive, schema-dependent half of what
/// [`Reasoner::materialize`] used to do on every call: axiom extraction,
/// schema transitive closure, and rule-table indexing. Splitting it out
/// lets the engine answer many per-session deltas against one compiled
/// TBox.
#[derive(Debug, Clone)]
pub struct CompiledRules {
    rdf_type: TermId,
    same_as: TermId,
    /// Named-class superclasses (transitive, irreflexive-by-construction
    /// unless cycles exist, in which case cycle members include each other).
    sup_class: HashMap<TermId, BTreeSet<TermId>>,
    /// Named-property superproperties (transitive).
    sup_prop: HashMap<TermId, BTreeSet<TermId>>,
    inverses: HashMap<TermId, Vec<TermId>>,
    transitive: HashSet<TermId>,
    symmetric: HashSet<TermId>,
    asymmetric: HashSet<TermId>,
    functional: HashSet<TermId>,
    inverse_functional: HashSet<TermId>,
    irreflexive: HashSet<TermId>,
    domains: HashMap<TermId, Vec<ClassExpr>>,
    ranges: HashMap<TermId, Vec<ClassExpr>>,
    chains: Vec<(Vec<TermId>, TermId)>,
    /// Subclass-like pairs where at least one side is a complex expression.
    complex: Vec<(ClassExpr, ClassExpr)>,
    disjoint_classes: Vec<(ClassExpr, ClassExpr)>,
    disjoint_properties: Vec<(TermId, TermId)>,
    different_from: Vec<(TermId, TermId)>,
    /// Asserted `owl:sameAs` pairs (fed to the alias machinery at the
    /// start of a full run).
    initial_same_as: Vec<(TermId, TermId)>,
    /// Max nesting depth over the left-hand sides of `complex` and
    /// `disjoint_classes` expressions: how many property steps away a
    /// node's membership can depend on a triple. Bounds the backward
    /// expansion of the delta-mode dirty set.
    lhs_depth: usize,
    /// `someValuesFrom` properties occurring (at any depth) in those
    /// left-hand sides — the only edges membership evidence can travel
    /// along, so backward expansion follows only these.
    lhs_step_props: BTreeSet<TermId>,
    axiom_count: usize,
    warnings: Vec<String>,
}

impl CompiledRules {
    /// Extracts axioms from the store and compiles them. `&mut` only to
    /// intern the two vocabulary ids every rule needs (`rdf:type`,
    /// `owl:sameAs`); no triples are added.
    pub fn compile(g: &mut impl GraphStore) -> Self {
        let ontology = extract_axioms(g);
        Self::from_ontology(g, &ontology)
    }

    /// Compiles an already-extracted [`Ontology`].
    pub fn from_ontology(g: &mut impl GraphStore, ontology: &Ontology) -> Self {
        let rdf_type = g.intern_iri(rdf::TYPE);
        let same_as = g.intern_iri(owl::SAME_AS);

        let mut sup_class: HashMap<TermId, BTreeSet<TermId>> = HashMap::new();
        let mut sup_prop: HashMap<TermId, BTreeSet<TermId>> = HashMap::new();
        let mut inverses: HashMap<TermId, Vec<TermId>> = HashMap::new();
        let mut transitive = HashSet::new();
        let mut symmetric = HashSet::new();
        let mut asymmetric = HashSet::new();
        let mut functional = HashSet::new();
        let mut inverse_functional = HashSet::new();
        let mut irreflexive = HashSet::new();
        let mut domains: HashMap<TermId, Vec<ClassExpr>> = HashMap::new();
        let mut ranges: HashMap<TermId, Vec<ClassExpr>> = HashMap::new();
        let mut chains = Vec::new();
        let mut complex = Vec::new();
        let mut disjoint_classes = Vec::new();
        let mut disjoint_properties = Vec::new();
        let mut different_from = Vec::new();
        let mut initial_same_as = Vec::new();

        for (sub, sup) in ontology.subclass_like() {
            match (sub.as_named(), sup.as_named()) {
                (Some(a), Some(b)) => {
                    sup_class.entry(a).or_default().insert(b);
                }
                _ => complex.push((sub.clone(), sup.clone())),
            }
        }

        for axiom in &ontology.axioms {
            match axiom {
                Axiom::SubPropertyOf(a, b) => {
                    sup_prop.entry(*a).or_default().insert(*b);
                }
                Axiom::EquivalentProperties(a, b) => {
                    sup_prop.entry(*a).or_default().insert(*b);
                    sup_prop.entry(*b).or_default().insert(*a);
                }
                Axiom::InverseOf(a, b) => {
                    inverses.entry(*a).or_default().push(*b);
                    inverses.entry(*b).or_default().push(*a);
                }
                Axiom::TransitiveProperty(p) => {
                    transitive.insert(*p);
                }
                Axiom::SymmetricProperty(p) => {
                    symmetric.insert(*p);
                }
                Axiom::AsymmetricProperty(p) => {
                    asymmetric.insert(*p);
                }
                Axiom::FunctionalProperty(p) => {
                    functional.insert(*p);
                }
                Axiom::InverseFunctionalProperty(p) => {
                    inverse_functional.insert(*p);
                }
                Axiom::IrreflexiveProperty(p) => {
                    irreflexive.insert(*p);
                }
                Axiom::Domain(p, c) => domains.entry(*p).or_default().push(c.clone()),
                Axiom::Range(p, c) => ranges.entry(*p).or_default().push(c.clone()),
                Axiom::PropertyChain(chain, p) => chains.push((chain.clone(), *p)),
                Axiom::DisjointClasses(a, b) => disjoint_classes.push((a.clone(), b.clone())),
                Axiom::DisjointProperties(a, b) => disjoint_properties.push((*a, *b)),
                Axiom::DifferentFrom(a, b) => different_from.push((*a, *b)),
                Axiom::SameAs(a, b) => initial_same_as.push((*a, *b)),
                _ => {}
            }
        }

        transitive_close(&mut sup_class);
        transitive_close(&mut sup_prop);

        let mut lhs_depth = 0;
        let mut lhs_step_props = BTreeSet::new();
        for (lhs, _) in complex.iter().chain(disjoint_classes.iter()) {
            lhs_depth = lhs_depth.max(expr_depth(lhs));
            collect_step_props(lhs, &mut lhs_step_props);
        }
        for (_, rhs) in &disjoint_classes {
            // Disjointness tests both sides as membership checks.
            lhs_depth = lhs_depth.max(expr_depth(rhs));
            collect_step_props(rhs, &mut lhs_step_props);
        }

        CompiledRules {
            rdf_type,
            same_as,
            sup_class,
            sup_prop,
            inverses,
            transitive,
            symmetric,
            asymmetric,
            functional,
            inverse_functional,
            irreflexive,
            domains,
            ranges,
            chains,
            complex,
            disjoint_classes,
            disjoint_properties,
            different_from,
            initial_same_as,
            lhs_depth,
            lhs_step_props,
            axiom_count: ontology.axioms.len(),
            warnings: ontology.warnings.clone(),
        }
    }

    /// Number of axioms the rules were compiled from.
    pub fn axiom_count(&self) -> usize {
        self.axiom_count
    }
}

/// How many property steps from an individual a membership witness for
/// `expr` can reach (see [`CompiledRules::lhs_depth`]).
fn expr_depth(expr: &ClassExpr) -> usize {
    match expr {
        ClassExpr::SomeValuesFrom { filler, .. } => 1 + expr_depth(filler),
        ClassExpr::IntersectionOf(es) | ClassExpr::UnionOf(es) => {
            es.iter().map(expr_depth).max().unwrap_or(0)
        }
        ClassExpr::Named(_)
        | ClassExpr::OneOf(_)
        | ClassExpr::HasValue { .. }
        | ClassExpr::AllValuesFrom { .. }
        | ClassExpr::ComplementOf(_) => 0,
    }
}

fn collect_step_props(expr: &ClassExpr, out: &mut BTreeSet<TermId>) {
    match expr {
        ClassExpr::SomeValuesFrom { property, filler } => {
            out.insert(*property);
            collect_step_props(filler, out);
        }
        ClassExpr::IntersectionOf(es) | ClassExpr::UnionOf(es) => {
            for e in es {
                collect_step_props(e, out);
            }
        }
        _ => {}
    }
}

/// Frontier sizes below these stay on the calling thread: the fixed
/// cost of spawning scoped workers only pays for itself once a round
/// carries at least a few hundred rule firings.
const PARALLEL_MIN_FRONTIER: usize = 96;
const PARALLEL_MIN_CANDIDATES: usize = 64;

/// A rule conclusion collected by a pool worker, to be merged into the
/// store sequentially through `Engine::add_by`. With derivation
/// tracking on, the premise triples travel with the conclusion so the
/// merge records the same derivation the sequential worklist would
/// (premises always reference already-inserted triples, so the
/// derivation DAG stays acyclic regardless of merge order).
struct Candidate {
    rule: &'static str,
    triple: [TermId; 3],
    premises: Vec<[TermId; 3]>,
}

/// Pushes `t` as a candidate unless the store already holds it. The
/// merge re-checks membership on insert, so this filter is purely an
/// optimization that keeps duplicate work off the merge thread.
fn emit<V: GraphView + ?Sized>(
    g: &V,
    out: &mut Vec<Candidate>,
    rule: &'static str,
    t: [TermId; 3],
    premises: Vec<[TermId; 3]>,
) {
    if !g.contains_ids(t[0], t[1], t[2]) {
        out.push(Candidate {
            rule,
            triple: t,
            premises,
        });
    }
}

/// Fires every delta-driven instance rule for one non-`sameAs` triple
/// against a read-only store, collecting conclusions instead of
/// inserting them. This is the parallel dual of the rule body in
/// `Engine::drain_queue_worklist` and must derive exactly the same
/// conclusions — with, when `tracking`, exactly the same premises —
/// for a given (store, aliases, triple) snapshot; `sameAs` triples
/// never reach it — the merge step owns the alias machinery.
fn fire_rules<V: GraphView + ?Sized>(
    g: &V,
    rules: &CompiledRules,
    aliases: &HashMap<TermId, BTreeSet<TermId>>,
    [s, p, o]: [TermId; 3],
    tracking: bool,
    out: &mut Vec<Candidate>,
) {
    // Premise capture mirrors `drain_queue_worklist` rule for rule;
    // without tracking, no premises travel (empty vecs are free).
    let prem = |ps: &[[TermId; 3]]| if tracking { ps.to_vec() } else { Vec::new() };
    // cax-sco: type inheritance through the named-class closure.
    if p == rules.rdf_type {
        if let Some(sups) = rules.sup_class.get(&o) {
            for &sup in sups {
                emit(
                    g,
                    out,
                    "cax-sco",
                    [s, rules.rdf_type, sup],
                    prem(&[[s, p, o]]),
                );
            }
        }
        return;
    }
    // prp-spo1
    if let Some(sups) = rules.sup_prop.get(&p) {
        for &q in sups {
            emit(g, out, "prp-spo1", [s, q, o], prem(&[[s, p, o]]));
        }
    }
    // prp-inv
    if let Some(invs) = rules.inverses.get(&p) {
        for &q in invs {
            emit(g, out, "prp-inv", [o, q, s], prem(&[[s, p, o]]));
        }
    }
    // prp-symp
    if rules.symmetric.contains(&p) {
        emit(g, out, "prp-symp", [o, p, s], prem(&[[s, p, o]]));
    }
    // prp-trp
    if rules.transitive.contains(&p) {
        for z in g.objects(o, p) {
            emit(g, out, "prp-trp", [s, p, z], prem(&[[s, p, o], [o, p, z]]));
        }
        for t in g.match_pattern(None, Some(p), Some(s)) {
            emit(
                g,
                out,
                "prp-trp",
                [t[0], p, o],
                prem(&[[t[0], p, s], [s, p, o]]),
            );
        }
    }
    // prp-dom / prp-rng
    if let Some(cs) = rules.domains.get(&p) {
        for c in cs {
            collect_membership(g, rules, s, c, tracking, &[], out);
        }
    }
    if let Some(cs) = rules.ranges.get(&p) {
        for c in cs {
            collect_membership(g, rules, o, c, tracking, &[], out);
        }
    }
    // prp-fp: functional — two objects are the same individual.
    if rules.functional.contains(&p) {
        for o2 in g.objects(s, p) {
            if o2 != o && g.term(o).is_resource() && g.term(o2).is_resource() {
                emit(
                    g,
                    out,
                    "prp-fp",
                    [o, rules.same_as, o2],
                    prem(&[[s, p, o], [s, p, o2]]),
                );
            }
        }
    }
    // prp-ifp
    if rules.inverse_functional.contains(&p) {
        for s2 in g.subjects(p, o) {
            if s2 != s {
                emit(
                    g,
                    out,
                    "prp-ifp",
                    [s, rules.same_as, s2],
                    prem(&[[s, p, o], [s2, p, o]]),
                );
            }
        }
    }
    // eq-rep: replicate across known aliases of s and o.
    if let Some(al) = aliases.get(&s) {
        for &a in al {
            emit(g, out, "eq-rep-s", [a, p, o], prem(&[[s, p, o]]));
        }
    }
    if let Some(al) = aliases.get(&o) {
        for &a in al {
            emit(g, out, "eq-rep-o", [s, p, a], prem(&[[s, p, o]]));
        }
    }
}

/// Read-only dual of `Engine::satisfies`, shared by the sequential and
/// parallel sweeps so the two cannot drift apart.
fn satisfies_in<V: GraphView + ?Sized>(
    g: &V,
    rules: &CompiledRules,
    x: TermId,
    expr: &ClassExpr,
) -> bool {
    match expr {
        ClassExpr::Named(c) => g.contains_ids(x, rules.rdf_type, *c),
        ClassExpr::IntersectionOf(es) => es.iter().all(|e| satisfies_in(g, rules, x, e)),
        ClassExpr::UnionOf(es) => es.iter().any(|e| satisfies_in(g, rules, x, e)),
        ClassExpr::SomeValuesFrom { property, filler } => g
            .objects(x, *property)
            .into_iter()
            .any(|o| satisfies_in(g, rules, o, filler)),
        ClassExpr::HasValue { property, value } => g.contains_ids(x, *property, *value),
        ClassExpr::OneOf(ids) => ids.contains(&x),
        // Open-world: membership in a complement or universal
        // restriction is never derived, matching OWL 2 RL.
        ClassExpr::AllValuesFrom { .. } | ClassExpr::ComplementOf(_) => false,
    }
}

/// Satisfaction check that also collects the witnessing triples — the
/// read-only dual of [`satisfies_in`] used for derivation tracking, and
/// the single implementation behind `Engine::witnesses` so the
/// sequential and parallel sweeps record identical premises.
fn witnesses_in<V: GraphView + ?Sized>(
    g: &V,
    rules: &CompiledRules,
    x: TermId,
    expr: &ClassExpr,
    out: &mut Vec<[TermId; 3]>,
) -> bool {
    match expr {
        ClassExpr::Named(c) => {
            if g.contains_ids(x, rules.rdf_type, *c) {
                out.push([x, rules.rdf_type, *c]);
                true
            } else {
                false
            }
        }
        ClassExpr::IntersectionOf(es) => {
            let mark = out.len();
            for e in es {
                if !witnesses_in(g, rules, x, e, out) {
                    out.truncate(mark);
                    return false;
                }
            }
            true
        }
        ClassExpr::UnionOf(es) => es.iter().any(|e| witnesses_in(g, rules, x, e, out)),
        ClassExpr::SomeValuesFrom { property, filler } => {
            for o in g.objects(x, *property) {
                let mark = out.len();
                out.push([x, *property, o]);
                if witnesses_in(g, rules, o, filler, out) {
                    return true;
                }
                out.truncate(mark);
            }
            false
        }
        ClassExpr::HasValue { property, value } => {
            if g.contains_ids(x, *property, *value) {
                out.push([x, *property, *value]);
                true
            } else {
                false
            }
        }
        ClassExpr::OneOf(ids) => ids.contains(&x),
        ClassExpr::AllValuesFrom { .. } | ClassExpr::ComplementOf(_) => false,
    }
}

/// Read-only dual of `Engine::apply_membership_by`: collects the
/// membership consequences of `x ∈ expr` as candidates instead of
/// asserting them, and must mirror its case analysis exactly —
/// including how `premises` accumulate the walked edge through
/// universal restrictions when `tracking`.
fn collect_membership<V: GraphView + ?Sized>(
    g: &V,
    rules: &CompiledRules,
    x: TermId,
    expr: &ClassExpr,
    tracking: bool,
    premises: &[[TermId; 3]],
    out: &mut Vec<Candidate>,
) {
    let prem = || {
        if tracking {
            premises.to_vec()
        } else {
            Vec::new()
        }
    };
    match expr {
        ClassExpr::Named(c) => emit(g, out, "cls", [x, rules.rdf_type, *c], prem()),
        ClassExpr::IntersectionOf(es) => {
            for e in es {
                collect_membership(g, rules, x, e, tracking, premises, out);
            }
        }
        ClassExpr::HasValue { property, value } => {
            emit(g, out, "cls-hv1", [x, *property, *value], prem())
        }
        ClassExpr::AllValuesFrom { property, filler } => {
            // cls-avf: every p-successor of x is in the filler.
            for o in g.objects(x, *property) {
                if tracking {
                    let mut with_edge = premises.to_vec();
                    with_edge.push([x, *property, o]);
                    collect_membership(g, rules, o, filler, tracking, &with_edge, out);
                } else {
                    collect_membership(g, rules, o, filler, tracking, &[], out);
                }
            }
        }
        ClassExpr::OneOf(ids) if ids.len() == 1 => {
            // Singleton enumeration: x is that individual.
            emit(g, out, "cls-oo", [x, rules.same_as, ids[0]], prem());
        }
        // No existential introduction (matches OWL 2 RL), and nothing
        // sound to conclude from a union or general enumeration.
        ClassExpr::SomeValuesFrom { .. }
        | ClassExpr::UnionOf(_)
        | ClassExpr::OneOf(_)
        | ClassExpr::ComplementOf(_) => {}
    }
}

/// The running fixpoint state over any [`GraphStore`].
struct Engine<'a, S: GraphStore> {
    g: &'a mut S,
    rules: &'a CompiledRules,
    opts: &'a ReasonerOptions,
    result: InferenceResult,
    /// sameAs alias sets, maintained incrementally.
    aliases: HashMap<TermId, BTreeSet<TermId>>,
    queue: VecDeque<[TermId; 3]>,
    /// Delta mode only: individuals mentioned by any new triple, and the
    /// new triples themselves, for scoping the complex/chain/consistency
    /// passes to what the delta could have changed.
    delta_mode: bool,
    dirty: HashSet<TermId>,
    new_triples: Vec<[TermId; 3]>,
    /// Position in `new_triples` up to which chains have been evaluated.
    chain_cursor: usize,
    /// Execution governor for the guarded entry points; `None` on the
    /// legacy (unguarded) paths.
    guard: Option<&'a Guard>,
    /// Set when the guard trips; every hot loop bails out once this is
    /// populated so the engine unwinds quickly with its partial result.
    tripped: Option<Exhausted>,
    /// Resolved worker count for the round-partitioned drain and the
    /// complex-axiom sweeps; 1 keeps every loop on the calling thread.
    workers: usize,
}

impl<'a, S: GraphStore + Sync> Engine<'a, S> {
    fn new(g: &'a mut S, rules: &'a CompiledRules, opts: &'a ReasonerOptions) -> Self {
        Engine {
            g,
            rules,
            opts,
            result: InferenceResult {
                axiom_count: rules.axiom_count,
                warnings: rules.warnings.clone(),
                ..Default::default()
            },
            aliases: HashMap::new(),
            queue: VecDeque::new(),
            delta_mode: false,
            dirty: HashSet::new(),
            new_triples: Vec::new(),
            chain_cursor: 0,
            guard: None,
            tripped: None,
            workers: 1,
        }
    }

    /// Polls the governor (amortized wall-clock / cancellation check) and
    /// reports whether execution should stop. Hot loops call this at
    /// their iteration boundaries.
    #[inline]
    fn guard_tripped(&mut self) -> bool {
        if self.tripped.is_some() {
            return true;
        }
        if let Some(g) = self.guard {
            if let Err(exhausted) = g.check_time() {
                self.tripped = Some(exhausted);
                return true;
            }
        }
        false
    }

    /// Handles the outer round cap shared by both fixpoints. Returns true
    /// when the loop must stop. On the legacy path this flips
    /// `converged` and records a warning (the historical behavior); on
    /// the guarded path it additionally trips the guard so callers get a
    /// typed `Exhausted { resource: Rounds }`.
    fn round_cap_hit(&mut self) -> bool {
        if self.result.rounds < self.opts.max_rounds {
            return false;
        }
        self.result.converged = false;
        self.result.warnings.push(format!(
            "fixpoint not reached after {} rounds — output may be incomplete",
            self.opts.max_rounds
        ));
        if self.guard.is_some() && self.tripped.is_none() {
            self.tripped = Some(Exhausted {
                resource: Resource::Rounds,
                spent: self.result.rounds as u64,
                limit: self.opts.max_rounds as u64,
            });
        }
        true
    }

    fn run(mut self) -> (InferenceResult, Option<Exhausted>) {
        for &(a, b) in &self.rules.initial_same_as.clone() {
            self.note_alias(a, b);
        }
        if self.opts.materialize_schema_closure {
            self.materialize_schema();
        }

        // Seed: every asserted triple can fire instance rules.
        let all: Vec<[TermId; 3]> = self.g.iter_ids().collect();
        self.queue.extend(all);

        loop {
            if self.guard_tripped() {
                break;
            }
            self.result.rounds += 1;
            if let Some(g) = self.guard {
                if let Err(exhausted) = g.add_round() {
                    self.tripped = Some(exhausted);
                    break;
                }
            }
            self.drain_queue();
            let before = self.result.added;
            self.complex_pass();
            self.chain_pass();
            if self.tripped.is_some() {
                break;
            }
            if self.result.added == before && self.queue.is_empty() {
                break;
            }
            if self.round_cap_hit() {
                break;
            }
        }

        if self.tripped.is_some() {
            // A tripped budget means the closure stopped early: whatever
            // was derived is sound, but the fixpoint was not reached.
            self.result.converged = false;
        } else if self.opts.check_consistency {
            self.check_consistency();
        }
        (self.result, self.tripped)
    }

    /// Semi-naïve delta closure: derive only what the seed triples (and
    /// their consequences) can newly entail, assuming everything else is
    /// already closed under `rules`.
    fn run_delta(mut self, seed: &[[TermId; 3]]) -> (InferenceResult, Option<Exhausted>) {
        self.delta_mode = true;
        // Aliases discovered during the base closure exist only as
        // `owl:sameAs` triples there; rebuild the alias map so eq-rep
        // fires when a delta triple touches an aliased individual. On a
        // closed base every re-noted pair is a no-op insert.
        let pairs: Vec<(TermId, TermId)> = self
            .g
            .match_pattern(None, Some(self.rules.same_as), None)
            .into_iter()
            .map(|t| (t[0], t[2]))
            .collect();
        for (a, b) in pairs {
            self.note_alias(a, b);
        }
        for &t in seed {
            self.dirty.insert(t[0]);
            self.dirty.insert(t[2]);
            self.new_triples.push(t);
            self.queue.push_back(t);
        }

        loop {
            if self.guard_tripped() {
                break;
            }
            self.result.rounds += 1;
            if let Some(g) = self.guard {
                if let Err(exhausted) = g.add_round() {
                    self.tripped = Some(exhausted);
                    break;
                }
            }
            self.drain_queue();
            let before = self.result.added;
            self.complex_pass_delta();
            self.chain_pass_delta();
            if self.tripped.is_some() {
                break;
            }
            if self.result.added == before && self.queue.is_empty() {
                break;
            }
            if self.round_cap_hit() {
                break;
            }
        }

        if self.tripped.is_some() {
            self.result.converged = false;
        } else if self.opts.check_consistency {
            self.check_consistency_delta();
        }
        (self.result, self.tripped)
    }

    /// Dirty individuals plus everything whose class membership could
    /// depend on them: walk backward along the `someValuesFrom` edge
    /// properties of the compiled left-hand sides, once per nesting
    /// level. A node newly satisfying a complex expression must have a
    /// new triple somewhere in its witness tree, and witness trees only
    /// descend through those properties, so this set covers every
    /// possible new member.
    fn expanded_dirty(&self) -> Vec<TermId> {
        let mut set: BTreeSet<TermId> = self.dirty.iter().copied().collect();
        for _ in 0..self.rules.lhs_depth {
            let mut grow: Vec<TermId> = Vec::new();
            for &n in &set {
                for &p in &self.rules.lhs_step_props {
                    for t in self.g.match_pattern(None, Some(p), Some(n)) {
                        grow.push(t[0]);
                    }
                }
            }
            let before = set.len();
            set.extend(grow);
            if set.len() == before {
                break;
            }
        }
        set.into_iter().collect()
    }

    /// Delta-scoped [`Engine::complex_pass`]: membership is re-evaluated
    /// only for individuals the delta could have affected.
    fn complex_pass_delta(&mut self) {
        let rules = self.rules;
        if rules.complex.is_empty() {
            return;
        }
        let cand = self.expanded_dirty();
        let tracking = self.opts.track_derivations;
        for (sub, sup) in &rules.complex {
            if self.complex_axiom_parallel(&cand, sub, sup) {
                if self.tripped.is_some() {
                    return;
                }
                continue;
            }
            for &x in &cand {
                if self.guard_tripped() {
                    return;
                }
                if tracking {
                    let mut witnesses = Vec::new();
                    if self.witnesses(x, sub, &mut witnesses) {
                        self.apply_membership_by(x, sup, &witnesses);
                    }
                } else if self.satisfies(x, sub) {
                    self.apply_membership(x, sup);
                }
            }
        }
    }

    /// Delta-scoped [`Engine::chain_pass`]: each not-yet-processed new
    /// triple is matched against every chain position, extending left
    /// and right through the (base ∪ delta) view.
    fn chain_pass_delta(&mut self) {
        let rules = self.rules;
        let fresh: Vec<[TermId; 3]> = self.new_triples[self.chain_cursor..].to_vec();
        self.chain_cursor = self.new_triples.len();
        if rules.chains.is_empty() || fresh.is_empty() {
            return;
        }
        let tracking = self.opts.track_derivations;
        for (chain, q) in &rules.chains {
            for &[a, p, b] in &fresh {
                if self.guard_tripped() {
                    return;
                }
                for i in 0..chain.len() {
                    if chain[i] != p {
                        continue;
                    }
                    // Sequences over chain[..i] ending at `a`, walked
                    // backward (steps recorded in reverse).
                    let mut lefts: Vec<(TermId, Vec<[TermId; 3]>)> = vec![(a, Vec::new())];
                    for &pj in chain[..i].iter().rev() {
                        let mut next = Vec::new();
                        for (node, steps) in lefts {
                            for t in self.g.match_pattern(None, Some(pj), Some(node)) {
                                let mut s2 = steps.clone();
                                if tracking {
                                    s2.push(t);
                                }
                                next.push((t[0], s2));
                            }
                        }
                        lefts = next;
                        if lefts.is_empty() {
                            break;
                        }
                    }
                    // Sequences over chain[i+1..] starting at `b`.
                    let mut rights: Vec<(TermId, Vec<[TermId; 3]>)> = vec![(b, Vec::new())];
                    for &pj in &chain[i + 1..] {
                        let mut next = Vec::new();
                        for (node, steps) in rights {
                            for z in self.g.objects(node, pj) {
                                let mut s2 = steps.clone();
                                if tracking {
                                    s2.push([node, pj, z]);
                                }
                                next.push((z, s2));
                            }
                        }
                        rights = next;
                        if rights.is_empty() {
                            break;
                        }
                    }
                    for (start, lsteps) in &lefts {
                        for (end, rsteps) in &rights {
                            let mut steps = Vec::new();
                            if tracking {
                                steps.extend(lsteps.iter().rev().copied());
                                steps.push([a, p, b]);
                                steps.extend(rsteps.iter().copied());
                            }
                            self.add_by("prp-spo2", &steps, *start, *q, *end);
                        }
                    }
                }
            }
        }
    }

    /// Delta-scoped consistency: report only violations a delta triple or
    /// delta-affected individual participates in. A consistent base stays
    /// silent; a violation introduced by the session is always caught.
    fn check_consistency_delta(&mut self) {
        let rules = self.rules;
        if !rules.disjoint_classes.is_empty() {
            let cand = self.expanded_dirty();
            for (a, b) in &rules.disjoint_classes {
                for &x in &cand {
                    if self.satisfies(x, a) && self.satisfies(x, b) {
                        let detail =
                            format!("{} is an instance of disjoint classes", self.g.term_name(x));
                        self.result.inconsistencies.push(Inconsistency {
                            kind: InconsistencyKind::DisjointClassesViolation,
                            detail,
                        });
                    }
                }
            }
        }
        let nothing = self.g.lookup_iri(owl::NOTHING);
        for idx in 0..self.new_triples.len() {
            let [x, p, y] = self.new_triples[idx];
            for &(pp, qq) in &rules.disjoint_properties {
                let other = if p == pp {
                    qq
                } else if p == qq {
                    pp
                } else {
                    continue;
                };
                if self.g.contains_ids(x, other, y) {
                    let detail = format!(
                        "disjoint properties {} and {} both relate {} to {}",
                        self.g.term_name(p),
                        self.g.term_name(other),
                        self.g.term_name(x),
                        self.g.term_name(y)
                    );
                    self.result.inconsistencies.push(Inconsistency {
                        kind: InconsistencyKind::DisjointPropertiesViolation,
                        detail,
                    });
                }
            }
            if p == rules.rdf_type && Some(y) == nothing {
                let detail = format!("{} is an instance of owl:Nothing", self.g.term_name(x));
                self.result.inconsistencies.push(Inconsistency {
                    kind: InconsistencyKind::NothingHasInstance,
                    detail,
                });
            }
            if rules.irreflexive.contains(&p) && x == y {
                let detail = format!(
                    "irreflexive property {} relates {} to itself",
                    self.g.term_name(p),
                    self.g.term_name(x)
                );
                self.result.inconsistencies.push(Inconsistency {
                    kind: InconsistencyKind::IrreflexiveViolation,
                    detail,
                });
            }
            if rules.asymmetric.contains(&p) && x != y && self.g.contains_ids(y, p, x) {
                let detail = format!(
                    "asymmetric property {} holds in both directions between {} and {}",
                    self.g.term_name(p),
                    self.g.term_name(x),
                    self.g.term_name(y)
                );
                self.result.inconsistencies.push(Inconsistency {
                    kind: InconsistencyKind::AsymmetricViolation,
                    detail,
                });
            }
        }
        for &(a, b) in &rules.different_from {
            if self.g.contains_ids(a, rules.same_as, b) || self.g.contains_ids(b, rules.same_as, a)
            {
                let detail = format!(
                    "{} and {} are both sameAs and differentFrom",
                    self.g.term_name(a),
                    self.g.term_name(b)
                );
                self.result.inconsistencies.push(Inconsistency {
                    kind: InconsistencyKind::SameAndDifferent,
                    detail,
                });
            }
        }
    }

    /// Inserts a derived triple, recording its derivation when tracking
    /// is enabled. The first derivation of a triple wins.
    fn add_by(
        &mut self,
        rule: &'static str,
        premises: &[[TermId; 3]],
        s: TermId,
        p: TermId,
        o: TermId,
    ) {
        if self.tripped.is_some() {
            return;
        }
        if self.g.insert_ids(s, p, o) {
            self.result.added += 1;
            if let Some(g) = self.guard {
                // Single choke point: every derived triple, whatever rule
                // produced it, is charged here.
                if let Err(exhausted) = g.add_inferred(1) {
                    self.tripped = Some(exhausted);
                }
            }
            self.queue.push_back([s, p, o]);
            if self.delta_mode {
                self.dirty.insert(s);
                self.dirty.insert(o);
                self.new_triples.push([s, p, o]);
            }
            if self.opts.track_derivations {
                self.result.derivations.insert(
                    [s, p, o],
                    Derivation {
                        rule,
                        premises: premises.to_vec(),
                    },
                );
            }
        }
    }

    fn materialize_schema(&mut self) {
        let sco = self.g.intern_iri(rdfs::SUB_CLASS_OF);
        let spo = self.g.intern_iri(rdfs::SUB_PROPERTY_OF);
        let class_pairs: Vec<(TermId, TermId)> = self
            .rules
            .sup_class
            .iter()
            .flat_map(|(&c, sups)| sups.iter().map(move |&s| (c, s)))
            .collect();
        for (c, s) in class_pairs {
            self.add_by("scm-sco", &[], c, sco, s);
        }
        let prop_pairs: Vec<(TermId, TermId)> = self
            .rules
            .sup_prop
            .iter()
            .flat_map(|(&p, sups)| sups.iter().map(move |&s| (p, s)))
            .collect();
        for (p, s) in prop_pairs {
            self.add_by("scm-spo", &[], p, spo, s);
        }
    }

    /// Instance-rule propagation over the pending queue. Dispatches to
    /// the round-partitioned parallel drain when a pool is configured;
    /// with derivation tracking on, workers capture each conclusion's
    /// premises alongside it and the pinned-order merge records them,
    /// so proof-tracking builds take the parallel path too. Both drains
    /// compute the same monotone fixpoint — the queue is fully empty on
    /// return and the derived triple set is identical.
    fn drain_queue(&mut self) {
        if self.workers > 1 {
            self.drain_queue_rounds();
        } else {
            self.drain_queue_worklist();
        }
    }

    /// Round-partitioned dual of [`Engine::drain_queue_worklist`]: the
    /// queue frontier is split into `owl:sameAs` triples (which mutate
    /// the alias map and so stay sequential) and plain triples, which
    /// fan out across the pool. Each worker fires the compiled rules
    /// against the shared read-only store into a local candidate
    /// buffer; buffers are merged on this thread in pinned chunk order
    /// through [`Engine::add_by`] — the single choke point that
    /// re-checks set membership, charges the budget, and extends the
    /// next frontier. Rules are monotone, so frontier order cannot
    /// change the least fixpoint, and B-tree storage erases insertion
    /// order: the final closure is byte-identical to the worklist's.
    fn drain_queue_rounds(&mut self) {
        let same_as = self.rules.same_as;
        loop {
            if self.guard_tripped() || self.queue.is_empty() {
                return;
            }
            let mut plain: Vec<[TermId; 3]> = Vec::with_capacity(self.queue.len());
            let mut same: Vec<[TermId; 3]> = Vec::new();
            for t in self.queue.drain(..) {
                if t[1] == same_as {
                    same.push(t);
                } else {
                    plain.push(t);
                }
            }
            let buffers = {
                let g: &S = self.g;
                let rules = self.rules;
                let aliases = &self.aliases;
                let guard = self.guard;
                let tracking = self.opts.track_derivations;
                map_chunks(self.workers, PARALLEL_MIN_FRONTIER, &plain, |_, chunk| {
                    let mut out = Vec::new();
                    for &t in chunk {
                        if let Some(gd) = guard {
                            // A tripped deadline/cancellation stops this
                            // worker; the merge loop surfaces the trip.
                            if gd.check_time().is_err() {
                                break;
                            }
                        }
                        fire_rules(g, rules, aliases, t, tracking, &mut out);
                    }
                    out
                })
            };
            for c in buffers.into_iter().flatten() {
                if self.tripped.is_some() {
                    return;
                }
                let [s, p, o] = c.triple;
                self.add_by(c.rule, &c.premises, s, p, o);
            }
            // sameAs triples merge the alias machinery sequentially.
            // Plain triples of this frontier are already in the store,
            // so `replicate_for_alias` sees them; later frontiers fire
            // eq-rep from the updated alias map inside the workers.
            for [s, p, o] in same {
                if self.guard_tripped() {
                    return;
                }
                self.note_alias(s, o);
                self.add_by("eq-sym", &[[s, p, o]], o, same_as, s);
                self.replicate_for_alias(s, o);
                self.replicate_for_alias(o, s);
            }
        }
    }

    /// Instance-rule propagation driven by a worklist of new triples.
    fn drain_queue_worklist(&mut self) {
        while let Some([s, p, o]) = self.queue.pop_front() {
            if self.guard_tripped() {
                return;
            }
            // cax-sco: type inheritance through the named-class closure.
            if p == self.rules.rdf_type {
                if let Some(sups) = self.rules.sup_class.get(&o) {
                    for sup in sups.clone() {
                        self.add_by("cax-sco", &[[s, p, o]], s, self.rules.rdf_type, sup);
                    }
                }
                continue;
            }
            if p == self.rules.same_as {
                self.note_alias(s, o);
                self.add_by("eq-sym", &[[s, p, o]], o, self.rules.same_as, s);
                self.replicate_for_alias(s, o);
                self.replicate_for_alias(o, s);
                continue;
            }

            // prp-spo1
            if let Some(sups) = self.rules.sup_prop.get(&p) {
                for q in sups.clone() {
                    self.add_by("prp-spo1", &[[s, p, o]], s, q, o);
                }
            }
            // prp-inv
            if let Some(invs) = self.rules.inverses.get(&p) {
                for q in invs.clone() {
                    self.add_by("prp-inv", &[[s, p, o]], o, q, s);
                }
            }
            // prp-symp
            if self.rules.symmetric.contains(&p) {
                self.add_by("prp-symp", &[[s, p, o]], o, p, s);
            }
            // prp-trp
            if self.rules.transitive.contains(&p) {
                for z in self.g.objects(o, p) {
                    self.add_by("prp-trp", &[[s, p, o], [o, p, z]], s, p, z);
                }
                let xs: Vec<TermId> = self
                    .g
                    .match_pattern(None, Some(p), Some(s))
                    .into_iter()
                    .map(|t| t[0])
                    .collect();
                for x in xs {
                    self.add_by("prp-trp", &[[x, p, s], [s, p, o]], x, p, o);
                }
            }
            // prp-dom / prp-rng
            if let Some(cs) = self.rules.domains.get(&p).cloned() {
                for c in cs {
                    self.apply_membership(s, &c);
                }
            }
            if let Some(cs) = self.rules.ranges.get(&p).cloned() {
                for c in cs {
                    self.apply_membership(o, &c);
                }
            }
            // prp-fp: functional — two objects are the same individual.
            if self.rules.functional.contains(&p) {
                for o2 in self.g.objects(s, p) {
                    if o2 != o && self.g.term(o).is_resource() && self.g.term(o2).is_resource() {
                        self.add_by(
                            "prp-fp",
                            &[[s, p, o], [s, p, o2]],
                            o,
                            self.rules.same_as,
                            o2,
                        );
                    }
                }
            }
            // prp-ifp
            if self.rules.inverse_functional.contains(&p) {
                for s2 in self.g.subjects(p, o) {
                    if s2 != s {
                        self.add_by(
                            "prp-ifp",
                            &[[s, p, o], [s2, p, o]],
                            s,
                            self.rules.same_as,
                            s2,
                        );
                    }
                }
            }
            // eq-rep: replicate across known aliases of s and o.
            if let Some(al) = self.aliases.get(&s).cloned() {
                for a in al {
                    self.add_by("eq-rep-s", &[[s, p, o]], a, p, o);
                }
            }
            if let Some(al) = self.aliases.get(&o).cloned() {
                for a in al {
                    self.add_by("eq-rep-o", &[[s, p, o]], s, p, a);
                }
            }
        }
    }

    /// Links two individuals as aliases, merging their alias sets so
    /// sameAs chains stay transitively closed (eq-trans), and enqueues the
    /// implied sameAs triples.
    fn note_alias(&mut self, a: TermId, b: TermId) {
        if a == b {
            return;
        }
        // The merged equivalence class of a and b.
        let mut class: BTreeSet<TermId> = BTreeSet::new();
        class.insert(a);
        class.insert(b);
        class.extend(self.aliases.get(&a).into_iter().flatten().copied());
        class.extend(self.aliases.get(&b).into_iter().flatten().copied());
        for &member in &class {
            let others: BTreeSet<TermId> = class.iter().copied().filter(|&m| m != member).collect();
            self.aliases
                .entry(member)
                .or_default()
                .extend(others.iter().copied());
            // Materialize the pairwise sameAs triples (eq-trans/eq-sym).
            for &other in &others {
                self.add_by("eq-trans", &[], member, self.rules.same_as, other);
            }
        }
    }

    /// Copies every triple mentioning `from` onto `to` (eq-rep-s / eq-rep-o).
    fn replicate_for_alias(&mut self, from: TermId, to: TermId) {
        if from == to {
            return;
        }
        let as_subject: Vec<[TermId; 3]> = self.g.match_pattern(Some(from), None, None);
        for [_, p, o] in as_subject {
            if p != self.rules.same_as {
                self.add_by("eq-rep-s", &[[from, p, o]], to, p, o);
            }
        }
        let as_object: Vec<[TermId; 3]> = self.g.match_pattern(None, None, Some(from));
        for [s, p, _] in as_object {
            if p != self.rules.same_as {
                self.add_by("eq-rep-o", &[[s, p, from]], s, p, to);
            }
        }
    }

    /// Parallel satisfaction sweep for one complex axiom: workers check
    /// `satisfies` read-only over candidate chunks and collect the
    /// membership consequences; the merge applies them through
    /// [`Engine::add_by`] in pinned chunk order. With derivation
    /// tracking on, workers collect witness triples ([`witnesses_in`])
    /// and attach them as the candidates' premises, mirroring the
    /// sequential sweep. Returns `false` when the axiom should take the
    /// sequential path instead (no pool, or too few candidates to pay
    /// for fan-out).
    ///
    /// Unlike the sequential sweep, workers evaluate every candidate
    /// against the pre-pass snapshot, so a membership that depends on
    /// another candidate's new membership lands one outer round later.
    /// The outer fixpoint loop runs until nothing changes, so the final
    /// closure is identical either way.
    fn complex_axiom_parallel(
        &mut self,
        cand: &[TermId],
        sub: &ClassExpr,
        sup: &ClassExpr,
    ) -> bool {
        if self.workers <= 1 || cand.len() < PARALLEL_MIN_CANDIDATES {
            return false;
        }
        let buffers = {
            let g: &S = self.g;
            let rules = self.rules;
            let guard = self.guard;
            let tracking = self.opts.track_derivations;
            map_chunks(self.workers, PARALLEL_MIN_CANDIDATES, cand, |_, chunk| {
                let mut out = Vec::new();
                for &x in chunk {
                    if let Some(gd) = guard {
                        if gd.check_time().is_err() {
                            break;
                        }
                    }
                    if tracking {
                        let mut witnesses = Vec::new();
                        if witnesses_in(g, rules, x, sub, &mut witnesses) {
                            collect_membership(g, rules, x, sup, tracking, &witnesses, &mut out);
                        }
                    } else if satisfies_in(g, rules, x, sub) {
                        collect_membership(g, rules, x, sup, tracking, &[], &mut out);
                    }
                }
                out
            })
        };
        for c in buffers.into_iter().flatten() {
            if self.tripped.is_some() {
                return true;
            }
            let [s, p, o] = c.triple;
            self.add_by(c.rule, &c.premises, s, p, o);
        }
        true
    }

    /// One pass over all complex subclass-like axioms.
    fn complex_pass(&mut self) {
        let rules = self.rules;
        let tracking = self.opts.track_derivations;
        for (sub, sup) in &rules.complex {
            let cand = self.candidates(sub);
            if self.complex_axiom_parallel(&cand, sub, sup) {
                if self.tripped.is_some() {
                    return;
                }
                continue;
            }
            for x in cand {
                if self.guard_tripped() {
                    return;
                }
                if tracking {
                    let mut witnesses = Vec::new();
                    if self.witnesses(x, sub, &mut witnesses) {
                        self.apply_membership_by(x, sup, &witnesses);
                    }
                } else if self.satisfies(x, sub) {
                    self.apply_membership(x, sup);
                }
            }
        }
    }

    /// Property-chain evaluation (prp-spo2), full pass. When derivation
    /// tracking is on, the walked step triples are recorded as premises.
    fn chain_pass(&mut self) {
        let chains = self.rules.chains.clone();
        let tracking = self.opts.track_derivations;
        for (chain, q) in &chains {
            let mut frontier: Vec<(TermId, TermId, Vec<[TermId; 3]>)> = self
                .g
                .match_pattern(None, Some(chain[0]), None)
                .into_iter()
                .map(|t| {
                    let steps = if tracking { vec![t] } else { Vec::new() };
                    (t[0], t[2], steps)
                })
                .collect();
            for &p in &chain[1..] {
                let mut next = Vec::new();
                for (start, mid, steps) in frontier {
                    if self.guard_tripped() {
                        return;
                    }
                    for z in self.g.objects(mid, p) {
                        let mut s2 = steps.clone();
                        if tracking {
                            s2.push([mid, p, z]);
                        }
                        next.push((start, z, s2));
                    }
                }
                frontier = next;
                if frontier.is_empty() {
                    break;
                }
            }
            for (s, o, steps) in frontier {
                self.add_by("prp-spo2", &steps, s, *q, o);
            }
        }
    }

    /// Sound membership check: does the graph entail `x ∈ expr` using only
    /// already-materialized triples?
    fn satisfies(&self, x: TermId, expr: &ClassExpr) -> bool {
        satisfies_in(&*self.g, self.rules, x, expr)
    }

    /// Asserts the consequences of `x ∈ expr`.
    fn apply_membership(&mut self, x: TermId, expr: &ClassExpr) {
        self.apply_membership_by(x, expr, &[]);
    }

    /// Like [`Engine::apply_membership`], recording `premises` as the
    /// evidence for every consequence (used when derivation tracking is
    /// on: the premises are the witness triples of the left-hand side).
    fn apply_membership_by(&mut self, x: TermId, expr: &ClassExpr, premises: &[[TermId; 3]]) {
        match expr {
            ClassExpr::Named(c) => self.add_by("cls", premises, x, self.rules.rdf_type, *c),
            ClassExpr::IntersectionOf(es) => {
                for e in es {
                    self.apply_membership_by(x, e, premises);
                }
            }
            ClassExpr::HasValue { property, value } => {
                self.add_by("cls-hv1", premises, x, *property, *value)
            }
            ClassExpr::AllValuesFrom { property, filler } => {
                // cls-avf: every p-successor of x is in the filler.
                for o in self.g.objects(x, *property) {
                    let mut with_edge = premises.to_vec();
                    with_edge.push([x, *property, o]);
                    self.apply_membership_by(o, filler, &with_edge);
                }
            }
            ClassExpr::OneOf(ids) if ids.len() == 1 => {
                // Singleton enumeration: x is that individual.
                self.add_by("cls-oo", premises, x, self.rules.same_as, ids[0]);
            }
            // No existential introduction (matches OWL 2 RL), and nothing
            // sound to conclude from a union or general enumeration.
            ClassExpr::SomeValuesFrom { .. }
            | ClassExpr::UnionOf(_)
            | ClassExpr::OneOf(_)
            | ClassExpr::ComplementOf(_) => {}
        }
    }

    /// Satisfaction check that also collects the witnessing triples —
    /// used for derivation tracking. Semantically identical to
    /// [`Engine::satisfies`].
    fn witnesses(&self, x: TermId, expr: &ClassExpr, out: &mut Vec<[TermId; 3]>) -> bool {
        witnesses_in(&*self.g, self.rules, x, expr, out)
    }

    /// Individuals that could plausibly satisfy `expr` — a superset filter
    /// used to avoid scanning every node for every axiom.
    fn candidates(&self, expr: &ClassExpr) -> Vec<TermId> {
        match expr {
            ClassExpr::Named(c) => self.g.instances_of(*c),
            ClassExpr::IntersectionOf(es) => {
                // Use the conjunct with the most selective concrete
                // candidate set; fall back to the first with any.
                let mut best: Option<Vec<TermId>> = None;
                for e in es {
                    if matches!(
                        e,
                        ClassExpr::AllValuesFrom { .. } | ClassExpr::ComplementOf(_)
                    ) {
                        continue;
                    }
                    let c = self.candidates(e);
                    if best.as_ref().is_none_or(|b| c.len() < b.len()) {
                        best = Some(c);
                    }
                }
                best.unwrap_or_else(|| self.all_subjects())
            }
            ClassExpr::UnionOf(es) => {
                let mut out: BTreeSet<TermId> = BTreeSet::new();
                for e in es {
                    out.extend(self.candidates(e));
                }
                out.into_iter().collect()
            }
            ClassExpr::SomeValuesFrom { property, .. } => {
                let mut out: BTreeSet<TermId> = BTreeSet::new();
                for t in self.g.match_pattern(None, Some(*property), None) {
                    out.insert(t[0]);
                }
                out.into_iter().collect()
            }
            ClassExpr::HasValue { property, value } => self.g.subjects(*property, *value),
            ClassExpr::OneOf(ids) => ids.clone(),
            ClassExpr::AllValuesFrom { .. } | ClassExpr::ComplementOf(_) => self.all_subjects(),
        }
    }

    fn all_subjects(&self) -> Vec<TermId> {
        let mut out: BTreeSet<TermId> = BTreeSet::new();
        for [s, _, _] in self.g.iter_ids() {
            out.insert(s);
        }
        out.into_iter().collect()
    }

    fn check_consistency(&mut self) {
        // cax-dw: disjoint classes sharing a member.
        let pairs = self.rules.disjoint_classes.clone();
        for (a, b) in &pairs {
            for x in self.candidates(a) {
                if self.satisfies(x, a) && self.satisfies(x, b) {
                    let detail =
                        format!("{} is an instance of disjoint classes", self.g.term_name(x));
                    self.result.inconsistencies.push(Inconsistency {
                        kind: InconsistencyKind::DisjointClassesViolation,
                        detail,
                    });
                }
            }
        }
        // prp-pdw: disjoint properties linking the same pair.
        for &(p, q) in &self.rules.disjoint_properties.clone() {
            for [x, _, y] in self.g.match_pattern(None, Some(p), None) {
                if self.g.contains_ids(x, q, y) {
                    let detail = format!(
                        "disjoint properties {} and {} both relate {} to {}",
                        self.g.term_name(p),
                        self.g.term_name(q),
                        self.g.term_name(x),
                        self.g.term_name(y)
                    );
                    self.result.inconsistencies.push(Inconsistency {
                        kind: InconsistencyKind::DisjointPropertiesViolation,
                        detail,
                    });
                }
            }
        }
        // cls-nothing2
        if let Some(nothing) = self.g.lookup_iri(owl::NOTHING) {
            for x in self.g.instances_of(nothing) {
                let detail = format!("{} is an instance of owl:Nothing", self.g.term_name(x));
                self.result.inconsistencies.push(Inconsistency {
                    kind: InconsistencyKind::NothingHasInstance,
                    detail,
                });
            }
        }
        // prp-irp
        for &p in &self.rules.irreflexive.clone() {
            for [s, _, o] in self.g.match_pattern(None, Some(p), None) {
                if s == o {
                    let detail = format!(
                        "irreflexive property {} relates {} to itself",
                        self.g.term_name(p),
                        self.g.term_name(s)
                    );
                    self.result.inconsistencies.push(Inconsistency {
                        kind: InconsistencyKind::IrreflexiveViolation,
                        detail,
                    });
                }
            }
        }
        // prp-asyp
        for &p in &self.rules.asymmetric.clone() {
            for [s, _, o] in self.g.match_pattern(None, Some(p), None) {
                if self.g.contains_ids(o, p, s) && s != o {
                    let detail = format!(
                        "asymmetric property {} holds in both directions between {} and {}",
                        self.g.term_name(p),
                        self.g.term_name(s),
                        self.g.term_name(o)
                    );
                    self.result.inconsistencies.push(Inconsistency {
                        kind: InconsistencyKind::AsymmetricViolation,
                        detail,
                    });
                }
            }
        }
        // eq-diff1
        for &(a, b) in &self.rules.different_from.clone() {
            if self.g.contains_ids(a, self.rules.same_as, b)
                || self.g.contains_ids(b, self.rules.same_as, a)
            {
                let detail = format!(
                    "{} and {} are both sameAs and differentFrom",
                    self.g.term_name(a),
                    self.g.term_name(b)
                );
                self.result.inconsistencies.push(Inconsistency {
                    kind: InconsistencyKind::SameAndDifferent,
                    detail,
                });
            }
        }
    }
}

/// In-place transitive closure of an adjacency map.
fn transitive_close(map: &mut HashMap<TermId, BTreeSet<TermId>>) {
    // Simple semi-naive closure; schema graphs are small.
    loop {
        let mut additions: BTreeMap<TermId, BTreeSet<TermId>> = BTreeMap::new();
        for (&node, sups) in map.iter() {
            for &mid in sups {
                if let Some(next) = map.get(&mid) {
                    for &far in next {
                        if far != node && !sups.contains(&far) {
                            additions.entry(node).or_default().insert(far);
                        }
                    }
                }
            }
        }
        if additions.is_empty() {
            return;
        }
        for (node, sups) in additions {
            map.entry(node).or_default().extend(sups);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_rdf::turtle::parse_turtle_into;
    use feo_rdf::Graph;

    fn graph(src: &str) -> Graph {
        let mut g = Graph::new();
        let prefixed = format!(
            "@prefix rdf: <{}> .\n@prefix rdfs: <{}> .\n@prefix owl: <{}> .\n@prefix e: <http://e/> .\n{}",
            rdf::NS,
            rdfs::NS,
            owl::NS,
            src
        );
        parse_turtle_into(&prefixed, &mut g, &Default::default()).expect("test turtle parses");
        g
    }

    fn has(g: &Graph, s: &str, p: &str, o: &str) -> bool {
        let e = |n: &str| -> String {
            if n.contains("://") {
                n.to_string()
            } else {
                format!("http://e/{n}")
            }
        };
        match (
            g.lookup_iri(&e(s)),
            g.lookup_iri(&e(p)),
            g.lookup_iri(&e(o)),
        ) {
            (Some(s), Some(p), Some(o)) => g.contains_ids(s, p, o),
            _ => false,
        }
    }

    #[test]
    fn type_inheritance_through_subclass_chain() {
        let mut g = graph(
            "e:A rdfs:subClassOf e:B . e:B rdfs:subClassOf e:C .\n\
             e:x a e:A .",
        );
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(r.is_consistent());
        assert!(has(&g, "x", rdf::TYPE, "B"));
        assert!(has(&g, "x", rdf::TYPE, "C"));
        assert!(has(&g, "A", rdfs::SUB_CLASS_OF, "C"), "schema closure");
    }

    #[test]
    fn materialization_is_idempotent() {
        let mut g = graph(
            "e:A rdfs:subClassOf e:B .\n\
             e:p a owl:TransitiveProperty .\n\
             e:x a e:A . e:x e:p e:y . e:y e:p e:z .",
        );
        let r1 = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(r1.added > 0);
        let r2 = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert_eq!(r2.added, 0, "second run must add nothing");
    }

    #[test]
    fn subproperty_and_inverse() {
        let mut g = graph(
            "e:likes rdfs:subPropertyOf e:interestedIn .\n\
             e:likes owl:inverseOf e:likedBy .\n\
             e:u e:likes e:apple .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "u", "interestedIn", "apple"));
        assert!(has(&g, "apple", "likedBy", "u"));
    }

    #[test]
    fn inverse_feeds_subsequent_rules() {
        // dislikedBy derived via inverse, then characteristic class via
        // a someValuesFrom equivalence — the FEO DislikedFoodCharacteristic
        // pattern from the paper (§III-B).
        let mut g = graph(
            "e:dislikes owl:inverseOf e:dislikedBy .\n\
             e:DislikedFood owl:equivalentClass [\n\
               a owl:Restriction ; owl:onProperty e:dislikedBy ;\n\
               owl:someValuesFrom e:User ] .\n\
             e:u a e:User .\n\
             e:u e:dislikes e:broccoli .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "broccoli", rdf::TYPE, "DislikedFood"));
    }

    #[test]
    fn transitive_property_closure() {
        let mut g = graph(
            "e:hasCharacteristic a owl:TransitiveProperty .\n\
             e:curry e:hasCharacteristic e:cauliflower .\n\
             e:cauliflower e:hasCharacteristic e:autumn .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "curry", "hasCharacteristic", "autumn"));
    }

    #[test]
    fn symmetric_property() {
        let mut g = graph("e:pairsWith a owl:SymmetricProperty . e:wine e:pairsWith e:cheese .");
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "cheese", "pairsWith", "wine"));
    }

    #[test]
    fn domain_and_range() {
        let mut g = graph(
            "e:hasIngredient rdfs:domain e:Recipe ; rdfs:range e:Ingredient .\n\
             e:soup e:hasIngredient e:leek .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "soup", rdf::TYPE, "Recipe"));
        assert!(has(&g, "leek", rdf::TYPE, "Ingredient"));
    }

    #[test]
    fn has_value_both_directions() {
        let mut g = graph(
            "e:AutumnAvailable owl:equivalentClass [\n\
               a owl:Restriction ; owl:onProperty e:availableIn ; owl:hasValue e:Autumn ] .\n\
             e:squash e:availableIn e:Autumn .\n\
             e:pumpkin a e:AutumnAvailable .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        // cls-hv2 direction: value → class membership.
        assert!(has(&g, "squash", rdf::TYPE, "AutumnAvailable"));
        // cls-hv1 direction: class membership → value.
        assert!(has(&g, "pumpkin", "availableIn", "Autumn"));
    }

    #[test]
    fn intersection_membership() {
        let mut g = graph(
            "e:Fact owl:equivalentClass [ owl:intersectionOf (\n\
               [ a owl:Restriction ; owl:onProperty e:supports ; owl:someValuesFrom e:Param ]\n\
               [ a owl:Restriction ; owl:onProperty e:presentIn ; owl:hasValue e:Eco ]\n\
             ) ] .\n\
             e:autumn e:supports e:q1 . e:q1 a e:Param .\n\
             e:autumn e:presentIn e:Eco .\n\
             e:spring e:supports e:q1 .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "autumn", rdf::TYPE, "Fact"));
        assert!(
            !has(&g, "spring", rdf::TYPE, "Fact"),
            "spring lacks presence"
        );
    }

    #[test]
    fn all_values_from_applies_to_successors() {
        let mut g = graph(
            "e:VeganRecipe rdfs:subClassOf [\n\
               a owl:Restriction ; owl:onProperty e:hasIngredient ;\n\
               owl:allValuesFrom e:PlantIngredient ] .\n\
             e:stew a e:VeganRecipe ; e:hasIngredient e:lentil .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "lentil", rdf::TYPE, "PlantIngredient"));
    }

    #[test]
    fn property_chain() {
        let mut g = graph(
            "e:servedWith owl:propertyChainAxiom (e:hasCourse e:includes) .\n\
             e:menu e:hasCourse e:starter . e:starter e:includes e:bread .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "menu", "servedWith", "bread"));
    }

    #[test]
    fn functional_property_yields_same_as() {
        let mut g = graph(
            "e:hasSeason a owl:FunctionalProperty .\n\
             e:sys e:hasSeason e:fall . e:sys e:hasSeason e:autumn .\n\
             e:autumn e:label e:A .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "fall", owl::SAME_AS, "autumn"));
        // eq-rep: triples replicate across the alias.
        assert!(has(&g, "fall", "label", "A"));
    }

    #[test]
    fn union_and_one_of() {
        let mut g = graph(
            "e:Produce owl:equivalentClass [ owl:unionOf (e:Fruit e:Vegetable) ] .\n\
             e:apple a e:Fruit .\n\
             e:Weekend owl:equivalentClass [ owl:oneOf (e:Saturday e:Sunday) ] .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "apple", rdf::TYPE, "Produce"));
        // cls-oo: enumeration members are instances of the enumerated class.
        assert!(has(&g, "Saturday", rdf::TYPE, "Weekend"));
        assert!(has(&g, "Sunday", rdf::TYPE, "Weekend"));
    }

    #[test]
    fn detects_disjointness_violation() {
        let mut g = graph(
            "e:Meat owl:disjointWith e:Vegetable .\n\
             e:thing a e:Meat , e:Vegetable .",
        );
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(!r.is_consistent());
        assert!(matches!(
            r.inconsistencies[0].kind,
            InconsistencyKind::DisjointClassesViolation
        ));
    }

    #[test]
    fn detects_irreflexive_and_asymmetric_violations() {
        let mut g = graph(
            "e:p a owl:IrreflexiveProperty . e:x e:p e:x .\n\
             e:q a owl:AsymmetricProperty . e:a e:q e:b . e:b e:q e:a .",
        );
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let kinds: Vec<_> = r.inconsistencies.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&InconsistencyKind::IrreflexiveViolation));
        assert!(kinds.contains(&InconsistencyKind::AsymmetricViolation));
    }

    #[test]
    fn detects_same_and_different() {
        let mut g = graph("e:a owl:sameAs e:b . e:a owl:differentFrom e:b .");
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(r
            .inconsistencies
            .iter()
            .any(|i| i.kind == InconsistencyKind::SameAndDifferent));
    }

    #[test]
    fn equivalence_is_bidirectional_subsumption() {
        let mut g = graph(
            "e:Curry owl:equivalentClass e:CurryDish .\n\
             e:x a e:Curry . e:y a e:CurryDish .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "x", rdf::TYPE, "CurryDish"));
        assert!(has(&g, "y", rdf::TYPE, "Curry"));
    }

    #[test]
    fn subproperty_of_transitive_super() {
        // A subproperty feeding a transitive superproperty — the FEO
        // pattern: specific characteristic properties under the transitive
        // feo:hasCharacteristic.
        let mut g = graph(
            "e:hasIngredient rdfs:subPropertyOf e:hasCharacteristic .\n\
             e:availableIn rdfs:subPropertyOf e:hasCharacteristic .\n\
             e:hasCharacteristic a owl:TransitiveProperty .\n\
             e:curry e:hasIngredient e:cauliflower .\n\
             e:cauliflower e:availableIn e:autumn .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "curry", "hasCharacteristic", "autumn"));
    }

    #[test]
    fn schema_closure_can_be_disabled() {
        let mut g = graph("e:A rdfs:subClassOf e:B . e:B rdfs:subClassOf e:C . e:x a e:A .");
        let opts = ReasonerOptions {
            materialize_schema_closure: false,
            ..Default::default()
        };
        Reasoner::with_options(opts)
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(!has(&g, "A", rdfs::SUB_CLASS_OF, "C"));
        assert!(has(&g, "x", rdf::TYPE, "C"), "instance closure still runs");
    }

    #[test]
    fn cyclic_subclass_hierarchy_terminates() {
        let mut g = graph(
            "e:A rdfs:subClassOf e:B . e:B rdfs:subClassOf e:A .\n\
             e:x a e:A .",
        );
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(has(&g, "x", rdf::TYPE, "B"));
        assert!(r.rounds < 64);
        assert!(r.converged);
    }

    /// Regression for the silent-truncation bug: hitting the round cap
    /// used to return as if the fixpoint had converged. The compat path
    /// must now report `converged: false`.
    /// An ontology whose closure needs one complex-pass round per level:
    /// `C_i ≡ ∃p.C_{i+1}` over a p-chain of individuals, so membership
    /// propagates backward one class per round.
    fn layered_some_values_src(levels: usize) -> String {
        let mut src = String::new();
        for i in 0..levels {
            src.push_str(&format!(
                "e:C{i} owl:equivalentClass [ a owl:Restriction ; \
                 owl:onProperty e:p ; owl:someValuesFrom e:C{} ] .\n",
                i + 1
            ));
            src.push_str(&format!("e:x{i} e:p e:x{} .\n", i + 1));
        }
        src.push_str(&format!("e:x{levels} a e:C{levels} .\n"));
        src
    }

    #[test]
    fn round_cap_reports_nonconvergence() {
        let src = layered_some_values_src(6);
        let mut g = graph(&src);
        let opts = ReasonerOptions {
            max_rounds: 1,
            ..Default::default()
        };
        let r = Reasoner::with_options(opts)
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(!r.converged, "cap hit must not look like convergence");
        assert!(r.warnings.iter().any(|w| w.contains("fixpoint")));

        // And without the cap the same input converges cleanly.
        let mut g2 = graph(&src);
        let r2 = Reasoner::new()
            .materialize(&mut g2, &Default::default())
            .expect("materialize");
        assert!(r2.converged);
        assert!(r2.warnings.is_empty());
    }

    #[test]
    fn guarded_round_cap_is_typed_exhausted() {
        use feo_rdf::governor::{Budget, Resource};
        let src = layered_some_values_src(6);
        let mut g = graph(&src);
        let opts = ReasonerOptions {
            max_rounds: 1,
            ..Default::default()
        };
        let guard = Budget::new().start();
        let err = Reasoner::with_options(opts)
            .materialize(&mut g, &MaterializeOptions::guarded(&guard))
            .unwrap_err();
        let ReasonerError::Exhausted { exhausted, partial } = err;
        assert_eq!(exhausted.resource, Resource::Rounds);
        assert_eq!(exhausted.limit, 1);
        assert!(partial.added > 0, "partial derivations are kept");
    }

    #[test]
    fn guarded_inference_budget_trips_and_keeps_partial() {
        use feo_rdf::governor::{Budget, Resource};
        let mut src = String::from("e:p a owl:TransitiveProperty .\n");
        for i in 0..40 {
            src.push_str(&format!("e:n{i} e:p e:n{} .\n", i + 1));
        }
        let mut g = graph(&src);
        let guard = Budget::new().with_max_inferred(10).start();
        let err = Reasoner::new()
            .materialize(&mut g, &MaterializeOptions::guarded(&guard))
            .unwrap_err();
        assert_eq!(err.exhausted().resource, Resource::InferredTriples);
        let ReasonerError::Exhausted { partial, .. } = err;
        // The partial closure is sound: whatever was derived is a real
        // consequence, and it stopped right after the budget.
        assert!(partial.added >= 10);
        assert!(partial.added < 40 * 40);
    }

    #[test]
    fn guarded_run_with_headroom_matches_unguarded() {
        use feo_rdf::governor::Budget;
        let src = "e:A rdfs:subClassOf e:B . e:B rdfs:subClassOf e:C .\n\
                   e:p a owl:TransitiveProperty .\n\
                   e:x a e:A . e:x e:p e:y . e:y e:p e:z .";
        let mut g1 = graph(src);
        let r1 = Reasoner::new()
            .materialize(&mut g1, &Default::default())
            .expect("materialize");
        let mut g2 = graph(src);
        let guard = Budget::new().with_max_inferred(1_000_000).start();
        let r2 = Reasoner::new()
            .materialize(&mut g2, &MaterializeOptions::guarded(&guard))
            .unwrap();
        assert_eq!(r1.added, r2.added);
        assert_eq!(g1.len(), g2.len());
        assert!(r2.converged);
    }

    #[test]
    fn guarded_cancellation_stops_materialization() {
        use feo_rdf::governor::{Budget, CancelFlag, Resource};
        let flag = CancelFlag::new();
        flag.cancel();
        let guard = Budget::new().with_cancel(flag).start();
        let mut g = graph("e:A rdfs:subClassOf e:B . e:x a e:A .");
        let err = Reasoner::new()
            .materialize(&mut g, &MaterializeOptions::guarded(&guard))
            .unwrap_err();
        assert_eq!(err.exhausted().resource, Resource::Cancelled);
    }
}

#[cfg(test)]
mod same_as_tests {
    use super::*;
    use feo_rdf::turtle::parse_turtle_into;
    use feo_rdf::Graph;

    fn graph(src: &str) -> Graph {
        let mut g = Graph::new();
        let prefixed = format!(
            "@prefix owl: <{}> .\n@prefix e: <http://e/> .\n{}",
            owl::NS,
            src
        );
        parse_turtle_into(&prefixed, &mut g, &Default::default()).expect("test turtle parses");
        g
    }

    #[test]
    fn same_as_is_transitively_closed() {
        let mut g = graph(
            "e:a owl:sameAs e:b . e:b owl:sameAs e:c .\n\
             e:a e:p e:x .",
        );
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let a = g.lookup_iri("http://e/a").unwrap();
        let c = g.lookup_iri("http://e/c").unwrap();
        let same = g.lookup_iri(owl::SAME_AS).unwrap();
        assert!(g.contains_ids(a, same, c), "eq-trans: a sameAs c");
        assert!(g.contains_ids(c, same, a), "eq-sym over the closure");
        // eq-rep across the whole class.
        let p = g.lookup_iri("http://e/p").unwrap();
        let x = g.lookup_iri("http://e/x").unwrap();
        assert!(g.contains_ids(c, p, x), "triples replicate to c");
    }

    #[test]
    fn long_same_as_chain_terminates_and_closes() {
        let mut src = String::new();
        for i in 0..8 {
            src.push_str(&format!("e:n{i} owl:sameAs e:n{} .\n", i + 1));
        }
        let mut g = graph(&src);
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(r.rounds < 64);
        let first = g.lookup_iri("http://e/n0").unwrap();
        let last = g.lookup_iri("http://e/n8").unwrap();
        let same = g.lookup_iri(owl::SAME_AS).unwrap();
        assert!(g.contains_ids(first, same, last));
    }
}

#[cfg(test)]
mod disjoint_property_tests {
    use super::*;
    use feo_rdf::turtle::parse_turtle_into;
    use feo_rdf::Graph;

    #[test]
    fn disjoint_properties_violation_detected() {
        let mut g = Graph::new();
        parse_turtle_into(
            &format!(
                "@prefix owl: <{}> .\n@prefix e: <http://e/> .\n\
                 e:likes owl:propertyDisjointWith e:dislikes .\n\
                 e:u e:likes e:kale . e:u e:dislikes e:kale .",
                owl::NS
            ),
            &mut g,
            &Default::default(),
        )
        .unwrap();
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(r
            .inconsistencies
            .iter()
            .any(|i| i.kind == InconsistencyKind::DisjointPropertiesViolation));
    }

    #[test]
    fn disjoint_properties_ok_when_pairs_differ() {
        let mut g = Graph::new();
        parse_turtle_into(
            &format!(
                "@prefix owl: <{}> .\n@prefix e: <http://e/> .\n\
                 e:likes owl:propertyDisjointWith e:dislikes .\n\
                 e:u e:likes e:kale . e:u e:dislikes e:okra .",
                owl::NS
            ),
            &mut g,
            &Default::default(),
        )
        .unwrap();
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(r.is_consistent(), "{:?}", r.inconsistencies);
    }
}
