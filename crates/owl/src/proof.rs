//! Proof rendering over tracked derivations — the analogue of Pellet's
//! axiom explanations. With [`crate::ReasonerOptions::track_derivations`]
//! enabled, every inferred triple carries the rule that produced it and
//! its premises; this module walks those records back to asserted triples
//! and renders an indented proof tree.

use std::collections::HashSet;

use feo_rdf::{GraphView, TermId};

use crate::reasoner::InferenceResult;

/// One step of a proof: the triple, the rule that derived it (or
/// "asserted"), and its sub-proofs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofNode {
    pub triple: [TermId; 3],
    pub rule: &'static str,
    pub premises: Vec<ProofNode>,
}

impl ProofNode {
    /// Renders the proof as an indented tree using local names. Takes
    /// any [`GraphView`], so proofs render over plain graphs, overlays,
    /// and stacked ledger views alike.
    pub fn render<G: GraphView + ?Sized>(&self, g: &G) -> String {
        let mut out = String::new();
        self.render_into(g, &mut out, 0);
        out
    }

    fn render_into<G: GraphView + ?Sized>(&self, g: &G, out: &mut String, depth: usize) {
        let [s, p, o] = self.triple;
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} {} {}   [{}]\n",
            g.term_name(s),
            g.term_name(p),
            g.term_name(o),
            self.rule
        ));
        for prem in &self.premises {
            prem.render_into(g, out, depth + 1);
        }
    }

    /// Number of nodes in the proof tree.
    pub fn size(&self) -> usize {
        1 + self.premises.iter().map(ProofNode::size).sum::<usize>()
    }
}

/// Builds the proof tree for `triple`, following derivation records until
/// asserted triples (no record) are reached. Cycles (possible through
/// symmetric rules) are cut by marking visited triples as asserted.
pub fn proof(result: &InferenceResult, triple: [TermId; 3]) -> ProofNode {
    let mut visited = HashSet::new();
    build(result, triple, &mut visited, 0)
}

fn build(
    result: &InferenceResult,
    triple: [TermId; 3],
    visited: &mut HashSet<[TermId; 3]>,
    depth: usize,
) -> ProofNode {
    if depth > 32 || !visited.insert(triple) {
        return ProofNode {
            triple,
            rule: "…",
            premises: Vec::new(),
        };
    }
    match result.derivations.get(&triple) {
        None => ProofNode {
            triple,
            rule: "asserted",
            premises: Vec::new(),
        },
        Some(d) => ProofNode {
            triple,
            rule: d.rule,
            premises: d
                .premises
                .iter()
                .map(|&p| build(result, p, visited, depth + 1))
                .collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reasoner::{Reasoner, ReasonerOptions};
    use feo_rdf::turtle::parse_turtle_into;
    use feo_rdf::vocab::{rdf, rdfs};
    use feo_rdf::Graph;

    fn tracked() -> Reasoner {
        Reasoner::with_options(ReasonerOptions {
            track_derivations: true,
            ..Default::default()
        })
    }

    #[test]
    fn proof_chain_for_type_inheritance() {
        let mut g = Graph::new();
        parse_turtle_into(
            &format!(
                "@prefix rdfs: <{}> .\n@prefix e: <http://e/> .\n\
                 e:A rdfs:subClassOf e:B . e:B rdfs:subClassOf e:C .\n\
                 e:x a e:A .",
                rdfs::NS
            ),
            &mut g,
            &Default::default(),
        )
        .unwrap();
        let result = tracked()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let x = g.lookup_iri("http://e/x").unwrap();
        let ty = g.lookup_iri(rdf::TYPE).unwrap();
        let c = g.lookup_iri("http://e/C").unwrap();
        let node = proof(&result, [x, ty, c]);
        assert_eq!(node.rule, "cax-sco");
        // The premise chain bottoms out at the asserted typing.
        let rendered = node.render(&g);
        assert!(rendered.contains("[cax-sco]"));
        assert!(rendered.contains("[asserted]"));
        assert!(node.size() >= 2);
    }

    #[test]
    fn transitive_proof_has_two_premises() {
        let mut g = Graph::new();
        parse_turtle_into(
            &format!(
                "@prefix owl: <{}> .\n@prefix e: <http://e/> .\n\
                 e:p a owl:TransitiveProperty .\n\
                 e:a e:p e:b . e:b e:p e:c .",
                feo_rdf::vocab::owl::NS
            ),
            &mut g,
            &Default::default(),
        )
        .unwrap();
        let result = tracked()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let a = g.lookup_iri("http://e/a").unwrap();
        let p = g.lookup_iri("http://e/p").unwrap();
        let c = g.lookup_iri("http://e/c").unwrap();
        let node = proof(&result, [a, p, c]);
        assert_eq!(node.rule, "prp-trp");
        assert_eq!(node.premises.len(), 2);
        assert!(node.premises.iter().all(|n| n.rule == "asserted"));
    }

    #[test]
    fn asserted_triples_have_trivial_proofs() {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        let result = tracked()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let a = g.lookup_iri("http://e/a").unwrap();
        let p = g.lookup_iri("http://e/p").unwrap();
        let b = g.lookup_iri("http://e/b").unwrap();
        let node = proof(&result, [a, p, b]);
        assert_eq!(node.rule, "asserted");
        assert!(node.premises.is_empty());
    }

    #[test]
    fn tracking_disabled_by_default() {
        let mut g = Graph::new();
        parse_turtle_into(
            &format!(
                "@prefix rdfs: <{}> .\n@prefix e: <http://e/> .\n\
                 e:A rdfs:subClassOf e:B . e:x a e:A .",
                rdfs::NS
            ),
            &mut g,
            &Default::default(),
        )
        .unwrap();
        let result = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(result.derivations.is_empty());
    }

    #[test]
    fn inverse_proof_cites_the_forward_edge() {
        let mut g = Graph::new();
        parse_turtle_into(
            &format!(
                "@prefix owl: <{}> .\n@prefix e: <http://e/> .\n\
                 e:likes owl:inverseOf e:likedBy .\n\
                 e:u e:likes e:curry .",
                feo_rdf::vocab::owl::NS
            ),
            &mut g,
            &Default::default(),
        )
        .unwrap();
        let result = tracked()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let curry = g.lookup_iri("http://e/curry").unwrap();
        let liked_by = g.lookup_iri("http://e/likedBy").unwrap();
        let u = g.lookup_iri("http://e/u").unwrap();
        let node = proof(&result, [curry, liked_by, u]);
        assert_eq!(node.rule, "prp-inv");
        assert_eq!(node.premises.len(), 1);
        let rendered = node.render(&g);
        assert!(rendered.contains("likes"), "{rendered}");
    }
}

#[cfg(test)]
mod deep_proof_tests {
    use super::*;
    use crate::reasoner::{Reasoner, ReasonerOptions};
    use feo_rdf::turtle::parse_turtle_into;
    use feo_rdf::vocab::{owl as owlv, rdf};
    use feo_rdf::Graph;

    /// A proof through a property chain must include the walked steps and
    /// bottom out at assertions.
    #[test]
    fn chain_proofs_carry_step_premises() {
        let mut g = Graph::new();
        parse_turtle_into(
            &format!(
                "@prefix owl: <{}> .\n@prefix e: <http://e/> .\n\
                 e:forbids owl:propertyChainAxiom (e:forbids e:partOf) .\n\
                 e:preg e:forbids e:rawfish .\n\
                 e:rawfish e:partOf e:sushi .",
                owlv::NS
            ),
            &mut g,
            &Default::default(),
        )
        .unwrap();
        let result = Reasoner::with_options(ReasonerOptions {
            track_derivations: true,
            ..Default::default()
        })
        .materialize(&mut g, &Default::default())
        .expect("materialize");
        let preg = g.lookup_iri("http://e/preg").unwrap();
        let forbids = g.lookup_iri("http://e/forbids").unwrap();
        let sushi = g.lookup_iri("http://e/sushi").unwrap();
        let node = proof(&result, [preg, forbids, sushi]);
        assert_eq!(node.rule, "prp-spo2");
        assert_eq!(node.premises.len(), 2, "both chain steps recorded");
        assert!(node.premises.iter().all(|p| p.rule == "asserted"));
    }

    /// Complex-class membership proofs carry the witness triples.
    #[test]
    fn restriction_membership_proofs_have_witnesses() {
        let mut g = Graph::new();
        parse_turtle_into(
            &format!(
                "@prefix owl: <{}> .\n@prefix e: <http://e/> .\n\
                 e:Fact owl:equivalentClass [ owl:intersectionOf (\n\
                   [ a owl:Restriction ; owl:onProperty e:supports ; owl:someValuesFrom e:Param ]\n\
                   [ a owl:Restriction ; owl:onProperty e:presentIn ; owl:hasValue e:Eco ]\n\
                 ) ] .\n\
                 e:autumn e:supports e:q . e:q a e:Param .\n\
                 e:autumn e:presentIn e:Eco .",
                owlv::NS
            ),
            &mut g,
            &Default::default(),
        )
        .unwrap();
        let result = Reasoner::with_options(ReasonerOptions {
            track_derivations: true,
            ..Default::default()
        })
        .materialize(&mut g, &Default::default())
        .expect("materialize");
        let autumn = g.lookup_iri("http://e/autumn").unwrap();
        let ty = g.lookup_iri(rdf::TYPE).unwrap();
        let fact = g.lookup_iri("http://e/Fact").unwrap();
        let node = proof(&result, [autumn, ty, fact]);
        assert_eq!(node.rule, "cls");
        assert!(
            node.premises.len() >= 3,
            "witnesses: supports edge + param typing + presence, got {:?}",
            node.premises
        );
        let rendered = node.render(&g);
        assert!(rendered.contains("supports"), "{rendered}");
        assert!(rendered.contains("presentIn"), "{rendered}");
    }
}
