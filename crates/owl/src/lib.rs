//! # feo-owl
//!
//! OWL 2 axiom extraction and a forward-chaining materializing reasoner —
//! the workspace's substitute for the Pellet reasoner used by the paper
//! ("we use a reasoner known to handle individuals more efficiently, and
//! we thus use the Pellet reasoner", §IV).
//!
//! The paper's pipeline runs the reasoner once, exports the ontology with
//! its inferred axioms, then evaluates SPARQL competency questions over
//! the export. [`Reasoner::materialize`] performs that export step in
//! place on a [`feo_rdf::Graph`].
//!
//! The implemented fragment is OWL 2 RL over named individuals — complete
//! for everything the FEO ontology exercises: class/property hierarchies
//! with multiple inheritance, inverse and transitive properties,
//! domain/range, and `owl:equivalentClass` definitions built from
//! `someValuesFrom` / `hasValue` / `intersectionOf` restrictions (the
//! `eo:Fact` / `eo:Foil` machinery of the paper's Figure 3).
//!
//! ```
//! use feo_rdf::Graph;
//! use feo_rdf::turtle::parse_turtle_into;
//! use feo_owl::Reasoner;
//!
//! let mut g = Graph::new();
//! parse_turtle_into(r#"
//!     @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
//!     @prefix e: <http://e/> .
//!     e:SeasonCharacteristic rdfs:subClassOf e:SystemCharacteristic .
//!     e:SystemCharacteristic rdfs:subClassOf e:Characteristic .
//!     e:Autumn a e:SeasonCharacteristic .
//! "#, &mut g, &Default::default()).unwrap();
//! let result = Reasoner::new().materialize(&mut g, &Default::default())?;
//! assert!(result.is_consistent());
//! // Autumn is now also typed as Characteristic.
//! let autumn = g.lookup_iri("http://e/Autumn").unwrap();
//! let ty = g.lookup_iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type").unwrap();
//! let characteristic = g.lookup_iri("http://e/Characteristic").unwrap();
//! assert!(g.contains_ids(autumn, ty, characteristic));
//! # Ok::<(), feo_owl::ReasonerError>(())
//! ```

pub mod axiom;
pub mod extract;
pub mod proof;
pub mod reasoner;

pub use axiom::{Axiom, ClassExpr, Ontology};
pub use extract::extract_axioms;
pub use proof::{proof, ProofNode};
pub use reasoner::{
    CompiledRules, Derivation, Inconsistency, InconsistencyKind, InferenceResult,
    MaterializeOptions, Reasoner, ReasonerError, ReasonerOptions,
};
