//! Property tests for the reasoner: idempotence, monotonicity, closure
//! correctness against a reference transitive-closure computation, and
//! soundness of inverse/symmetric rules on random graphs.

use std::collections::{BTreeSet, HashMap};

use feo_owl::Reasoner;
use feo_rdf::vocab::{owl, rdf, rdfs};
use feo_rdf::Graph;
use proptest::prelude::*;

const N_CLASSES: u8 = 8;
const N_NODES: u8 = 10;

fn class_iri(i: u8) -> String {
    format!("http://t/C{i}")
}

fn node_iri(i: u8) -> String {
    format!("http://t/n{i}")
}

/// Random schema: subclass edges among N_CLASSES classes.
fn arb_subclass_edges() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0..N_CLASSES, 0..N_CLASSES), 0..16)
}

/// Random instance typings.
fn arb_typings() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0..N_NODES, 0..N_CLASSES), 0..20)
}

/// Random property edges among nodes.
fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0..N_NODES, 0..N_NODES), 0..25)
}

fn build(sub: &[(u8, u8)], typings: &[(u8, u8)], edges: &[(u8, u8)], prop_axioms: &str) -> Graph {
    let mut g = Graph::new();
    for (a, b) in sub {
        g.insert_iris(&class_iri(*a), rdfs::SUB_CLASS_OF, &class_iri(*b));
    }
    for (n, c) in typings {
        g.insert_iris(&node_iri(*n), rdf::TYPE, &class_iri(*c));
    }
    for (x, y) in edges {
        g.insert_iris(&node_iri(*x), "http://t/p", &node_iri(*y));
    }
    match prop_axioms {
        "transitive" => {
            g.insert_iris("http://t/p", rdf::TYPE, owl::TRANSITIVE_PROPERTY);
        }
        "symmetric" => {
            g.insert_iris("http://t/p", rdf::TYPE, owl::SYMMETRIC_PROPERTY);
        }
        "inverse" => {
            g.insert_iris("http://t/p", owl::INVERSE_OF, "http://t/q");
        }
        _ => {}
    }
    g
}

/// Reference: reachability closure over the subclass DAG (may be cyclic).
fn reference_superclasses(sub: &[(u8, u8)]) -> HashMap<u8, BTreeSet<u8>> {
    let mut out: HashMap<u8, BTreeSet<u8>> = HashMap::new();
    for c in 0..N_CLASSES {
        let mut seen = BTreeSet::new();
        let mut stack = vec![c];
        while let Some(x) = stack.pop() {
            for (a, b) in sub {
                if *a == x && *b != c && seen.insert(*b) {
                    stack.push(*b);
                }
            }
        }
        out.insert(c, seen);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn idempotent(sub in arb_subclass_edges(), ty in arb_typings(), e in arb_edges()) {
        let mut g = build(&sub, &ty, &e, "transitive");
        Reasoner::new().materialize(&mut g, &Default::default()).expect("materialize");
        let second = Reasoner::new().materialize(&mut g, &Default::default()).expect("materialize");
        prop_assert_eq!(second.added, 0);
    }

    #[test]
    fn type_closure_matches_reference(sub in arb_subclass_edges(), ty in arb_typings()) {
        let mut g = build(&sub, &ty, &[], "");
        Reasoner::new().materialize(&mut g, &Default::default()).expect("materialize");
        let reference = reference_superclasses(&sub);
        let rdf_type = g.lookup_iri(rdf::TYPE).unwrap();
        for (n, c) in &ty {
            for sup in &reference[c] {
                let node = g.lookup_iri(&node_iri(*n)).unwrap();
                let class = g.lookup_iri(&class_iri(*sup)).unwrap();
                prop_assert!(
                    g.contains_ids(node, rdf_type, class),
                    "n{n} should be typed C{sup} (asserted C{c})"
                );
            }
        }
    }

    #[test]
    fn transitive_closure_sound_and_complete(e in arb_edges()) {
        let mut g = build(&[], &[], &e, "transitive");
        Reasoner::new().materialize(&mut g, &Default::default()).expect("materialize");
        // Reference reachability.
        let mut reach: BTreeSet<(u8, u8)> = e.iter().copied().collect();
        loop {
            let mut grew = false;
            let snapshot: Vec<(u8, u8)> = reach.iter().copied().collect();
            for (a, b) in &snapshot {
                for (c, d) in &snapshot {
                    if b == c && reach.insert((*a, *d)) {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        let p = g.lookup_iri("http://t/p").unwrap();
        // Completeness.
        for (a, b) in &reach {
            let x = g.lookup_iri(&node_iri(*a)).unwrap();
            let y = g.lookup_iri(&node_iri(*b)).unwrap();
            prop_assert!(g.contains_ids(x, p, y), "missing {a}->{b}");
        }
        // Soundness: every derived p-edge is in the reference closure.
        for [s, _, o] in g.match_pattern(None, Some(p), None) {
            let sn: u8 = g.term_name(s).trim_start_matches('n').parse().unwrap();
            let on: u8 = g.term_name(o).trim_start_matches('n').parse().unwrap();
            prop_assert!(reach.contains(&(sn, on)), "unsound edge {sn}->{on}");
        }
    }

    #[test]
    fn symmetric_rule_sound(e in arb_edges()) {
        let mut g = build(&[], &[], &e, "symmetric");
        Reasoner::new().materialize(&mut g, &Default::default()).expect("materialize");
        let p = g.lookup_iri("http://t/p").unwrap();
        let mut expected: BTreeSet<(feo_rdf::TermId, feo_rdf::TermId)> = BTreeSet::new();
        for [s, _, o] in g.match_pattern(None, Some(p), None) {
            expected.insert((s, o));
        }
        for &(s, o) in &expected {
            prop_assert!(expected.contains(&(o, s)), "missing mirror edge");
        }
    }

    #[test]
    fn inverse_rule_bijective(e in arb_edges()) {
        let mut g = build(&[], &[], &e, "inverse");
        Reasoner::new().materialize(&mut g, &Default::default()).expect("materialize");
        let p = g.lookup_iri("http://t/p").unwrap();
        let q = g.lookup_iri("http://t/q");
        let p_edges: BTreeSet<_> = g
            .match_pattern(None, Some(p), None)
            .into_iter()
            .map(|t| (t[0], t[2]))
            .collect();
        if let Some(q) = q {
            let q_edges: BTreeSet<_> = g
                .match_pattern(None, Some(q), None)
                .into_iter()
                .map(|t| (t[2], t[0]))
                .collect();
            prop_assert_eq!(p_edges, q_edges, "q must be exactly p-inverse");
        } else {
            prop_assert!(e.is_empty());
        }
    }

    /// Monotonicity on random graphs: derived triples survive additions.
    #[test]
    fn monotone(sub in arb_subclass_edges(), ty in arb_typings(), extra in (0..N_NODES, 0..N_CLASSES)) {
        let mut small = build(&sub, &ty, &[], "");
        Reasoner::new().materialize(&mut small, &Default::default()).expect("materialize");

        let mut ty_big = ty.clone();
        ty_big.push(extra);
        let mut big = build(&sub, &ty_big, &[], "");
        Reasoner::new().materialize(&mut big, &Default::default()).expect("materialize");

        for t in small.iter_triples() {
            prop_assert!(big.contains(&t));
        }
    }
}
