//! # feo-bench
//!
//! Benchmark harness: the `reproduce` binary regenerates every table and
//! figure of the paper (Table I, Listings 1–3, Figures 1–4), and the
//! Criterion benches characterize the substrates (reasoner
//! materialization scaling, SPARQL competency-query latency,
//! per-explanation-type latency, parser/recommender throughput).
//!
//! Shared fixture helpers live here so benches and the binary agree on
//! the scenarios.

use feo_core::{ExplanationEngine, Population};
use feo_foodkg::{curated, synthetic, FoodKg, Season, SyntheticConfig, SystemContext, UserProfile};
use feo_recommender::{HealthCoach, Recommender};

/// The standard rich-user fixture used across benches.
pub fn rich_user() -> UserProfile {
    UserProfile::new("user")
        .likes(&["BroccoliCheddarSoup", "LentilSoup"])
        .allergies(&["Broccoli"])
        .diet("Vegetarian")
        .goals(&["HighFiberGoal"])
}

/// Autumn/Florida context (the paper's setting).
pub fn autumn_ctx() -> SystemContext {
    SystemContext::new(Season::Autumn).region("Florida")
}

/// A fully-equipped engine over the curated KG (population +
/// recommendations attached), for the explanation-type benches.
pub fn full_engine() -> ExplanationEngine {
    let kg = curated();
    let user = rich_user();
    let ctx = autumn_ctx();
    let coach_kg = curated();
    let coach = HealthCoach::new(&coach_kg);
    let recs = coach.recommend(&user, &ctx, 10);
    let population = Population::generate(&kg, 150, 42);
    ExplanationEngine::new(kg, user, ctx)
        .expect("consistent")
        .with_population(population)
        .with_recommendations(recs)
}

/// Synthetic KG at a given recipe scale, with a user wired to entities
/// that exist in it.
pub fn synthetic_fixture(recipes: usize) -> (FoodKg, UserProfile, SystemContext) {
    let kg = synthetic(&SyntheticConfig {
        recipes,
        ingredients: recipes / 2 + 25,
        ..Default::default()
    });
    let user = UserProfile::new("u")
        .likes(&[&kg.recipes[0].id])
        .allergies(&[&kg.ingredients[0].id]);
    (kg, user, SystemContext::new(Season::Autumn))
}
