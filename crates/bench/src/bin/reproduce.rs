//! Regenerates every table and figure of the paper from the live system.
//!
//! ```text
//! cargo run -p feo-bench --bin reproduce            # everything
//! cargo run -p feo-bench --bin reproduce -- cq1     # one artifact
//! ```
//!
//! Artifacts: `table1`, `cq1`, `cq2`, `cq3`, `fig1`, `fig2`, `fig3`,
//! `fig4`, `all` (default).

use feo_core::{competency, figure3_matrix, scenario_a, ExplanationEngine, Population, Question};
use feo_foodkg::{curated, Season, SystemContext, UserProfile};
use feo_ontology::report::{characteristic_tree, property_lattice};
use feo_rdf::GraphView;
use feo_recommender::{HealthCoach, Recommender};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "table1" => table1(),
        "cq1" => cq(0),
        "cq2" => cq(1),
        "cq3" => cq(2),
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "all" => {
            table1();
            cq(0);
            cq(1);
            cq(2);
            fig1();
            fig2();
            fig3();
            fig4();
        }
        other => {
            eprintln!("unknown artifact '{other}'");
            eprintln!("expected: table1 | cq1 | cq2 | cq3 | fig1 | fig2 | fig3 | fig4 | all");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Table I — explanation types × example questions, answered live.
fn table1() {
    header("Table I: explanation types and example food questions (answered by the engine)");
    let kg = curated();
    let user = UserProfile::new("user")
        .likes(&["BroccoliCheddarSoup", "LentilSoup"])
        .allergies(&["Broccoli"])
        .diet("Vegetarian")
        .goals(&["HighFiberGoal"]);
    let ctx = SystemContext::new(Season::Autumn).region("Florida");
    let coach = HealthCoach::new(&kg);
    let recs = coach.recommend(&user, &ctx, 10);
    let population = Population::generate(&kg, 150, 42);
    let mut engine = ExplanationEngine::new(curated(), user, ctx)
        .expect("consistent")
        .with_population(population)
        .with_recommendations(recs);

    let rows: Vec<Question> = vec![
        Question::WhatOtherUsers {
            food: "LentilSoup".into(),
        },
        Question::WhyEat {
            food: "CauliflowerPotatoCurry".into(),
        },
        Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        },
        Question::WhatIf {
            hypothesis: feo_core::Hypothesis::Pregnant,
        },
        Question::WhyGenerally {
            food: "CauliflowerPotatoCurry".into(),
        },
        Question::WhatLiterature {
            food: "SpinachFrittata".into(),
        },
        Question::WhatIfEatenDaily {
            food: "MargheritaPizza".into(),
        },
        Question::WhatEvidenceForDiet {
            diet: "Vegetarian".into(),
        },
        Question::WhatSteps {
            food: "ButternutSquashSoup".into(),
        },
    ];
    for q in rows {
        let e = engine.explain(&q).expect("explained");
        println!("{:<32} | {}", e.explanation_type.label(), q.text());
        println!("{:<32} |   -> {}", "", truncate(&e.answer, 110));
    }
}

/// CQ1–CQ3 — the paper's Listings 1–3 with expected-vs-measured check.
fn cq(index: usize) {
    let outcomes = competency::all().expect("competency questions run");
    let o = &outcomes[index];
    header(&format!("Listing {}: {}", index + 1, o.scenario.name));
    println!("Setup:    {}", o.scenario.setup);
    println!("Question: {}", o.scenario.question.text());
    println!("\nQuery result:\n{}", o.bindings);
    println!("Engine answer: {}", o.answer);
    println!("Paper answer:  {}", o.scenario.paper_answer);
    println!(
        "\nExpected rows found: {} | extra rows beyond the paper's table: {}",
        if o.expected_found { "YES" } else { "NO" },
        o.extra_rows
    );
}

/// Figure 1 — the feo:Characteristic subclass tree, read from the TBox.
fn fig1() {
    header("Figure 1: subclasses of feo:Characteristic");
    let g = feo_ontology::schema::tbox_graph();
    let tree = characteristic_tree(&g).expect("root class exists");
    print!("{}", tree.render());
}

/// Figure 2 — the property lattice.
fn fig2() {
    header("Figure 2: property relationships (super-properties, inverses, chains)");
    let g = feo_ontology::schema::tbox_graph();
    for p in property_lattice(&g) {
        let mut notes = Vec::new();
        if !p.super_properties.is_empty() {
            notes.push(format!("subPropertyOf {}", p.super_properties.join(", ")));
        }
        if !p.inverse_of.is_empty() {
            notes.push(format!("inverseOf {}", p.inverse_of.join(", ")));
        }
        if p.transitive {
            notes.push("transitive".to_string());
        }
        for c in &p.chains {
            notes.push(format!("chain: {}", c.join(" o ")));
        }
        println!("{:<34} {}", p.local, notes.join(" | "));
    }
}

/// Figure 3 — the fact/foil matrix, classified by the reasoner.
fn fig3() {
    header("Figure 3: facts and foils (classified live by the reasoner)");
    print!("{}", feo_core::factfoil::render_figure3(&figure3_matrix()));
}

/// Figure 4 — the CQ1 ontology neighborhood after reasoning.
fn fig4() {
    header("Figure 4: ontology subsection for CQ1 after reasoning");
    let s = scenario_a();
    let mut engine = s.engine().expect("consistent");
    let e = engine.explain(&s.question).expect("explained");
    // The question individual lives in the layer the explain committed,
    // so render from the ledger's head view, not the sealed base.
    let g = engine.base().ledger().head_view();

    let focus = [
        "CauliflowerPotatoCurry",
        "Cauliflower",
        "Autumn",
        "WhyEatCauliflowerPotatoCurry",
    ];
    let interesting = [
        "type",
        "hasParameter",
        "hasCharacteristic",
        "hasIngredient",
        "availableInSeason",
        "isSupportiveCharacteristicOf",
        "presentIn",
    ];
    for name in focus {
        let iri = feo_foodkg::FoodKg::iri(name);
        let Some(id) = g.lookup_iri(&iri) else {
            continue;
        };
        for [_, p, o] in g.match_pattern(Some(id), None, None) {
            let p_name = g.term_name(p);
            if interesting.contains(&p_name.as_str()) {
                let o_name = g.term_name(o);
                // Skip bnodes and noisy upper-level types.
                if o_name.starts_with("_:")
                    || ["Resource", "Thing", "NamedIndividual"].contains(&o_name.as_str())
                {
                    continue;
                }
                println!("{name} --{p_name}--> {o_name}");
            }
        }
    }
    println!("\n(answer derived from this subsection: {})", e.answer);
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n).collect();
        format!("{cut}…")
    }
}
