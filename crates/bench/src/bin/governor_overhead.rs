//! Paired measurement of governor overhead on the happy path.
//!
//! Wall-clock benches on a shared machine drift by far more than the 2%
//! the workspace budgets for the governor, so this harness interleaves
//! unguarded and guarded batches (drift hits both alike) and reports the
//! median of per-round ratios — a drift-robust estimate of the true
//! overhead. Run with `cargo run --release -p feo-bench --bin
//! governor_overhead`.

use std::time::{Duration, Instant};

use feo_core::{EngineBase, ExplainOptions, Question, Scenario};
use feo_rdf::governor::Budget;

const WARMUP: usize = 50;
const REPEATS: usize = 5;
const PAIRS: usize = 1_500;

fn one_explain(base: &EngineBase, question: &Question, budget: Option<&Budget>) -> Duration {
    let started = Instant::now();
    let e = match budget {
        Some(b) => {
            let guard = b.start();
            base.explain(question, &ExplainOptions::guarded(&guard))
        }
        None => base.explain(question, &ExplainOptions::default()),
    };
    std::hint::black_box(e.expect("happy path explains"));
    started.elapsed()
}

fn measure(scenario: &Scenario) -> f64 {
    let base = EngineBase::new(
        scenario.kg(),
        scenario.user.clone(),
        scenario.context.clone(),
    )
    .expect("consistent");
    // Generous limits: every check runs, none trips.
    let budget = Budget::new()
        .with_deadline(Duration::from_secs(600))
        .with_max_inferred(100_000_000)
        .with_max_rounds(1_000_000)
        .with_max_solutions(100_000_000);

    for _ in 0..WARMUP {
        std::hint::black_box(
            base.explain(&scenario.question, &ExplainOptions::default())
                .expect("warms up"),
        );
    }

    // Tightly interleave single explains so clock drift, frequency
    // scaling, and scheduler noise land evenly on both arms; aggregate
    // sums over many pairs, then take the median ratio across repeats.
    let mut ratios: Vec<f64> = Vec::with_capacity(REPEATS);
    for repeat in 0..REPEATS {
        let mut plain = Duration::ZERO;
        let mut guarded = Duration::ZERO;
        for pair in 0..PAIRS {
            if (pair + repeat) % 2 == 0 {
                plain += one_explain(&base, &scenario.question, None);
                guarded += one_explain(&base, &scenario.question, Some(&budget));
            } else {
                guarded += one_explain(&base, &scenario.question, Some(&budget));
                plain += one_explain(&base, &scenario.question, None);
            }
        }
        ratios.push(guarded.as_secs_f64() / plain.as_secs_f64());
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ratios[ratios.len() / 2]
}

fn main() {
    println!("governor overhead, median over {REPEATS} runs of {PAIRS} interleaved pairs:");
    for scenario in feo_core::all_scenarios() {
        let label = scenario.name.split(' ').next().unwrap_or("cq").to_string();
        let ratio = measure(&scenario);
        println!(
            "  {label}: guarded/unguarded = {ratio:.4} ({:+.2}%)",
            (ratio - 1.0) * 100.0
        );
    }
}
