//! Paired measurement of deterministic-parallelism gain.
//!
//! Same methodology as `planner_gain` and `governor_overhead`:
//! wall-clock drift on a shared machine dwarfs the effects being
//! measured, so each comparison tightly interleaves the two arms (drift
//! lands on both alike) and reports the median of per-round ratios.
//!
//! Three workloads, each timed at 1/2/4/8 workers against
//! `Parallelism::Off`:
//!  1. full closure of the 200-recipe synthetic KG;
//!  2. full closure of the 1000-recipe synthetic KG;
//!  3. a 64-question `explain_batch` over a 200-recipe `EngineBase`.
//!
//! The 1-worker arm runs the identical sequential code path as `Off`
//! (the dispatcher never spawns below two workers), so its ratio is the
//! overhead of the parallel infrastructure itself — the acceptance
//! contract caps it at 5%. The 4-worker arms must clear ≥ 2× on the
//! 1000-recipe closure and the 64-question batch.
//!
//! Run with `cargo run --release -p feo-bench --bin parallel_gain`;
//! `--smoke` shrinks the rounds for CI. Results are also written
//! machine-readably to `BENCH_pr5.json` at the repository root.

use std::time::{Duration, Instant};

use feo_bench::synthetic_fixture;
use feo_core::ecosystem::assemble;
use feo_core::{EngineBase, ExplainOptions, Hypothesis, Population, Question};
use feo_owl::{MaterializeOptions, Reasoner};
use feo_rdf::{Graph, Parallelism};

struct Params {
    warmup: usize,
    repeats: usize,
    pairs: usize,
}

/// Worker counts measured against the `Off` arm.
const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn median(mut ratios: Vec<f64>) -> f64 {
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ratios[ratios.len() / 2]
}

/// Median over `repeats` rounds of the interleaved-pair total-time
/// ratio `run(parallel) / run(off)`.
fn paired_ratio(params: &Params, mut run: impl FnMut(bool) -> Duration) -> f64 {
    let mut ratios = Vec::with_capacity(params.repeats);
    for repeat in 0..params.repeats {
        let mut par = Duration::ZERO;
        let mut off = Duration::ZERO;
        for pair in 0..params.pairs {
            // Alternate which arm goes first so scheduler noise and
            // frequency scaling land evenly on both.
            if (pair + repeat) % 2 == 0 {
                par += run(true);
                off += run(false);
            } else {
                off += run(false);
                par += run(true);
            }
        }
        ratios.push(par.as_secs_f64() / off.as_secs_f64());
    }
    median(ratios)
}

/// Assembled (unmaterialized) graph plus a rule set precompiled from
/// it, matching the engine hot path where sessions reuse compiled
/// rules rather than re-extracting axioms per close.
fn closure_fixture(recipes: usize) -> (Graph, feo_owl::CompiledRules) {
    let (kg, user, ctx) = synthetic_fixture(recipes);
    let mut template = assemble(&kg, &user, &ctx);
    let rules = Reasoner::new().compile(&mut template);
    (template, rules)
}

fn one_materialize(template: &Graph, rules: &feo_owl::CompiledRules, p: Parallelism) -> Duration {
    let mut g = template.clone();
    let opts = MaterializeOptions {
        rules: Some(rules),
        parallelism: p,
        ..Default::default()
    };
    let started = Instant::now();
    std::hint::black_box(
        Reasoner::new()
            .materialize(&mut g, &opts)
            .expect("unguarded materialization converges"),
    );
    started.elapsed()
}

/// `parallel/off` time ratio for a full closure at `workers`.
fn measure_closure(
    template: &Graph,
    rules: &feo_owl::CompiledRules,
    workers: usize,
    params: &Params,
) -> f64 {
    for _ in 0..params.warmup {
        one_materialize(template, rules, Parallelism::Fixed(workers));
        one_materialize(template, rules, Parallelism::Off);
    }
    paired_ratio(params, |parallel| {
        let p = if parallel {
            Parallelism::Fixed(workers)
        } else {
            Parallelism::Off
        };
        one_materialize(template, rules, p)
    })
}

/// A 64-question batch mixing the explanation types that exercise
/// reasoning plus querying, cycled over the synthetic recipes.
fn batch_fixture() -> (EngineBase, Vec<Question>) {
    let (kg, user, ctx) = synthetic_fixture(200);
    let population = Population::generate(&kg, 100, 42);
    let names: Vec<String> = kg.recipes.iter().map(|r| r.id.clone()).collect();
    let base = EngineBase::new(kg, user, ctx)
        .expect("synthetic world is consistent")
        .with_population(population);
    let questions = (0..64)
        .map(|i| {
            let food = names[(i * 7) % names.len()].clone();
            match i % 4 {
                0 => Question::WhyEat { food },
                1 => Question::WhyEatOver {
                    preferred: food,
                    alternative: names[(i * 7 + 3) % names.len()].clone(),
                },
                2 => Question::WhatIf {
                    hypothesis: Hypothesis::Pregnant,
                },
                _ => Question::WhatOtherUsers { food },
            }
        })
        .collect();
    (base, questions)
}

fn one_batch(base: &EngineBase, questions: &[Question], p: Parallelism) -> Duration {
    let opts = ExplainOptions {
        parallelism: p,
        ..Default::default()
    };
    let started = Instant::now();
    for result in std::hint::black_box(base.explain_batch(questions, &opts)) {
        result.expect("happy-path batch explains");
    }
    started.elapsed()
}

fn measure_batch(
    base: &EngineBase,
    questions: &[Question],
    workers: usize,
    params: &Params,
) -> f64 {
    for _ in 0..params.warmup {
        one_batch(base, questions, Parallelism::Fixed(workers));
        one_batch(base, questions, Parallelism::Off);
    }
    paired_ratio(params, |parallel| {
        let p = if parallel {
            Parallelism::Fixed(workers)
        } else {
            Parallelism::Off
        };
        one_batch(base, questions, p)
    })
}

struct Row {
    workload: &'static str,
    workers: usize,
    ratio: f64,
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let (closure200, closure1000, batch) = if smoke {
        (
            Params {
                warmup: 1,
                repeats: 2,
                pairs: 2,
            },
            Params {
                warmup: 0,
                repeats: 1,
                pairs: 1,
            },
            Params {
                warmup: 1,
                repeats: 2,
                pairs: 2,
            },
        )
    } else {
        (
            Params {
                warmup: 3,
                repeats: 5,
                pairs: 20,
            },
            Params {
                warmup: 1,
                repeats: 3,
                pairs: 5,
            },
            Params {
                warmup: 2,
                repeats: 5,
                pairs: 10,
            },
        )
    };
    println!(
        "parallel gain, parallel/off paired-interleaved medians{}:",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();

    let (template, rules) = closure_fixture(200);
    println!("  full closure, 200-recipe synthetic KG:");
    for workers in WORKERS {
        let ratio = measure_closure(&template, &rules, workers, &closure200);
        println!(
            "    {workers} workers: parallel/off = {ratio:.4} ({:.2}x)",
            1.0 / ratio
        );
        rows.push(Row {
            workload: "closure_200",
            workers,
            ratio,
        });
    }

    let (template, rules) = closure_fixture(1000);
    println!("  full closure, 1000-recipe synthetic KG:");
    for workers in WORKERS {
        let ratio = measure_closure(&template, &rules, workers, &closure1000);
        println!(
            "    {workers} workers: parallel/off = {ratio:.4} ({:.2}x)",
            1.0 / ratio
        );
        rows.push(Row {
            workload: "closure_1000",
            workers,
            ratio,
        });
    }

    let (base, questions) = batch_fixture();
    println!("  64-question explain_batch, 200-recipe EngineBase:");
    for workers in WORKERS {
        let ratio = measure_batch(&base, &questions, workers, &batch);
        println!(
            "    {workers} workers: parallel/off = {ratio:.4} ({:.2}x)",
            1.0 / ratio
        );
        rows.push(Row {
            workload: "explain_batch_64",
            workers,
            ratio,
        });
    }

    // Acceptance contract: ≥ 2× at 4 workers on the 1000-recipe closure
    // and the 64-question batch; ≤ 5% overhead at 1 worker everywhere.
    // The speedup half of the contract needs hardware that can actually
    // run 4 workers at once — on a smaller host the threads time-slice
    // one core and the ratio can only hover around 1.0, so those checks
    // report SKIP (with the host core count) instead of a spurious FAIL.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let get = |workload: &str, workers: usize| {
        rows.iter()
            .find(|r| r.workload == workload && r.workers == workers)
            .map(|r| r.ratio)
            .expect("measured above")
    };
    let mut pass = true;
    // Smoke rounds are too short for the ratios to be meaningful, so a
    // missed contract is a WARN there (and never gates), a FAIL only on
    // full runs.
    let verdict = |ok: bool| match (ok, smoke) {
        (true, _) => "PASS",
        (false, true) => "WARN",
        (false, false) => "FAIL",
    };
    for workload in ["closure_1000", "explain_batch_64"] {
        let speedup = 1.0 / get(workload, 4);
        if cores < 4 {
            println!(
                "  SKIP {workload} @4 workers: {speedup:.2}x measured, but host has \
                 {cores} core(s) — contract (>= 2x) needs >= 4"
            );
            continue;
        }
        let ok = speedup >= 2.0;
        pass &= ok || smoke;
        println!(
            "  {} {workload} @4 workers: {speedup:.2}x (contract >= 2x)",
            verdict(ok)
        );
    }
    for workload in ["closure_200", "closure_1000", "explain_batch_64"] {
        let overhead = (get(workload, 1) - 1.0) * 100.0;
        let ok = overhead <= 5.0;
        pass &= ok || smoke;
        println!(
            "  {} {workload} @1 worker: {overhead:+.2}% overhead (contract <= 5%)",
            verdict(ok)
        );
    }

    // Machine-readable artifact at the repository root. Smoke runs
    // (CI) skip the write so they never clobber recorded full numbers.
    if smoke {
        println!("  smoke mode: BENCH_pr5.json left untouched");
        return;
    }
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"workers\": {}, \"ratio_vs_off\": {:.4}, \"speedup\": {:.2}}}",
                r.workload,
                r.workers,
                r.ratio,
                1.0 / r.ratio
            )
        })
        .collect();
    let json = format!
        ("{{\n  \"bench\": \"parallel_gain\",\n  \"mode\": \"{}\",\n  \"host_cores\": {},\n  \"baseline\": \"Parallelism::Off\",\n  \"results\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        cores,
        json_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json");
    match std::fs::write(out, json) {
        Ok(()) => println!("  wrote {out}"),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
    if !pass {
        std::process::exit(1);
    }
}
