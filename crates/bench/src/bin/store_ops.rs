//! Paired measurement of persistent-store operation costs.
//!
//! Same methodology as `ledger_ops`: wall-clock drift on a shared
//! machine dwarfs the effects being measured, so each comparison
//! tightly interleaves the two arms and reports the median of
//! per-round ratios.
//!
//! Three workloads:
//!  1. **Warm open vs cold boot** at 1000 recipes — `EngineBase::open`
//!     (mmap the segment, replay an empty WAL, recompile rules)
//!     against `EngineBase::new` (assemble + full OWL 2 RL
//!     materialization). The whole point of the store: the contract
//!     demands the warm path be at least 10× faster (ratio ≤ 0.10).
//!  2. **Save vs cold boot** at 1000 recipes — persisting the closed
//!     engine must cost no more than the build it snapshots.
//!  3. **WAL commit vs memory commit** at 200 recipes — a commit on a
//!     store-attached engine adds one fsynced WAL append, a fixed
//!     millisecond-scale durability floor; it must stay within a few
//!     multiples of the in-memory commit.
//!
//! Run with `cargo run --release -p feo-bench --bin store_ops`;
//! `--smoke` shrinks the rounds for CI. Full runs write the results
//! machine-readably to `BENCH_pr8.json` at the repository root.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use feo_bench::synthetic_fixture;
use feo_core::ecosystem::apply_hypothesis;
use feo_core::EngineBase;
use feo_core::Hypothesis;

struct Params {
    warmup: usize,
    repeats: usize,
    pairs: usize,
}

fn median(mut ratios: Vec<f64>) -> f64 {
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ratios[ratios.len() / 2]
}

/// Median over `repeats` rounds of the interleaved-pair total-time
/// ratio `run(measured) / run(baseline)`.
fn paired_ratio(params: &Params, mut run: impl FnMut(bool) -> Duration) -> f64 {
    let mut ratios = Vec::with_capacity(params.repeats);
    for repeat in 0..params.repeats {
        let mut measured = Duration::ZERO;
        let mut baseline = Duration::ZERO;
        for pair in 0..params.pairs {
            if (pair + repeat) % 2 == 0 {
                measured += run(true);
                baseline += run(false);
            } else {
                baseline += run(false);
                measured += run(true);
            }
        }
        ratios.push(measured.as_secs_f64() / baseline.as_secs_f64());
    }
    median(ratios)
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("feo-bench-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Row {
    workload: &'static str,
    ratio: f64,
    contract: f64,
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let (recipes, boots, commits) = if smoke {
        (
            120,
            Params {
                warmup: 1,
                repeats: 2,
                pairs: 1,
            },
            Params {
                warmup: 1,
                repeats: 2,
                pairs: 3,
            },
        )
    } else {
        (
            1000,
            Params {
                warmup: 1,
                repeats: 3,
                pairs: 3,
            },
            Params {
                warmup: 2,
                repeats: 5,
                pairs: 8,
            },
        )
    };
    println!(
        "store ops, paired-interleaved medians at {recipes} recipes{}:",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();

    // 1. Warm open vs cold boot. One throwaway build persists the
    // store; then every measured arm memory-maps it while every
    // baseline arm redoes assemble + materialize from scratch.
    {
        let (kg, user, ctx) = synthetic_fixture(recipes);
        let dir = store_dir("open");
        let mut seeded = EngineBase::new(kg.clone(), user.clone(), ctx.clone())
            .expect("synthetic world is consistent");
        seeded.save_to(&dir).expect("store saves");
        drop(seeded);

        let ratio = paired_ratio(&boots, |measured| {
            let started = Instant::now();
            if measured {
                std::hint::black_box(
                    EngineBase::open(&dir, kg.clone(), user.clone(), ctx.clone())
                        .expect("store opens"),
                );
            } else {
                std::hint::black_box(
                    EngineBase::new(kg.clone(), user.clone(), ctx.clone()).expect("consistent"),
                );
            }
            started.elapsed()
        });
        println!("  warm mmap open / cold parse+materialize = {ratio:.4}");
        rows.push(Row {
            workload: "warm_open_vs_cold_boot",
            ratio,
            contract: 0.10,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // 2. Save vs cold boot: writing the dictionary-encoded segment
    // (sorted runs + stats + fsync) must not exceed the cost of the
    // build it snapshots.
    {
        let (kg, user, ctx) = synthetic_fixture(recipes);
        let dir = store_dir("save");
        let mut engine = EngineBase::new(kg.clone(), user.clone(), ctx.clone())
            .expect("synthetic world is consistent");
        let ratio = paired_ratio(&boots, |measured| {
            let started = Instant::now();
            if measured {
                engine.save_to(&dir).expect("store saves");
            } else {
                std::hint::black_box(
                    EngineBase::new(kg.clone(), user.clone(), ctx.clone()).expect("consistent"),
                );
            }
            started.elapsed()
        });
        println!("  save_to / cold parse+materialize = {ratio:.4}");
        rows.push(Row {
            workload: "save_vs_cold_boot",
            ratio,
            contract: 1.0,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // 3. WAL-attached commit vs memory commit: durability costs one
    // fsynced append — a fixed millisecond-scale floor that dominates
    // a small delta's closure, so the contract only caps it at a few
    // multiples of the in-memory commit rather than pretending the
    // fsync is free.
    {
        let (kg, user, ctx) = synthetic_fixture(200);
        let dir = store_dir("commit");
        let mut disk = EngineBase::new(kg.clone(), user.clone(), ctx.clone())
            .expect("synthetic world is consistent");
        disk.save_to(&dir).expect("store saves");
        let mut mem =
            EngineBase::new(kg, user.clone(), ctx).expect("synthetic world is consistent");
        let mut counter = 0usize;
        let fresh = |counter: &mut usize| {
            *counter += 1;
            if counter.is_multiple_of(2) {
                Hypothesis::FollowedDiet(format!("BenchDiet{counter}"))
            } else {
                Hypothesis::AllergicTo(format!("BenchIngredient{counter}"))
            }
        };
        for _ in 0..commits.warmup {
            let h = fresh(&mut counter);
            disk.commit_with("bench", |overlay| apply_hypothesis(&h, &user, overlay));
            let h = fresh(&mut counter);
            mem.commit_with("bench", |overlay| apply_hypothesis(&h, &user, overlay));
        }
        let ratio = paired_ratio(&commits, |measured| {
            let h = fresh(&mut counter);
            let engine = if measured { &mut disk } else { &mut mem };
            let started = Instant::now();
            std::hint::black_box(
                engine.commit_with("bench", |overlay| apply_hypothesis(&h, &user, overlay)),
            );
            started.elapsed()
        });
        assert!(
            disk.store().is_some(),
            "WAL appends kept succeeding (store still attached)"
        );
        println!("  commit_with + WAL append / memory commit_with = {ratio:.4}");
        rows.push(Row {
            workload: "wal_commit_vs_memory_commit",
            ratio,
            contract: 4.0,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Acceptance contracts: WARN on smoke rounds (too short to be
    // meaningful, never gates), FAIL on full runs.
    let mut pass = true;
    for row in &rows {
        let ok = row.ratio <= row.contract;
        pass &= ok || smoke;
        let verdict = match (ok, smoke) {
            (true, _) => "PASS",
            (false, true) => "WARN",
            (false, false) => "FAIL",
        };
        println!(
            "  {verdict} {}: {:.4} (contract <= {:.2})",
            row.workload, row.ratio, row.contract
        );
    }

    if smoke {
        println!("  smoke mode: BENCH_pr8.json left untouched");
        return;
    }
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"ratio\": {:.4}, \"contract_max\": {:.2}}}",
                r.workload, r.ratio, r.contract
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"store_ops\",\n  \"mode\": \"full\",\n  \"recipes\": {recipes},\n  \"baseline\": \"cold parse+materialize / memory commit\",\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr8.json");
    match std::fs::write(out, json) {
        Ok(()) => println!("  wrote {out}"),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
    if !pass {
        std::process::exit(1);
    }
}
