//! Paired measurement of the sorted-merge / leapfrog join gain.
//!
//! Same methodology as `planner_gain` and `parallel_gain`: wall-clock
//! drift on a shared machine dwarfs the effects being measured, so each
//! comparison tightly interleaves the two arms (drift lands on both
//! alike) and reports the median of per-round ratios.
//!
//! Arms: the planner's own per-step algorithm choice (merge joins over
//! already-ordered scans, leapfrog intersection over star groups)
//! against `force_join = Some(Hash)` — the engine's previous hash-only
//! execution path — on the identical join order, so the ratio isolates
//! the physical operator.
//!
//! Workloads:
//!  1. CQ1–CQ3, the paper's competency questions (Listings 1–3), over a
//!     400-recipe synthetic KG with the questions asserted and the
//!     closure materialized, exactly as the engine prepares them;
//!  2. an adversarial ground-object star — three patterns intersecting
//!     ordered subject runs of 40k / 20k / ~400 entries down to ~200
//!     survivors, the case hash joins pay full materialization for;
//!  3. a subject-only join with the object free — the one bound-join
//!     shape with no usable scan ordering, which must still plan as a
//!     hash join and therefore stay within noise of the old path.
//!
//! Run with `cargo run --release -p feo-bench --bin join_gain`;
//! `--smoke` shrinks the rounds for CI. Full runs write the results
//! machine-readably to `BENCH_pr10.json` at the repository root.

use std::time::{Duration, Instant};

use feo_bench::synthetic_fixture;
use feo_core::ecosystem::{apply_hypothesis, assemble, assert_question};
use feo_core::queries::{contextual_query, contrastive_query, counterfactual_query};
use feo_core::{Hypothesis, Question};
use feo_ontology::ns::{feo, sparql_prologue};
use feo_owl::Reasoner;
use feo_rdf::Graph;
use feo_sparql::{query, JoinAlgo, QueryOptions};

struct Params {
    warmup: usize,
    repeats: usize,
    pairs: usize,
}

const FULL: Params = Params {
    warmup: 20,
    repeats: 5,
    pairs: 200,
};

const SMOKE: Params = Params {
    warmup: 2,
    repeats: 3,
    pairs: 10,
};

fn median(mut ratios: Vec<f64>) -> f64 {
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ratios[ratios.len() / 2]
}

/// Median over `repeats` rounds of the interleaved-pair total-time
/// ratio `run(planned) / run(hash)`.
fn paired_ratio(params: &Params, mut run: impl FnMut(bool) -> Duration) -> f64 {
    let mut ratios = Vec::with_capacity(params.repeats);
    for repeat in 0..params.repeats {
        let mut planned = Duration::ZERO;
        let mut hash = Duration::ZERO;
        for pair in 0..params.pairs {
            // Alternate which arm goes first so scheduler noise and
            // frequency scaling land evenly on both.
            if (pair + repeat) % 2 == 0 {
                planned += run(true);
                hash += run(false);
            } else {
                hash += run(false);
                planned += run(true);
            }
        }
        ratios.push(planned.as_secs_f64() / hash.as_secs_f64());
    }
    median(ratios)
}

fn one_query(g: &Graph, q: &str, force: Option<JoinAlgo>) -> Duration {
    let opts = QueryOptions {
        force_join: force,
        ..Default::default()
    };
    let started = Instant::now();
    std::hint::black_box(query(g, q, &opts).expect("benchmark query runs"));
    started.elapsed()
}

/// planned/hash-only ratio for one query.
fn measure(g: &Graph, q: &str, params: &Params) -> f64 {
    for _ in 0..params.warmup {
        one_query(g, q, None);
        one_query(g, q, Some(JoinAlgo::Hash));
    }
    paired_ratio(params, |planned| {
        let force = if planned { None } else { Some(JoinAlgo::Hash) };
        one_query(g, q, force)
    })
}

/// The engine's own CQ preparation: assemble the synthetic world,
/// assert the three questions (and the CQ3 hypothesis), materialize the
/// closure once, and return the three Listing queries.
fn cq_fixture(recipes: usize) -> (Graph, Vec<(&'static str, String)>) {
    let (kg, user, ctx) = synthetic_fixture(recipes);
    let mut g = assemble(&kg, &user, &ctx);
    let q1 = Question::WhyEat {
        food: kg.recipes[0].id.clone(),
    };
    let q2 = Question::WhyEatOver {
        preferred: kg.recipes[0].id.clone(),
        alternative: kg.recipes[1].id.clone(),
    };
    assert_question(&q1, &mut g);
    assert_question(&q2, &mut g);
    apply_hypothesis(&Hypothesis::Pregnant, &user, &mut g);
    Reasoner::new()
        .materialize(&mut g, &Default::default())
        .expect("unguarded materialization converges");
    let queries = vec![
        ("cq1_contextual", contextual_query(&q1)),
        ("cq2_contrastive", contrastive_query(&q2)),
        (
            "cq3_counterfactual",
            counterfactual_query(feo::PREGNANCY_STATE),
        ),
    ];
    (g, queries)
}

/// Ground-object star: every subject carries `all`, half carry `half`,
/// one in 101 carries `rare`; the intersection is one subject in 202.
/// Hash joins must build and probe the full 20k/40k scans; leapfrog
/// gallops the rare run against the ordered big runs.
fn star_fixture(n: usize) -> (Graph, String) {
    let mut g = Graph::new();
    for i in 0..n {
        let s = format!("http://bench/s{i}");
        g.insert_iris(&s, "http://bench/all", "http://bench/o0");
        if i % 2 == 0 {
            g.insert_iris(&s, "http://bench/half", "http://bench/o1");
        }
        if i % 101 == 0 {
            g.insert_iris(&s, "http://bench/rare", "http://bench/o2");
        }
    }
    let q = "SELECT ?s WHERE {\n\
               ?s <http://bench/all> <http://bench/o0> .\n\
               ?s <http://bench/half> <http://bench/o1> .\n\
               ?s <http://bench/rare> <http://bench/o2> .\n\
             }"
    .to_string();
    (g, q)
}

/// Subject-only join with the object free: the planner's merge rule has
/// no usable ordering here and must keep the hash join, so the planned
/// arm runs the identical operator as the forced arm.
fn fallback_query() -> String {
    format!(
        "{}SELECT ?r ?c ?t WHERE {{\n\
           ?r food:calories ?c .\n\
           ?r food:priceTier ?t .\n\
         }}",
        sparql_prologue()
    )
}

struct Row {
    workload: &'static str,
    ratio: f64,
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let params = if smoke { SMOKE } else { FULL };
    println!(
        "join gain, planned/hash-only paired-interleaved medians over {} runs of {} pairs{}:",
        params.repeats,
        params.pairs,
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();

    let (g, cqs) = cq_fixture(400);
    println!("  paper competency questions, 400-recipe synthetic KG:");
    for (label, q) in &cqs {
        let ratio = measure(&g, q, &params);
        println!(
            "    {label}: planned/hash = {ratio:.4} ({:.2}x)",
            1.0 / ratio
        );
        rows.push(Row {
            workload: label,
            ratio,
        });
    }

    let (star_g, star_q) = star_fixture(40_000);
    println!("  adversarial ground-object star, 40k subjects:");
    let ratio = measure(&star_g, &star_q, &params);
    println!(
        "    star_adversarial: planned/hash = {ratio:.4} ({:.2}x)",
        1.0 / ratio
    );
    rows.push(Row {
        workload: "star_adversarial",
        ratio,
    });

    println!("  subject-only join, object free (hash fallback):");
    let fallback = fallback_query();
    let ratio = measure(&g, &fallback, &params);
    println!(
        "    hash_fallback: planned/hash = {ratio:.4} ({:+.2}%)",
        (ratio - 1.0) * 100.0
    );
    rows.push(Row {
        workload: "hash_fallback",
        ratio,
    });

    // Acceptance contract: ≥ 1.5× on at least one paper workload, ≥ 2×
    // on the adversarial star, and the hash fallback within 5% of the
    // old path. Smoke rounds are too short for the ratios to be
    // meaningful, so a missed contract is a WARN there (and never
    // gates), a FAIL only on full runs. These workloads are
    // single-threaded, so no contract depends on the host core count —
    // it is still recorded in the JSON for cross-host comparability.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let get = |workload: &str| {
        rows.iter()
            .find(|r| r.workload == workload)
            .map(|r| r.ratio)
            .expect("measured above")
    };
    let mut pass = true;
    let verdict = |ok: bool| match (ok, smoke) {
        (true, _) => "PASS",
        (false, true) => "WARN",
        (false, false) => "FAIL",
    };
    let best_cq = ["cq1_contextual", "cq2_contrastive", "cq3_counterfactual"]
        .iter()
        .map(|w| 1.0 / get(w))
        .fold(f64::MIN, f64::max);
    let ok = best_cq >= 1.5;
    pass &= ok || smoke;
    println!(
        "  {} best paper workload: {best_cq:.2}x (contract >= 1.5x on at least one of CQ1-CQ3)",
        verdict(ok)
    );
    let star_speedup = 1.0 / get("star_adversarial");
    let ok = star_speedup >= 2.0;
    pass &= ok || smoke;
    println!(
        "  {} star_adversarial: {star_speedup:.2}x (contract >= 2x)",
        verdict(ok)
    );
    let drift = (get("hash_fallback") - 1.0) * 100.0;
    let ok = drift.abs() <= 5.0;
    pass &= ok || smoke;
    println!(
        "  {} hash_fallback: {drift:+.2}% (contract within 5% of the old path)",
        verdict(ok)
    );

    // Machine-readable artifact at the repository root. Smoke runs
    // (CI) skip the write so they never clobber recorded full numbers.
    if smoke {
        println!("  smoke mode: BENCH_pr10.json left untouched");
        return;
    }
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"ratio_vs_hash\": {:.4}, \"speedup\": {:.2}}}",
                r.workload,
                r.ratio,
                1.0 / r.ratio
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"join_gain\",\n  \"mode\": \"full\",\n  \"host_cores\": {},\n  \"baseline\": \"force_join = Hash\",\n  \"results\": [\n{}\n  ]\n}}\n",
        cores,
        json_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json");
    match std::fs::write(out, json) {
        Ok(()) => println!("  wrote {out}"),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
    if !pass {
        std::process::exit(1);
    }
}
