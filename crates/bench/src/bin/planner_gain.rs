//! Paired measurement of the cost-based planner's gain.
//!
//! Same methodology as `governor_overhead`: wall-clock drift on a shared
//! machine dwarfs the effects being measured, so each comparison
//! tightly interleaves the two arms (drift lands on both alike) and
//! reports the median of per-round ratios.
//!
//! Two experiments:
//!  1. CQ1–CQ3 explanations, cost-based (plan cache included — the
//!     production hot path) vs. greedy reordering. The contract is
//!     "planned no slower than greedy".
//!  2. An adversarially-authored BGP (the first two patterns share no
//!     variable, so author order opens with a cartesian product) over
//!     the synthetic KG: cost-based vs. author order (contract: ≥ 2×
//!     faster) and vs. greedy.
//!
//! Run with `cargo run --release -p feo-bench --bin planner_gain`;
//! `--smoke` shrinks the rounds for CI.

use std::time::{Duration, Instant};

use feo_bench::synthetic_fixture;
use feo_core::ecosystem::assemble;
use feo_core::{all_scenarios, EngineBase, ExplainOptions, Question, Scenario};
use feo_ontology::ns::sparql_prologue;
use feo_owl::Reasoner;
use feo_rdf::Graph;
use feo_sparql::{query, Planner, QueryOptions};

struct Params {
    warmup: usize,
    repeats: usize,
    pairs: usize,
}

const FULL: Params = Params {
    warmup: 50,
    repeats: 5,
    pairs: 1_500,
};

const SMOKE: Params = Params {
    warmup: 5,
    repeats: 3,
    pairs: 30,
};

fn median(mut ratios: Vec<f64>) -> f64 {
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ratios[ratios.len() / 2]
}

/// Median over `repeats` rounds of the interleaved-pair total-time
/// ratio `run(a) / run(b)`.
fn paired_ratio(params: &Params, mut run: impl FnMut(bool) -> Duration) -> f64 {
    let mut ratios = Vec::with_capacity(params.repeats);
    for repeat in 0..params.repeats {
        let mut a = Duration::ZERO;
        let mut b = Duration::ZERO;
        for pair in 0..params.pairs {
            // Alternate which arm goes first so scheduler noise and
            // frequency scaling land evenly on both.
            if (pair + repeat) % 2 == 0 {
                a += run(true);
                b += run(false);
            } else {
                b += run(false);
                a += run(true);
            }
        }
        ratios.push(a.as_secs_f64() / b.as_secs_f64());
    }
    median(ratios)
}

fn one_explain(base: &EngineBase, question: &Question, planner: Planner) -> Duration {
    let opts = ExplainOptions {
        planner,
        ..Default::default()
    };
    let started = Instant::now();
    std::hint::black_box(base.explain(question, &opts).expect("happy path explains"));
    started.elapsed()
}

/// planned/greedy ratio for one scenario's competency question.
fn measure_explain(scenario: &Scenario, params: &Params) -> f64 {
    let base = EngineBase::new(
        scenario.kg(),
        scenario.user.clone(),
        scenario.context.clone(),
    )
    .expect("consistent");
    for _ in 0..params.warmup {
        one_explain(&base, &scenario.question, Planner::CostBased);
        one_explain(&base, &scenario.question, Planner::Greedy);
    }
    paired_ratio(params, |planned| {
        let planner = if planned {
            Planner::CostBased
        } else {
            Planner::Greedy
        };
        one_explain(&base, &scenario.question, planner)
    })
}

fn one_query(g: &Graph, q: &str, planner: Planner) -> Duration {
    let opts = QueryOptions {
        planner,
        ..Default::default()
    };
    let started = Instant::now();
    std::hint::black_box(query(g, q, &opts).expect("benchmark query runs"));
    started.elapsed()
}

/// Ratio of `a` over `b` on one query.
fn measure_query(g: &Graph, q: &str, a: Planner, b: Planner, params: &Params) -> f64 {
    for _ in 0..params.warmup {
        one_query(g, q, a);
        one_query(g, q, b);
    }
    paired_ratio(params, |first| one_query(g, q, if first { a } else { b }))
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let params = if smoke { SMOKE } else { FULL };
    println!(
        "planner gain, median over {} runs of {} interleaved pairs{}:",
        params.repeats,
        params.pairs,
        if smoke { " (smoke)" } else { "" }
    );

    println!("  CQ explanations, cost-based (with plan cache) vs greedy:");
    for scenario in all_scenarios() {
        let label = scenario.name.split(' ').next().unwrap_or("cq");
        let ratio = measure_explain(&scenario, &params);
        println!(
            "    {label}: planned/greedy = {ratio:.4} ({:+.2}%)",
            (ratio - 1.0) * 100.0
        );
    }

    // The ablation query from DESIGN.md: author order opens with a
    // cartesian product; both planners move the connecting pattern up.
    let (kg, user, ctx) = synthetic_fixture(200);
    let mut g = assemble(&kg, &user, &ctx);
    Reasoner::new()
        .materialize(&mut g, &Default::default())
        .expect("materializes");
    let adversarial = format!(
        "{}SELECT ?r ?i ?s WHERE {{\n\
           ?r food:calories ?c .\n\
           ?i food:availableInSeason ?s .\n\
           ?r food:hasIngredient ?i .\n\
           FILTER (?c > 700) .\n\
         }}",
        sparql_prologue()
    );

    println!("  adversarially-ordered BGP (synthetic KG, 200 recipes):");
    let vs_author = measure_query(&g, &adversarial, Planner::CostBased, Planner::Off, &params);
    println!(
        "    planned/author_order = {vs_author:.4} ({:.1}x speedup)",
        1.0 / vs_author
    );
    let vs_greedy = measure_query(
        &g,
        &adversarial,
        Planner::CostBased,
        Planner::Greedy,
        &params,
    );
    println!(
        "    planned/greedy = {vs_greedy:.4} ({:+.2}%)",
        (vs_greedy - 1.0) * 100.0
    );
}
