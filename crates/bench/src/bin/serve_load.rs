//! Load characterization of the HTTP explanation service.
//!
//! Three phases against an in-process `feo_serve::Server` over the
//! curated knowledge graph:
//!
//!  1. **Closed-loop latency**: N clients, each issuing requests
//!     back-to-back, at increasing concurrency. Reports p50/p99/p999
//!     per level.
//!  2. **Open arrival**: requests launched on a fixed schedule
//!     regardless of completions (the arrival pattern a real fleet
//!     produces), at a sustainable and an aggressive rate.
//!  3. **Overload sweep**: a deliberately tiny admission gate
//!     (`max_inflight=2`, `max_queue=4`) hammered by 32 clients. The
//!     service must *shed, not collapse*: zero 5xx, fast honest 429s,
//!     and bounded latency for the requests it does accept.
//!
//! Contracts (FAIL on full runs, WARN in `--smoke`):
//!   - zero 5xx and zero panics across every phase;
//!   - overload sheds: 429s appear once the gate saturates;
//!   - shed responses are fast (p99 well under the request deadline —
//!     rejection must not queue);
//!   - accepted p99 stays bounded past the admission cap.
//!
//! Run with `cargo run --release -p feo-bench --bin serve_load`;
//! `--smoke` shrinks the load for CI (and leaves `BENCH_pr7.json`
//! untouched). Full runs write `BENCH_pr7.json` at the repo root.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use feo_core::EngineBase;
use feo_foodkg::{curated, Season, SystemContext, UserProfile};
use feo_serve::{AdmissionConfig, ServeConfig, Server, ServerHandle};

const EXPLAIN_BODY: &str = r#"{"questions":[{"type":"why-eat","food":"CauliflowerPotatoCurry"}]}"#;

fn base() -> Arc<EngineBase> {
    let user = UserProfile::new("bench-user");
    let ctx = SystemContext::new(Season::Autumn);
    Arc::new(EngineBase::new(curated(), user, ctx).expect("curated world is consistent"))
}

fn spawn_server(admission: AdmissionConfig, default_deadline_ms: u64) -> ServerHandle {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        admission,
        default_deadline_ms,
        queue_wait_cap_ms: default_deadline_ms,
        ..ServeConfig::default()
    };
    Server::spawn(base(), cfg).expect("bind ephemeral port")
}

/// One `POST /explain` over a fresh connection (`Connection: close`).
/// Returns the status code and wall-clock latency.
fn post_explain(addr: SocketAddr) -> std::io::Result<(u16, Duration)> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let request = format!(
        "POST /explain HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        EXPLAIN_BODY.len(),
        EXPLAIN_BODY
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head = String::from_utf8_lossy(&raw);
    let status = head
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::other("unparseable response"))?;
    Ok((status, started.elapsed()))
}

/// Outcomes of one phase, split by response class.
#[derive(Default)]
struct Tally {
    ok: Vec<Duration>,    // 200 + 206 (work done, possibly degraded)
    shed: Vec<Duration>,  // 429 + 503 (honest rejection)
    server_err: usize,    // 5xx
    transport_err: usize, // connect/read failures
    degraded: usize,      // 206 specifically
}

impl Tally {
    fn absorb(&mut self, result: std::io::Result<(u16, Duration)>) {
        match result {
            Ok((status, latency)) => match status {
                200 => self.ok.push(latency),
                206 => {
                    self.degraded += 1;
                    self.ok.push(latency);
                }
                429 | 503 => self.shed.push(latency),
                500..=599 => self.server_err += 1,
                _ => self.server_err += 1,
            },
            Err(_) => self.transport_err += 1,
        }
    }

    fn merge(&mut self, other: Tally) {
        self.ok.extend(other.ok);
        self.shed.extend(other.shed);
        self.server_err += other.server_err;
        self.transport_err += other.transport_err;
        self.degraded += other.degraded;
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Closed loop: `clients` threads, each `per_client` sequential
/// requests.
fn closed_loop(addr: SocketAddr, clients: usize, per_client: usize) -> Tally {
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            thread::spawn(move || {
                let mut tally = Tally::default();
                for _ in 0..per_client {
                    tally.absorb(post_explain(addr));
                }
                tally
            })
        })
        .collect();
    let mut total = Tally::default();
    for worker in workers {
        total.merge(worker.join().expect("client thread"));
    }
    total
}

/// Open arrival: one request launched every `interval`, `count` times,
/// regardless of completions — queueing shows up as latency, not as a
/// reduced offered rate.
fn open_arrival(addr: SocketAddr, interval: Duration, count: usize) -> Tally {
    let start = Instant::now();
    let workers: Vec<_> = (0..count)
        .map(|i| {
            thread::spawn(move || {
                let due = start + interval * (i as u32);
                let now = Instant::now();
                if due > now {
                    thread::sleep(due - now);
                }
                let mut tally = Tally::default();
                tally.absorb(post_explain(addr));
                tally
            })
        })
        .collect();
    let mut total = Tally::default();
    for worker in workers {
        total.merge(worker.join().expect("client thread"));
    }
    total
}

struct PhaseReport {
    phase: String,
    tally: Tally,
    ok_p50: Duration,
    ok_p99: Duration,
    ok_p999: Duration,
    shed_p99: Duration,
}

fn report(phase: String, mut tally: Tally) -> PhaseReport {
    tally.ok.sort();
    tally.shed.sort();
    let ok_p50 = percentile(&tally.ok, 0.50);
    let ok_p99 = percentile(&tally.ok, 0.99);
    let ok_p999 = percentile(&tally.ok, 0.999);
    let shed_p99 = percentile(&tally.shed, 0.99);
    println!(
        "  {phase}: ok={} (degraded {}) shed={} 5xx={} transport_err={}",
        tally.ok.len(),
        tally.degraded,
        tally.shed.len(),
        tally.server_err,
        tally.transport_err,
    );
    println!(
        "    accepted p50={:.1}ms p99={:.1}ms p999={:.1}ms; shed p99={:.1}ms",
        ms(ok_p50),
        ms(ok_p99),
        ms(ok_p999),
        ms(shed_p99),
    );
    PhaseReport {
        phase,
        tally,
        ok_p50,
        ok_p99,
        ok_p999,
        shed_p99,
    }
}

struct Contract {
    name: &'static str,
    ok: bool,
    detail: String,
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    println!(
        "serve_load: HTTP service under load{}:",
        if smoke { " (smoke)" } else { "" }
    );
    let mut reports: Vec<PhaseReport> = Vec::new();

    // Phase 1: closed-loop at increasing concurrency, roomy gate.
    {
        let handle = spawn_server(
            AdmissionConfig {
                max_inflight: 8,
                max_queue: 64,
                ..AdmissionConfig::default()
            },
            5_000,
        );
        let addr = handle.addr();
        let levels: &[usize] = if smoke { &[2] } else { &[2, 8, 32] };
        let per_client = if smoke { 4 } else { 20 };
        for &clients in levels {
            let tally = closed_loop(addr, clients, per_client);
            reports.push(report(format!("closed c={clients}"), tally));
        }
        handle.shutdown_and_join().expect("clean shutdown");
    }

    // Phase 2: open arrival at a sustainable and an aggressive rate.
    {
        let handle = spawn_server(
            AdmissionConfig {
                max_inflight: 8,
                max_queue: 64,
                ..AdmissionConfig::default()
            },
            5_000,
        );
        let addr = handle.addr();
        let rates: &[(u64, usize)] = if smoke {
            &[(50, 8)]
        } else {
            &[(25, 60), (100, 120)]
        };
        for &(interval_ms, count) in rates {
            let tally = open_arrival(addr, Duration::from_millis(interval_ms), count);
            let rate = 1_000 / interval_ms.max(1);
            reports.push(report(format!("open {rate}rps"), tally));
        }
        handle.shutdown_and_join().expect("clean shutdown");
    }

    // Phase 3: overload sweep — tiny gate, short deadline, 32 clients.
    // This is the shed-don't-collapse proof.
    let overload_deadline_ms: u64 = 300;
    let overload = {
        let handle = spawn_server(
            AdmissionConfig {
                max_inflight: 2,
                max_queue: 4,
                ..AdmissionConfig::default()
            },
            overload_deadline_ms,
        );
        let addr = handle.addr();
        let (clients, per_client) = if smoke { (8, 3) } else { (32, 8) };
        let tally = closed_loop(addr, clients, per_client);
        let stats = handle.admission_stats();
        println!(
            "    admission: admitted={} shed_queue_full={} shed_deadline={} quota={} disconnects={}",
            stats.admitted,
            stats.shed_queue_full,
            stats.shed_deadline,
            stats.rejected_quota,
            stats.cancelled_disconnects,
        );
        handle.shutdown_and_join().expect("clean shutdown");
        report(format!("overload c={clients} gate=2+4"), tally)
    };

    // Contracts.
    let total_5xx: usize =
        reports.iter().map(|r| r.tally.server_err).sum::<usize>() + overload.tally.server_err;
    let total_transport: usize =
        reports.iter().map(|r| r.tally.transport_err).sum::<usize>() + overload.tally.transport_err;
    let contracts = [
        Contract {
            name: "zero_5xx",
            ok: total_5xx == 0,
            detail: format!("{total_5xx} server errors across all phases"),
        },
        Contract {
            name: "zero_transport_errors",
            ok: total_transport == 0,
            detail: format!("{total_transport} transport errors across all phases"),
        },
        Contract {
            name: "overload_sheds",
            ok: !overload.tally.shed.is_empty(),
            detail: format!(
                "{} shed vs {} accepted past a 2-slot gate",
                overload.tally.shed.len(),
                overload.tally.ok.len()
            ),
        },
        Contract {
            name: "overload_still_serves",
            ok: !overload.tally.ok.is_empty(),
            detail: format!(
                "{} requests completed under overload",
                overload.tally.ok.len()
            ),
        },
        Contract {
            // Shedding must not queue: a rejection may wait at most the
            // admission window (bounded by the request deadline), never
            // multiples of it.
            name: "shed_is_fast",
            ok: overload.shed_p99 <= Duration::from_millis(2 * overload_deadline_ms),
            detail: format!(
                "shed p99 {:.1}ms vs {}ms deadline",
                ms(overload.shed_p99),
                overload_deadline_ms
            ),
        },
        Contract {
            // The accepted tail stays bounded by queue wait + budgeted
            // execution (+ generous scheduling slack for CI boxes) —
            // overload must not stretch accepted latency open-endedly.
            name: "accepted_p99_bounded",
            ok: overload.ok_p99 <= Duration::from_millis(6 * overload_deadline_ms),
            detail: format!(
                "accepted p99 {:.1}ms vs {}ms deadline",
                ms(overload.ok_p99),
                overload_deadline_ms
            ),
        },
    ];
    let mut pass = true;
    for contract in &contracts {
        pass &= contract.ok || smoke;
        let verdict = match (contract.ok, smoke) {
            (true, _) => "PASS",
            (false, true) => "WARN",
            (false, false) => "FAIL",
        };
        println!("  {verdict} {}: {}", contract.name, contract.detail);
    }

    if smoke {
        println!("  smoke mode: BENCH_pr7.json left untouched");
        return;
    }
    let mut phases: Vec<String> = Vec::new();
    for r in reports.iter().chain(std::iter::once(&overload)) {
        phases.push(format!(
            "    {{\"phase\": \"{}\", \"ok\": {}, \"degraded\": {}, \"shed\": {}, \"server_5xx\": {}, \"transport_err\": {}, \"ok_p50_ms\": {:.2}, \"ok_p99_ms\": {:.2}, \"ok_p999_ms\": {:.2}, \"shed_p99_ms\": {:.2}}}",
            r.phase,
            r.tally.ok.len(),
            r.tally.degraded,
            r.tally.shed.len(),
            r.tally.server_err,
            r.tally.transport_err,
            ms(r.ok_p50),
            ms(r.ok_p99),
            ms(r.ok_p999),
            ms(r.shed_p99),
        ));
    }
    let contract_rows: Vec<String> = contracts
        .iter()
        .map(|c| {
            format!(
                "    {{\"contract\": \"{}\", \"pass\": {}, \"detail\": \"{}\"}}",
                c.name, c.ok, c.detail
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"mode\": \"full\",\n  \"phases\": [\n{}\n  ],\n  \"contracts\": [\n{}\n  ]\n}}\n",
        phases.join(",\n"),
        contract_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json");
    match std::fs::write(out, json) {
        Ok(()) => println!("  wrote {out}"),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
    if !pass {
        std::process::exit(1);
    }
}
