//! Paired measurement of epoch-ledger operation costs.
//!
//! Same methodology as `planner_gain` and `parallel_gain`: wall-clock
//! drift on a shared machine dwarfs the effects being measured, so each
//! comparison tightly interleaves the two arms (drift lands on both
//! alike) and reports the median of per-round ratios.
//!
//! Three workloads over a 200-recipe synthetic `EngineBase`:
//!  1. `commit_with` (delta closure + layer freeze + chained hash)
//!     against a throwaway counterfactual explanation of the same kind
//!     of hypothesis delta — the freeze must not dominate the closure;
//!  2. `branch_create` + `branch_apply` against the same throwaway
//!     counterfactual — forking must not copy the base closure, so a
//!     branch commit should cost about one ordinary commit;
//!  3. a join query as of epoch 0 against the same query at a head
//!     sitting on 32 committed layers — the layer stack must not tax
//!     time travel, and per-epoch plan-cache entries serve both.
//!
//! Run with `cargo run --release -p feo-bench --bin ledger_ops`;
//! `--smoke` shrinks the rounds for CI. Results are also written
//! machine-readably to `BENCH_pr6.json` at the repository root.

use std::time::{Duration, Instant};

use feo_bench::synthetic_fixture;
use feo_core::ecosystem::apply_hypothesis;
use feo_core::{EngineBase, EpochId, ExplainOptions, Hypothesis, Question};
use feo_foodkg::UserProfile;
use feo_ontology::ns::sparql_prologue;

struct Params {
    warmup: usize,
    repeats: usize,
    pairs: usize,
}

fn median(mut ratios: Vec<f64>) -> f64 {
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ratios[ratios.len() / 2]
}

/// Median over `repeats` rounds of the interleaved-pair total-time
/// ratio `run(measured) / run(baseline)`.
fn paired_ratio(params: &Params, mut run: impl FnMut(bool) -> Duration) -> f64 {
    let mut ratios = Vec::with_capacity(params.repeats);
    for repeat in 0..params.repeats {
        let mut measured = Duration::ZERO;
        let mut baseline = Duration::ZERO;
        for pair in 0..params.pairs {
            // Alternate which arm goes first so scheduler noise and
            // frequency scaling land evenly on both.
            if (pair + repeat) % 2 == 0 {
                measured += run(true);
                baseline += run(false);
            } else {
                baseline += run(false);
                measured += run(true);
            }
        }
        ratios.push(measured.as_secs_f64() / baseline.as_secs_f64());
    }
    median(ratios)
}

fn fixture() -> (EngineBase, UserProfile) {
    let (kg, user, ctx) = synthetic_fixture(200);
    let base = EngineBase::new(kg, user.clone(), ctx).expect("synthetic world is consistent");
    (base, user)
}

/// A fresh hypothesis per call so every delta is non-empty: repeating
/// one hypothesis would make later deltas no-ops and measure nothing.
fn fresh_hypothesis(counter: &mut usize) -> Hypothesis {
    *counter += 1;
    if (*counter).is_multiple_of(2) {
        Hypothesis::FollowedDiet(format!("BenchDiet{counter}"))
    } else {
        Hypothesis::AllergicTo(format!("BenchIngredient{counter}"))
    }
}

/// One committed epoch: scoped overlay write, delta closure, layer
/// freeze, chained hash.
fn one_commit(base: &mut EngineBase, user: &UserProfile, counter: &mut usize) -> Duration {
    let hypothesis = fresh_hypothesis(counter);
    let started = Instant::now();
    std::hint::black_box(base.commit_with("bench", |overlay| {
        apply_hypothesis(&hypothesis, user, overlay);
    }));
    started.elapsed()
}

/// One throwaway counterfactual: the same kind of hypothesis delta is
/// closed in a session overlay, queried, and dropped — the pre-ledger
/// way of exploring a what-if.
fn one_throwaway(base: &EngineBase, counter: &mut usize) -> Duration {
    let hypothesis = fresh_hypothesis(counter);
    let question = Question::WhatIf { hypothesis };
    let started = Instant::now();
    std::hint::black_box(
        base.explain_as_of(base.head(), &question, &ExplainOptions::default())
            .expect("counterfactual explains"),
    );
    started.elapsed()
}

/// One branch world: fork at head, apply a hypothesis as the branch's
/// own commit. Must not copy the base closure.
fn one_branch(base: &mut EngineBase, counter: &mut usize, names: &mut usize) -> Duration {
    let hypothesis = fresh_hypothesis(counter);
    *names += 1;
    let name = format!("bench-{names}");
    let started = Instant::now();
    let head = base.head();
    base.branch_create(&name, head).expect("fresh name");
    std::hint::black_box(
        base.branch_apply(&name, &hypothesis)
            .expect("branch applies"),
    );
    started.elapsed()
}

fn one_as_of_query(base: &EngineBase, epoch: EpochId, q: &str) -> Duration {
    let started = Instant::now();
    std::hint::black_box(base.query_as_of(epoch, q).expect("query evaluates"));
    started.elapsed()
}

struct Row {
    workload: &'static str,
    ratio: f64,
    contract: f64,
}

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let (ops, queries) = if smoke {
        (
            Params {
                warmup: 1,
                repeats: 2,
                pairs: 2,
            },
            Params {
                warmup: 1,
                repeats: 2,
                pairs: 4,
            },
        )
    } else {
        (
            Params {
                warmup: 2,
                repeats: 5,
                pairs: 10,
            },
            Params {
                warmup: 3,
                repeats: 5,
                pairs: 20,
            },
        )
    };
    println!(
        "ledger ops, paired-interleaved medians{}:",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut counter = 0usize;
    let mut names = 0usize;

    // 1. Commit vs throwaway counterfactual. The counterfactual does
    // the same delta closure plus a query; the commit does the delta
    // closure plus the layer freeze. Freezing must stay in the same
    // ballpark.
    {
        let (mut base, user) = fixture();
        for _ in 0..ops.warmup {
            one_commit(&mut base, &user, &mut counter);
            one_throwaway(&base, &mut counter);
        }
        let ratio = paired_ratio(&ops, |measured| {
            if measured {
                one_commit(&mut base, &user, &mut counter)
            } else {
                one_throwaway(&base, &mut counter)
            }
        });
        println!("  commit_with / throwaway counterfactual = {ratio:.4}");
        rows.push(Row {
            workload: "commit_vs_throwaway",
            ratio,
            contract: 1.5,
        });
    }

    // 2. Branch fork+apply vs throwaway counterfactual. If forking
    // copied the base closure this ratio would explode; sharing the
    // parent chain keeps it at about one commit.
    {
        let (mut base, _) = fixture();
        for _ in 0..ops.warmup {
            one_branch(&mut base, &mut counter, &mut names);
            one_throwaway(&base, &mut counter);
        }
        let ratio = paired_ratio(&ops, |measured| {
            if measured {
                one_branch(&mut base, &mut counter, &mut names)
            } else {
                one_throwaway(&base, &mut counter)
            }
        });
        println!("  branch fork+apply / throwaway counterfactual = {ratio:.4}");
        rows.push(Row {
            workload: "branch_vs_throwaway",
            ratio,
            contract: 1.5,
        });
    }

    // 3. Time travel under a stack of layers: the same join query as
    // of epoch 0 (no layers in view) vs at a head carrying 32 layers.
    // Old epochs keep their plan-cache entries, so both arms run
    // prepared plans; the stack must not tax either direction much.
    {
        let (mut base, user) = fixture();
        for _ in 0..32 {
            one_commit(&mut base, &user, &mut counter);
        }
        let head = base.head();
        let q = format!(
            "{}SELECT ?r ?i ?n WHERE {{\n\
               ?r a food:Recipe .\n\
               ?r food:hasIngredient ?i .\n\
               ?i food:hasNutrient ?n .\n\
             }}",
            sparql_prologue()
        );
        for _ in 0..queries.warmup {
            one_as_of_query(&base, EpochId(0), &q);
            one_as_of_query(&base, head, &q);
        }
        let ratio = paired_ratio(&queries, |measured| {
            if measured {
                one_as_of_query(&base, head, &q)
            } else {
                one_as_of_query(&base, EpochId(0), &q)
            }
        });
        println!("  join query at head (+32 layers) / at epoch 0 = {ratio:.4}");
        rows.push(Row {
            workload: "as_of_head_vs_epoch0",
            ratio,
            contract: 2.0,
        });
    }

    // Acceptance contracts. Smoke rounds are too short for the ratios
    // to be meaningful, so a missed contract is a WARN there (and never
    // gates), a FAIL only on full runs.
    let mut pass = true;
    for row in &rows {
        let ok = row.ratio <= row.contract;
        pass &= ok || smoke;
        let verdict = match (ok, smoke) {
            (true, _) => "PASS",
            (false, true) => "WARN",
            (false, false) => "FAIL",
        };
        println!(
            "  {verdict} {}: {:.4} (contract <= {:.2})",
            row.workload, row.ratio, row.contract
        );
    }

    // Machine-readable artifact at the repository root. Smoke runs
    // (CI) skip the write so they never clobber recorded full numbers.
    if smoke {
        println!("  smoke mode: BENCH_pr6.json left untouched");
        return;
    }
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"ratio\": {:.4}, \"contract_max\": {:.2}}}",
                r.workload, r.ratio, r.contract
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ledger_ops\",\n  \"mode\": \"full\",\n  \"baseline\": \"throwaway counterfactual / epoch-0 query\",\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");
    match std::fs::write(out, json) {
        Ok(()) => println!("  wrote {out}"),
        Err(e) => eprintln!("  could not write {out}: {e}"),
    }
    if !pass {
        std::process::exit(1);
    }
}
