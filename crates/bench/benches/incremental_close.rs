//! Per-question close latency: full re-materialization of the extended
//! graph (the pre-overlay engine behaviour) vs. the semi-naïve
//! incremental close seeded from a session overlay's delta. The
//! snapshot + overlay architecture rests on the delta path being far
//! cheaper, since the base closure is amortized across every question.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use feo_bench::synthetic_fixture;
use feo_core::ecosystem::{assemble, assert_question};
use feo_core::Question;
use feo_owl::{MaterializeOptions, Reasoner};
use feo_rdf::Overlay;

fn bench_per_question_close(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_close");
    group.sample_size(10);
    for recipes in [200usize, 1000] {
        let (kg, user, ctx) = synthetic_fixture(recipes);
        let mut base = assemble(&kg, &user, &ctx);
        let reasoner = Reasoner::new();
        let rules = reasoner.compile(&mut base);
        reasoner
            .materialize(&mut base, &MaterializeOptions::with_rules(&rules))
            .expect("materialize");
        let question = Question::WhyEat {
            food: kg.recipes[recipes / 2].id.clone(),
        };

        group.bench_with_input(
            BenchmarkId::new("full_rematerialize", recipes),
            &question,
            |b, q| {
                b.iter(|| {
                    let mut world = base.clone();
                    assert_question(q, &mut world);
                    black_box(
                        reasoner.materialize(&mut world, &MaterializeOptions::with_rules(&rules)),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("overlay_delta", recipes),
            &question,
            |b, q| {
                b.iter(|| {
                    let mut overlay = Overlay::new(&base);
                    assert_question(q, &mut overlay);
                    black_box(
                        reasoner.materialize_delta(
                            &mut overlay,
                            &MaterializeOptions::with_rules(&rules),
                        ),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_per_question_close);
criterion_main!(benches);
