//! Reasoner materialization time as the synthetic FoodKG grows — the
//! systems-level scaling characterization of the Pellet substitute.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use feo_bench::synthetic_fixture;
use feo_core::ecosystem::assemble;
use feo_owl::Reasoner;

fn bench_materialization_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("reasoner_scaling");
    group.sample_size(10);
    for recipes in [50usize, 100, 200, 400] {
        let (kg, user, ctx) = synthetic_fixture(recipes);
        let base = assemble(&kg, &user, &ctx);
        group.throughput(Throughput::Elements(base.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(recipes), &base, |b, base| {
            b.iter(|| {
                let mut g = base.clone();
                black_box(Reasoner::new().materialize(&mut g, &Default::default()))
            })
        });
    }
    group.finish();
}

fn bench_rematerialization_idempotent(c: &mut Criterion) {
    // Re-running on an already-materialized graph: the engine does this
    // after each question assertion, so its cost matters.
    let mut group = c.benchmark_group("reasoner_rematerialize");
    group.sample_size(10);
    let (kg, user, ctx) = synthetic_fixture(200);
    let mut g = assemble(&kg, &user, &ctx);
    Reasoner::new()
        .materialize(&mut g, &Default::default())
        .expect("materialize");
    group.bench_function("noop_fixpoint_200_recipes", |b| {
        b.iter(|| black_box(Reasoner::new().materialize(&mut g, &Default::default())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_materialization_scaling,
    bench_rematerialization_idempotent
);
criterion_main!(benches);
