//! Governor overhead on the happy path: the same CQ1–CQ3 explanations
//! with no guard, with an unlimited guard, and with a generous (never
//! tripping) budget. The workspace's contract is < 2% overhead — the
//! guard amortizes wall-clock reads over `TIME_CHECK_INTERVAL` ticks and
//! unlimited guards short-circuit every check, so the three bars should
//! be indistinguishable.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use feo_core::{scenario_a, scenario_b, scenario_c, EngineBase, ExplainOptions};
use feo_rdf::governor::Budget;

fn bench_explain_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("governor_overhead");
    group.sample_size(20);
    for scenario in [scenario_a(), scenario_b(), scenario_c()] {
        let label = scenario.name.split(' ').next().unwrap_or("cq").to_string();
        let base = EngineBase::new(
            scenario.kg(),
            scenario.user.clone(),
            scenario.context.clone(),
        )
        .expect("consistent");
        let question = scenario.question.clone();

        group.bench_function(format!("{label}/unguarded"), |b| {
            b.iter(|| {
                black_box(
                    base.explain(&question, &ExplainOptions::default())
                        .expect("explained"),
                )
            })
        });

        let unlimited = Budget::new();
        group.bench_function(format!("{label}/unlimited_guard"), |b| {
            b.iter(|| {
                let guard = unlimited.start();
                black_box(
                    base.explain(&question, &ExplainOptions::guarded(&guard))
                        .expect("explained"),
                )
            })
        });

        // Generous real limits: the budget machinery runs (counters,
        // amortized clock) but never trips.
        let generous = Budget::new()
            .with_deadline(Duration::from_secs(600))
            .with_max_inferred(100_000_000)
            .with_max_rounds(1_000_000)
            .with_max_solutions(100_000_000);
        group.bench_function(format!("{label}/generous_budget"), |b| {
            b.iter(|| {
                let guard = generous.start();
                black_box(
                    base.explain(&question, &ExplainOptions::guarded(&guard))
                        .expect("explained"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explain_overhead);
criterion_main!(benches);
