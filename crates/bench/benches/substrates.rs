//! Micro-benchmarks for the substrates built for this reproduction:
//! Turtle parsing, graph insertion/pattern matching, the recommender,
//! and the regex-lite engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use feo_bench::{autumn_ctx, rich_user, synthetic_fixture};
use feo_foodkg::{curated, kg_to_rdf};
use feo_rdf::turtle::{parse_turtle, parse_turtle_into, write_turtle};
use feo_rdf::Graph;
use feo_recommender::{GroupCoach, HealthCoach, PopularityRecommender, Recommender};
use feo_sparql::regexlite::Regex;

fn turtle_fixture() -> String {
    let kg = curated();
    let mut g = Graph::new();
    kg_to_rdf(&kg, &mut g);
    write_turtle(&g, feo_ontology::ns::PREFIXES)
}

fn bench_turtle(c: &mut Criterion) {
    let doc = turtle_fixture();
    let triples = parse_turtle(&doc, &Default::default())
        .expect("parses")
        .len();
    let mut group = c.benchmark_group("turtle");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_function(format!("parse_{triples}_triples"), |b| {
        b.iter(|| black_box(parse_turtle(&doc, &Default::default()).expect("parses")))
    });
    group.bench_function("parse_into_graph", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            parse_turtle_into(&doc, &mut g, &Default::default()).expect("parses");
            black_box(g)
        })
    });
    group.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    let (kg, ..) = synthetic_fixture(200);
    let mut g = Graph::new();
    kg_to_rdf(&kg, &mut g);
    let mut group = c.benchmark_group("graph");
    group.throughput(Throughput::Elements(g.len() as u64));

    group.bench_function("full_scan", |b| b.iter(|| black_box(g.iter_ids().count())));
    let has_ing = g
        .lookup_iri(feo_ontology::ns::food::HAS_INGREDIENT)
        .expect("present");
    group.bench_function("predicate_scan", |b| {
        b.iter(|| black_box(g.match_pattern(None, Some(has_ing), None).len()))
    });
    group.bench_function("clone_graph", |b| b.iter(|| black_box(g.clone())));
    group.finish();
}

fn bench_recommender(c: &mut Criterion) {
    let kg = curated();
    let user = rich_user();
    let ctx = autumn_ctx();
    let coach = HealthCoach::new(&kg);
    let population = feo_foodkg::random_profiles(&kg, 200, 11);
    let baseline = PopularityRecommender::from_population(&kg, &population);

    let mut group = c.benchmark_group("recommender");
    group.bench_function("health_coach_top10", |b| {
        b.iter(|| black_box(coach.recommend(&user, &ctx, 10)))
    });
    group.bench_function("popularity_baseline_top10", |b| {
        b.iter(|| black_box(baseline.recommend(&user, &ctx, 10)))
    });
    let family = feo_foodkg::random_profiles(&kg, 4, 23);
    let group_coach = GroupCoach::new(&kg);
    group.bench_function("group_coach_4_members_top10", |b| {
        b.iter(|| black_box(group_coach.recommend(&family, &ctx, 10)))
    });
    group.finish();
}

fn bench_regexlite(c: &mut Criterion) {
    let mut group = c.benchmark_group("regexlite");
    let re = Regex::new("^Cauliflower.*Curry$", "").expect("compiles");
    group.bench_function("anchored_match", |b| {
        b.iter(|| black_box(re.is_match("CauliflowerPotatoCurry")))
    });
    let re = Regex::new("(soup|salad|bowl)", "i").expect("compiles");
    let haystack = "KaleQuinoaBowl ButternutSquashSoup GrilledChickenSalad".repeat(10);
    group.bench_function("alternation_scan", |b| {
        b.iter(|| black_box(re.is_match(&haystack)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_turtle,
    bench_graph_ops,
    bench_recommender,
    bench_regexlite
);
criterion_main!(benches);
