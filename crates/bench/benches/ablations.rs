//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - SPARQL planner: cost-based vs. greedy reordering vs. author order;
//! - reasoner schema-closure materialization on vs. off;
//! - explanation-pipeline cost split: assemble vs. materialize vs. query.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use feo_bench::synthetic_fixture;
use feo_core::ecosystem::{assemble, assert_question};
use feo_core::{queries, Question};
use feo_ontology::ns::sparql_prologue;
use feo_owl::{Reasoner, ReasonerOptions};
use feo_sparql::{query, Planner, QueryOptions};

fn bench_bgp_reordering(c: &mut Criterion) {
    let (kg, user, ctx) = synthetic_fixture(200);
    let mut g = assemble(&kg, &user, &ctx);
    Reasoner::new()
        .materialize(&mut g, &Default::default())
        .expect("materialize");

    // Written so author order hits a cartesian product: the first two
    // patterns share no variable, and only the third connects them. Both
    // planners pick the connecting pattern second instead.
    let q = format!(
        "{}SELECT ?r ?i ?s WHERE {{\n\
           ?r food:calories ?c .\n\
           ?i food:availableInSeason ?s .\n\
           ?r food:hasIngredient ?i .\n\
           FILTER (?c > 700) .\n\
         }}",
        sparql_prologue()
    );

    let mut group = c.benchmark_group("ablation_bgp_reorder");
    group.sample_size(20);
    for (label, planner) in [
        ("cost_based", Planner::CostBased),
        ("greedy_reorder", Planner::Greedy),
        ("author_order", Planner::Off),
    ] {
        let opts = QueryOptions {
            planner,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| black_box(query(&g, &q, &opts).expect("runs")))
        });
    }
    group.finish();
}

fn bench_schema_closure(c: &mut Criterion) {
    let (kg, user, ctx) = synthetic_fixture(200);
    let base = assemble(&kg, &user, &ctx);
    let mut group = c.benchmark_group("ablation_schema_closure");
    group.sample_size(10);
    for (label, closure) in [("with_closure", true), ("without_closure", false)] {
        let opts = ReasonerOptions {
            materialize_schema_closure: closure,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut g = base.clone();
                black_box(
                    Reasoner::with_options(opts.clone()).materialize(&mut g, &Default::default()),
                )
            })
        });
    }
    group.finish();
}

fn bench_pipeline_phases(c: &mut Criterion) {
    let (kg, user, ctx) = synthetic_fixture(200);
    let mut group = c.benchmark_group("ablation_pipeline_phases");
    group.sample_size(10);

    group.bench_function("phase1_assemble", |b| {
        b.iter(|| black_box(assemble(&kg, &user, &ctx)))
    });

    let assembled = assemble(&kg, &user, &ctx);
    group.bench_function("phase2_materialize", |b| {
        b.iter(|| {
            let mut g = assembled.clone();
            black_box(Reasoner::new().materialize(&mut g, &Default::default()))
        })
    });

    let question = Question::WhyEat {
        food: kg.recipes[1].id.clone(),
    };
    let mut materialized = assembled.clone();
    assert_question(&question, &mut materialized);
    Reasoner::new()
        .materialize(&mut materialized, &Default::default())
        .expect("materialize");
    let q = queries::contextual_query(&question);
    group.bench_function("phase3_query", |b| {
        b.iter(|| black_box(query(&materialized, &q, &QueryOptions::default()).expect("runs")))
    });
    group.finish();
}

fn bench_derivation_tracking(c: &mut Criterion) {
    // The cost of Pellet-style proof recording.
    let (kg, user, ctx) = synthetic_fixture(200);
    let base = assemble(&kg, &user, &ctx);
    let mut group = c.benchmark_group("ablation_derivation_tracking");
    group.sample_size(10);
    for (label, track) in [("untracked", false), ("tracked", true)] {
        let opts = ReasonerOptions {
            track_derivations: track,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut g = base.clone();
                black_box(
                    Reasoner::with_options(opts.clone()).materialize(&mut g, &Default::default()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bgp_reordering,
    bench_schema_closure,
    bench_pipeline_phases,
    bench_derivation_tracking
);
criterion_main!(benches);
