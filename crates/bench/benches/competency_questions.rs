//! Benchmarks for the three paper competency questions (Listings 1–3):
//! end-to-end explanation latency and the SPARQL-query-only latency over
//! a pre-materialized graph.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use feo_core::ecosystem::{assemble, assert_question};
use feo_core::{queries, scenario_a, scenario_b, scenario_c};
use feo_owl::Reasoner;
use feo_sparql::query;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq_end_to_end");
    group.sample_size(10);
    for scenario in [scenario_a(), scenario_b(), scenario_c()] {
        let label = scenario.name.split(' ').next().unwrap_or("cq").to_string();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut engine = scenario.engine().expect("consistent");
                black_box(engine.explain(&scenario.question).expect("explained"))
            })
        });
    }
    group.finish();
}

fn bench_query_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq_query_only");
    // Pre-materialize one graph per scenario with the question asserted.
    let prepared: Vec<(String, feo_rdf::Graph, String)> =
        [scenario_a(), scenario_b(), scenario_c()]
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let mut g = assemble(&s.kg(), &s.user, &s.context);
                assert_question(&s.question, &mut g);
                Reasoner::new()
                    .materialize(&mut g, &Default::default())
                    .expect("materialize");
                let q = match i {
                    0 => queries::contextual_query(&s.question),
                    1 => queries::contrastive_query(&s.question),
                    _ => queries::counterfactual_query(feo_ontology::ns::feo::PREGNANCY_STATE),
                };
                (format!("CQ{}", i + 1), g, q)
            })
            .collect();
    for (label, g, q) in prepared {
        group.bench_function(label, |b| {
            b.iter(|| black_box(query(&g, &q, &Default::default()).expect("query runs")))
        });
    }
    group.finish();
}

fn bench_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("cq_materialization");
    group.sample_size(10);
    let s = scenario_b();
    group.bench_function("assemble_and_materialize_curated", |b| {
        b.iter(|| {
            let mut g = assemble(&s.kg(), &s.user, &s.context);
            black_box(Reasoner::new().materialize(&mut g, &Default::default()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_query_only,
    bench_materialization
);
criterion_main!(benches);
