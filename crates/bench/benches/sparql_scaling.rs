//! SPARQL query latency as the knowledge graph grows: the contextual
//! competency query, a subclass property-path query, and an aggregate
//! query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use feo_bench::synthetic_fixture;
use feo_core::ecosystem::{assemble, assert_question};
use feo_core::{queries, Question};
use feo_ontology::ns::sparql_prologue;
use feo_owl::Reasoner;
use feo_sparql::query;

fn prepared(recipes: usize) -> (feo_rdf::Graph, String) {
    let (kg, user, ctx) = synthetic_fixture(recipes);
    let mut g = assemble(&kg, &user, &ctx);
    let question = Question::WhyEat {
        food: kg.recipes[1].id.clone(),
    };
    assert_question(&question, &mut g);
    Reasoner::new()
        .materialize(&mut g, &Default::default())
        .expect("materialize");
    (g, queries::contextual_query(&question))
}

fn bench_cq1_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparql_cq1_scaling");
    for recipes in [50usize, 100, 200, 400] {
        let (g, q) = prepared(recipes);
        group.bench_with_input(BenchmarkId::from_parameter(recipes), &recipes, |b, _| {
            b.iter(|| black_box(query(&g, &q, &Default::default()).expect("runs")))
        });
    }
    group.finish();
}

fn bench_path_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparql_operators");
    let (g, _) = prepared(200);
    let path_q = format!(
        "{}SELECT ?c WHERE {{ ?c (rdfs:subClassOf+) feo:Characteristic }}",
        sparql_prologue()
    );
    group.bench_function("subclass_path_plus", |b| {
        b.iter(|| black_box(query(&g, &path_q, &Default::default()).expect("runs")))
    });

    let agg_q = format!(
        "{}SELECT ?r (COUNT(?i) AS ?n) WHERE {{ ?r food:hasIngredient ?i }} \
         GROUP BY ?r ORDER BY DESC(?n) LIMIT 10",
        sparql_prologue()
    );
    group.bench_function("group_by_count", |b| {
        b.iter(|| black_box(query(&g, &agg_q, &Default::default()).expect("runs")))
    });

    let filter_q = format!(
        "{}SELECT ?r WHERE {{ ?r food:calories ?c . FILTER (?c > 400) \
         FILTER NOT EXISTS {{ ?r food:hasIngredient ?i . ?i food:belongsToCategory feo:Meat }} }}",
        sparql_prologue()
    );
    group.bench_function("filter_not_exists", |b| {
        b.iter(|| black_box(query(&g, &filter_q, &Default::default()).expect("runs")))
    });
    group.finish();
}

criterion_group!(benches, bench_cq1_scaling, bench_path_query);
criterion_main!(benches);
