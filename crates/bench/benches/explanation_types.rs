//! Per-explanation-type latency over the curated KG — Table I answered
//! live, one bench per row.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use feo_bench::full_engine;
use feo_core::{Hypothesis, Question};

fn bench_each_type(c: &mut Criterion) {
    let mut group = c.benchmark_group("explanation_types");
    group.sample_size(10);
    let questions: Vec<(&str, Question)> = vec![
        (
            "contextual",
            Question::WhyEat {
                food: "CauliflowerPotatoCurry".into(),
            },
        ),
        (
            "contrastive",
            Question::WhyEatOver {
                preferred: "ButternutSquashSoup".into(),
                alternative: "BroccoliCheddarSoup".into(),
            },
        ),
        (
            "counterfactual",
            Question::WhatIf {
                hypothesis: Hypothesis::Pregnant,
            },
        ),
        (
            "case_based",
            Question::WhatOtherUsers {
                food: "LentilSoup".into(),
            },
        ),
        (
            "everyday",
            Question::WhyGenerally {
                food: "CauliflowerPotatoCurry".into(),
            },
        ),
        (
            "scientific",
            Question::WhatLiterature {
                food: "SpinachFrittata".into(),
            },
        ),
        (
            "simulation",
            Question::WhatIfEatenDaily {
                food: "MargheritaPizza".into(),
            },
        ),
        (
            "statistical",
            Question::WhatEvidenceForDiet {
                diet: "Vegetarian".into(),
            },
        ),
        (
            "trace_based",
            Question::WhatSteps {
                food: "ButternutSquashSoup".into(),
            },
        ),
    ];
    // One shared engine: explain() is idempotent per question, and this
    // measures the steady-state cost an application would see.
    let mut engine = full_engine();
    for (label, q) in questions {
        group.bench_function(label, |b| {
            b.iter(|| black_box(engine.explain(&q).expect("explained")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_each_type);
criterion_main!(benches);
