//! Admission control: the serving-side extension of the execution
//! governor.
//!
//! The governor (`feo_rdf::governor`) bounds *one* request's work; the
//! [`Admission`] gate bounds *how many* requests get to do work at
//! once, and sheds the rest early instead of letting them queue into
//! collapse:
//!
//! - a global in-flight cap sized to the worker budget,
//! - a bounded wait queue with **deadline-based shedding** — a request
//!   that would (predictively, via a service-time EWMA) or actually
//!   wait past its deadline is rejected with a `Retry-After` hint
//!   rather than parked,
//! - per-tenant token buckets so one chatty client cannot starve the
//!   rest.
//!
//! All waiting is a single `Mutex` + `Condvar`; counters the `/stats`
//! endpoint exposes are lock-free atomics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tuning knobs for the admission gate.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Requests executing concurrently; beyond this they queue.
    pub max_inflight: usize,
    /// Requests allowed to wait; beyond this they are shed immediately.
    pub max_queue: usize,
    /// Per-tenant sustained request rate in requests/second.
    /// `0.0` disables tenant quotas.
    pub tenant_rate: f64,
    /// Per-tenant burst allowance (token-bucket capacity).
    pub tenant_burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 8,
            max_queue: 32,
            tenant_rate: 0.0,
            tenant_burst: 8.0,
        }
    }
}

/// Why a request was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The wait queue is at capacity.
    QueueFull { retry_after_secs: u64 },
    /// Queueing would (or did) run past the request's deadline.
    Deadline { retry_after_secs: u64 },
    /// The tenant's token bucket is empty.
    OverQuota { retry_after_secs: u64 },
    /// The server is draining for shutdown.
    Draining,
}

impl Shed {
    /// The `Retry-After` value to send, in seconds.
    pub fn retry_after_secs(&self) -> u64 {
        match self {
            Shed::QueueFull { retry_after_secs }
            | Shed::Deadline { retry_after_secs }
            | Shed::OverQuota { retry_after_secs } => (*retry_after_secs).max(1),
            Shed::Draining => 1,
        }
    }

    /// Stable machine-readable reason for response bodies.
    pub fn reason(&self) -> &'static str {
        match self {
            Shed::QueueFull { .. } => "queue_full",
            Shed::Deadline { .. } => "deadline_shed",
            Shed::OverQuota { .. } => "over_quota",
            Shed::Draining => "draining",
        }
    }
}

/// A per-tenant token bucket.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// State guarded by the admission mutex.
#[derive(Debug)]
struct Gate {
    inflight: usize,
    queued: usize,
    tenants: HashMap<String, Bucket>,
    /// Per-tenant admitted/shed tallies, kept even when quotas are
    /// disabled (the bucket map only exists with `tenant_rate > 0`).
    counters: HashMap<String, TenantStats>,
}

/// Per-tenant admission counters served by `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests from this tenant that got an execution slot.
    pub admitted: u64,
    /// Requests turned away, for any reason (queue full, deadline,
    /// quota, draining).
    pub shed: u64,
}

/// Counter snapshot served by `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    pub admitted: u64,
    pub completed: u64,
    pub shed_queue_full: u64,
    pub shed_deadline: u64,
    pub rejected_quota: u64,
    pub cancelled_disconnects: u64,
    pub inflight: usize,
    pub queued: usize,
    /// EWMA of observed service time, microseconds (0 until the first
    /// request completes).
    pub ewma_service_micros: u64,
}

impl Gate {
    fn tally_admitted(&mut self, tenant: &str) {
        self.counters
            .entry(tenant.to_string())
            .or_default()
            .admitted += 1;
    }

    fn tally_shed(&mut self, tenant: &str) {
        self.counters.entry(tenant.to_string()).or_default().shed += 1;
    }
}

/// The admission gate shared by every connection thread.
pub struct Admission {
    cfg: AdmissionConfig,
    gate: Mutex<Gate>,
    freed: Condvar,
    draining: AtomicBool,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    rejected_quota: AtomicU64,
    cancelled_disconnects: AtomicU64,
    /// EWMA of service time in microseconds; updated on each release.
    ewma_service_micros: AtomicU64,
}

/// Smoothing factor for the service-time EWMA (new sample weight 1/8).
const EWMA_SHIFT: u32 = 3;

impl Admission {
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            gate: Mutex::new(Gate {
                inflight: 0,
                queued: 0,
                tenants: HashMap::new(),
                counters: HashMap::new(),
            }),
            freed: Condvar::new(),
            draining: AtomicBool::new(false),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            cancelled_disconnects: AtomicU64::new(0),
            ewma_service_micros: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Gate> {
        self.gate.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to admit one request for `tenant`, willing to wait in
    /// the queue until `deadline`. Blocks at most until `deadline`.
    ///
    /// The tenant's token is consumed whether or not the request is
    /// later shed — quota measures offered load, not completed work.
    pub fn admit(&self, tenant: &str, deadline: Instant) -> Result<Permit<'_>, Shed> {
        if self.is_draining() {
            self.lock().tally_shed(tenant);
            return Err(Shed::Draining);
        }
        let mut gate = self.lock();
        if self.cfg.tenant_rate > 0.0 && !self.take_token(&mut gate, tenant) {
            self.rejected_quota.fetch_add(1, Ordering::Relaxed);
            gate.tally_shed(tenant);
            let wait = (1.0 / self.cfg.tenant_rate).ceil() as u64;
            return Err(Shed::OverQuota {
                retry_after_secs: wait.max(1),
            });
        }
        if gate.inflight < self.cfg.max_inflight {
            gate.inflight += 1;
            gate.tally_admitted(tenant);
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(self.permit());
        }
        if gate.queued >= self.cfg.max_queue {
            self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            gate.tally_shed(tenant);
            return Err(Shed::QueueFull {
                retry_after_secs: self.estimated_drain_secs(gate.queued),
            });
        }
        // Predictive shed: if the queue ahead of us is already longer
        // than the deadline can absorb (per the service-time EWMA),
        // reject now instead of parking a doomed request.
        let now = Instant::now();
        let remaining = deadline.saturating_duration_since(now);
        if let Some(expected_wait) = self.estimated_wait(gate.queued) {
            if expected_wait > remaining {
                self.shed_deadline.fetch_add(1, Ordering::Relaxed);
                gate.tally_shed(tenant);
                return Err(Shed::Deadline {
                    retry_after_secs: self.estimated_drain_secs(gate.queued),
                });
            }
        }
        gate.queued += 1;
        loop {
            let now = Instant::now();
            if now >= deadline {
                gate.queued -= 1;
                self.shed_deadline.fetch_add(1, Ordering::Relaxed);
                gate.tally_shed(tenant);
                let retry = self.estimated_drain_secs(gate.queued);
                return Err(Shed::Deadline {
                    retry_after_secs: retry,
                });
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(gate, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            gate = guard;
            if self.is_draining() {
                gate.queued -= 1;
                gate.tally_shed(tenant);
                return Err(Shed::Draining);
            }
            if gate.inflight < self.cfg.max_inflight {
                gate.queued -= 1;
                gate.inflight += 1;
                gate.tally_admitted(tenant);
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(self.permit());
            }
        }
    }

    fn permit(&self) -> Permit<'_> {
        Permit {
            admission: self,
            started: Instant::now(),
        }
    }

    /// Refills and debits the tenant's bucket; true when a token was
    /// available.
    fn take_token(&self, gate: &mut Gate, tenant: &str) -> bool {
        let now = Instant::now();
        let burst = self.cfg.tenant_burst.max(1.0);
        let bucket = gate
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Bucket {
                tokens: burst,
                refilled: now,
            });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.cfg.tenant_rate).min(burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Expected queue wait for a request entering behind `queued`
    /// others, from the service-time EWMA. `None` before any sample.
    fn estimated_wait(&self, queued: usize) -> Option<Duration> {
        let ewma = self.ewma_service_micros.load(Ordering::Relaxed);
        if ewma == 0 {
            return None;
        }
        let slots = self.cfg.max_inflight.max(1) as u64;
        Some(Duration::from_micros(ewma * (queued as u64 + 1) / slots))
    }

    /// `Retry-After` hint: when the backlog should have drained.
    fn estimated_drain_secs(&self, queued: usize) -> u64 {
        self.estimated_wait(queued)
            .map(|d| d.as_secs_f64().ceil() as u64)
            .unwrap_or(1)
            .max(1)
    }

    fn release(&self, started: Instant) {
        let service = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        // ewma += (sample - ewma) / 2^EWMA_SHIFT, seeded by the first
        // sample. A racy read-modify-write is fine: this feeds a hint,
        // not an invariant.
        let prev = self.ewma_service_micros.load(Ordering::Relaxed);
        let next = if prev == 0 {
            service.max(1)
        } else {
            let delta = (service as i64 - prev as i64) >> EWMA_SHIFT;
            (prev as i64 + delta).max(1) as u64
        };
        self.ewma_service_micros.store(next, Ordering::Relaxed);
        let mut gate = self.lock();
        gate.inflight = gate.inflight.saturating_sub(1);
        drop(gate);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.freed.notify_all();
    }

    /// Flips the gate into drain mode: every new or queued request is
    /// rejected with [`Shed::Draining`] from here on.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.freed.notify_all();
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Blocks until no request is in flight or `deadline` passes;
    /// true when the gate went idle in time.
    pub fn wait_idle(&self, deadline: Instant) -> bool {
        let mut gate = self.lock();
        while gate.inflight > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(gate, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            gate = guard;
        }
        true
    }

    /// Records a request cancelled because its client disconnected.
    pub fn note_disconnect_cancel(&self) {
        self.cancelled_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> AdmissionStats {
        let gate = self.lock();
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            cancelled_disconnects: self.cancelled_disconnects.load(Ordering::Relaxed),
            inflight: gate.inflight,
            queued: gate.queued,
            ewma_service_micros: self.ewma_service_micros.load(Ordering::Relaxed),
        }
    }

    /// Per-tenant admitted/shed counters, sorted by tenant name for a
    /// stable `/stats` rendering. Every tenant that ever knocked is
    /// listed, whether or not quotas are enabled.
    pub fn tenant_stats(&self) -> Vec<(String, TenantStats)> {
        let gate = self.lock();
        let mut out: Vec<(String, TenantStats)> = gate
            .counters
            .iter()
            .map(|(name, stats)| (name.clone(), *stats))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// RAII admission slot: dropping it frees the in-flight slot, records
/// the service-time sample, and wakes one queued waiter.
pub struct Permit<'a> {
    admission: &'a Admission,
    started: Instant,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit")
            .field("started", &self.started)
            .finish()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.release(self.started);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn admits_up_to_cap_then_queues_then_sheds() {
        let adm = Admission::new(AdmissionConfig {
            max_inflight: 2,
            max_queue: 1,
            ..AdmissionConfig::default()
        });
        let p1 = adm.admit("a", far()).expect("slot 1");
        let _p2 = adm.admit("a", far()).expect("slot 2");
        // Third request only fits in the queue; give it a short
        // deadline so it sheds by timeout.
        let short = Instant::now() + Duration::from_millis(60);
        let shed = adm.admit("a", short).expect_err("queued past deadline");
        assert!(matches!(shed, Shed::Deadline { .. }));
        assert_eq!(adm.stats().shed_deadline, 1);
        drop(p1);
        // A slot freed: the next request is admitted immediately.
        let _p3 = adm.admit("a", far()).expect("freed slot");
        assert_eq!(adm.stats().inflight, 2);
    }

    #[test]
    fn queue_overflow_sheds_immediately() {
        let adm = Arc::new(Admission::new(AdmissionConfig {
            max_inflight: 1,
            max_queue: 1,
            ..AdmissionConfig::default()
        }));
        let _held = adm.admit("a", far()).expect("slot");
        // One thread occupies the single queue seat…
        let background = {
            let adm = Arc::clone(&adm);
            thread::spawn(move || {
                let deadline = Instant::now() + Duration::from_millis(300);
                adm.admit("a", deadline).err()
            })
        };
        // …wait until it is actually queued before overflowing.
        let mut spins = 0;
        while adm.stats().queued == 0 && spins < 200 {
            thread::sleep(Duration::from_millis(5));
            spins += 1;
        }
        let overflow = adm.admit("a", far()).expect_err("queue full");
        assert!(matches!(overflow, Shed::QueueFull { .. }));
        assert!(background.join().expect("join").is_some());
        assert_eq!(adm.stats().shed_queue_full, 1);
    }

    #[test]
    fn queued_request_promotes_when_slot_frees() {
        let adm = Arc::new(Admission::new(AdmissionConfig {
            max_inflight: 1,
            max_queue: 4,
            ..AdmissionConfig::default()
        }));
        let held = adm.admit("a", far()).expect("slot");
        let waiter = {
            let adm = Arc::clone(&adm);
            thread::spawn(move || adm.admit("a", far()).map(drop).is_ok())
        };
        let mut spins = 0;
        while adm.stats().queued == 0 && spins < 200 {
            thread::sleep(Duration::from_millis(5));
            spins += 1;
        }
        drop(held);
        assert!(waiter.join().expect("join"));
        assert_eq!(adm.stats().admitted, 2);
        assert_eq!(adm.stats().completed, 2);
    }

    #[test]
    fn tenant_quota_rejects_beyond_burst_and_refills() {
        let adm = Admission::new(AdmissionConfig {
            max_inflight: 16,
            max_queue: 16,
            tenant_rate: 20.0,
            tenant_burst: 2.0,
        });
        assert!(adm.admit("t1", far()).is_ok());
        assert!(adm.admit("t1", far()).is_ok());
        let shed = adm.admit("t1", far()).expect_err("burst spent");
        assert!(matches!(shed, Shed::OverQuota { .. }));
        assert!(shed.retry_after_secs() >= 1);
        // A different tenant has its own bucket.
        assert!(adm.admit("t2", far()).is_ok());
        // 20 tokens/sec → one token back within ~50ms.
        thread::sleep(Duration::from_millis(80));
        assert!(adm.admit("t1", far()).is_ok());
        assert_eq!(adm.stats().rejected_quota, 1);
    }

    #[test]
    fn tenant_counters_split_admissions_and_sheds_by_tenant() {
        let adm = Admission::new(AdmissionConfig {
            max_inflight: 16,
            max_queue: 16,
            tenant_rate: 50.0,
            tenant_burst: 2.0,
        });
        // t1: two admits, then a quota shed; t2: one admit.
        let _p1 = adm.admit("t1", far()).expect("t1 #1");
        let _p2 = adm.admit("t1", far()).expect("t1 #2");
        assert!(adm.admit("t1", far()).is_err());
        let _p3 = adm.admit("t2", far()).expect("t2 #1");
        let tenants = adm.tenant_stats();
        assert_eq!(
            tenants,
            vec![
                (
                    "t1".to_string(),
                    TenantStats {
                        admitted: 2,
                        shed: 1
                    }
                ),
                (
                    "t2".to_string(),
                    TenantStats {
                        admitted: 1,
                        shed: 0
                    }
                ),
            ]
        );
        // Draining sheds are tallied per tenant too.
        adm.begin_drain();
        assert_eq!(adm.admit("t3", far()).err(), Some(Shed::Draining));
        let tenants = adm.tenant_stats();
        assert_eq!(
            tenants[2],
            (
                "t3".to_string(),
                TenantStats {
                    admitted: 0,
                    shed: 1
                }
            )
        );
    }

    #[test]
    fn drain_rejects_new_and_queued_requests() {
        let adm = Arc::new(Admission::new(AdmissionConfig {
            max_inflight: 1,
            max_queue: 4,
            ..AdmissionConfig::default()
        }));
        let held = adm.admit("a", far()).expect("slot");
        let queued = {
            let adm = Arc::clone(&adm);
            thread::spawn(move || adm.admit("a", far()).err())
        };
        let mut spins = 0;
        while adm.stats().queued == 0 && spins < 200 {
            thread::sleep(Duration::from_millis(5));
            spins += 1;
        }
        adm.begin_drain();
        assert_eq!(queued.join().expect("join"), Some(Shed::Draining));
        assert_eq!(adm.admit("a", far()).err(), Some(Shed::Draining));
        // wait_idle observes the held permit, then its release.
        let early = Instant::now() + Duration::from_millis(40);
        assert!(!adm.wait_idle(early));
        drop(held);
        assert!(adm.wait_idle(Instant::now() + Duration::from_secs(2)));
    }
}
