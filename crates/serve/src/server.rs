//! The HTTP explanation service.
//!
//! Thread-per-connection over `std::net::TcpListener` — deliberately
//! boring concurrency: the expensive work (reasoning, SPARQL) is
//! already parallelized *inside* the engine, so the transport layer
//! only needs enough threads to keep the admission gate fed. Routes:
//!
//! | route            | method | behaviour |
//! |------------------|--------|-----------|
//! | `/explain`       | POST   | batch explanation under a clamped [`Budget`]; budget trips → `206` with a [`DegradationReport`](feo_core::DegradationReport) |
//! | `/query`         | POST   | SPARQL at head, `as_of` an epoch, or on a branch |
//! | `/health`        | GET    | liveness |
//! | `/ready`         | GET    | readiness (`503` once draining) |
//! | `/stats`         | GET    | admission counters + plan-cache stats |
//!
//! Every request passes the [`Admission`] gate first; shed requests
//! get `429` + `Retry-After` before any engine work happens. A
//! watcher thread per in-flight request `peek`s the client socket and
//! flips the request's [`CancelFlag`] on disconnect, so abandoned
//! work stops at the governor's next check instead of running to
//! completion. Shutdown is drain-then-cancel: stop accepting, reject
//! new work, wait for in-flight requests up to a deadline, then
//! cancel stragglers through the same flags.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use feo_core::json::{json_string, ToJson};
use feo_core::{EngineBase, EngineError, EpochId, ExplainOptions, Hypothesis, Question};
use feo_rdf::{Budget, CancelFlag, Parallelism};
use feo_sparql::Planner;

use crate::admission::{Admission, AdmissionConfig, AdmissionStats, Shed};
use crate::body::Json;
use crate::http::{write_response, Conn, HttpError, Request, Response};

/// Poll interval of the accept loop (shutdown-flag latency).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Poll interval of the per-request disconnect watcher.
const WATCH_POLL: Duration = Duration::from_millis(20);

/// Server configuration: transport knobs plus the ceilings every
/// request budget is clamped to. Clients may *narrow* their budget
/// below these, never widen it.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    pub admission: AdmissionConfig,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Cap on questions per `/explain` request — a request is one
    /// budgeted unit of work, not a bulk-import channel.
    pub max_questions: usize,
    /// Concurrent connections (idle keep-alives included).
    pub max_connections: usize,
    /// Deadline applied when the client doesn't send one.
    pub default_deadline_ms: u64,
    /// Ceiling on client-requested deadlines.
    pub max_deadline_ms: u64,
    /// Ceiling on inferred triples per request.
    pub max_inferred: u64,
    /// Ceiling on reasoner rounds per request.
    pub max_rounds: u64,
    /// Ceiling on SPARQL solutions per request.
    pub max_solutions: u64,
    /// Queue wait is bounded by `min(deadline, this)` so a generous
    /// execution deadline cannot buy an unbounded queue slot.
    pub queue_wait_cap_ms: u64,
    /// How long shutdown waits for in-flight requests before
    /// cancelling them.
    pub drain_deadline_ms: u64,
    /// Engine parallelism when the request doesn't choose.
    pub parallelism: Parallelism,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            admission: AdmissionConfig::default(),
            max_body_bytes: 1 << 20,
            max_questions: 64,
            max_connections: 256,
            default_deadline_ms: 2_000,
            max_deadline_ms: 30_000,
            max_inferred: 5_000_000,
            max_rounds: 64,
            max_solutions: 200_000,
            queue_wait_cap_ms: 1_000,
            drain_deadline_ms: 5_000,
            parallelism: Parallelism::Auto,
        }
    }
}

/// Server-level failures (bind errors, accept-loop I/O).
#[derive(Debug)]
pub enum ServeError {
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(detail) => write!(f, "serve error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What happened during shutdown drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainOutcome {
    /// True when every in-flight request finished inside the drain
    /// deadline without being cancelled.
    pub clean: bool,
    /// Requests force-cancelled at the drain deadline.
    pub force_cancelled: usize,
}

/// Shared state every connection thread sees.
struct Ctx {
    base: Arc<EngineBase>,
    cfg: ServeConfig,
    admission: Arc<Admission>,
    /// Cancel flags of in-flight requests, for drain-deadline
    /// force-cancellation.
    live: Mutex<HashMap<u64, CancelFlag>>,
    next_request: AtomicU64,
    connections: AtomicUsize,
}

impl Ctx {
    fn register_live(self: &Arc<Self>, cancel: CancelFlag) -> LiveGuard {
        let id = self.next_request.fetch_add(1, Ordering::Relaxed);
        self.live
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, cancel);
        LiveGuard {
            ctx: Arc::clone(self),
            id,
            done: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Cancels every in-flight request; returns how many were live.
    fn cancel_live(&self) -> usize {
        let live = self.live.lock().unwrap_or_else(|e| e.into_inner());
        for flag in live.values() {
            flag.cancel();
        }
        live.len()
    }
}

/// RAII registration of an in-flight request: deregisters from the
/// live map and tells the disconnect watcher to stand down.
struct LiveGuard {
    ctx: Arc<Ctx>,
    id: u64,
    done: Arc<AtomicBool>,
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.done.store(true, Ordering::SeqCst);
        self.ctx
            .live
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.id);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener. The engine is shared, not owned: several
    /// servers (or a server plus in-process callers) can serve the
    /// same [`EngineBase`].
    pub fn bind(base: Arc<EngineBase>, cfg: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ServeError::Io(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(format!("set_nonblocking: {e}")))?;
        let admission = Arc::new(Admission::new(cfg.admission.clone()));
        Ok(Server {
            listener,
            addr,
            ctx: Arc::new(Ctx {
                base,
                cfg,
                admission,
                live: Mutex::new(HashMap::new()),
                next_request: AtomicU64::new(0),
                connections: AtomicUsize::new(0),
            }),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The flag that requests shutdown; share it with a signal
    /// handler or test harness.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The admission gate (stats for harnesses).
    pub fn admission(&self) -> Arc<Admission> {
        Arc::clone(&self.ctx.admission)
    }

    /// Binds and runs on a background thread; the returned handle
    /// drives shutdown. This is the entry point tests and the bench
    /// harness use.
    pub fn spawn(base: Arc<EngineBase>, cfg: ServeConfig) -> Result<ServerHandle, ServeError> {
        let server = Server::bind(base, cfg)?;
        let addr = server.local_addr();
        let shutdown = server.shutdown_flag();
        let admission = server.admission();
        let thread = thread::spawn(move || server.run());
        Ok(ServerHandle {
            addr,
            shutdown,
            admission,
            thread,
        })
    }

    /// Accept loop. Returns after a shutdown request once drain
    /// completes (or its deadline forces cancellation).
    pub fn run(self) -> Result<DrainOutcome, ServeError> {
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    workers.retain(|w| !w.is_finished());
                    let ctx = Arc::clone(&self.ctx);
                    if ctx.connections.load(Ordering::Relaxed) >= ctx.cfg.max_connections {
                        reject_over_capacity(stream);
                        continue;
                    }
                    ctx.connections.fetch_add(1, Ordering::Relaxed);
                    workers.push(thread::spawn(move || {
                        handle_connection(&ctx, stream);
                        ctx.connections.fetch_sub(1, Ordering::Relaxed);
                    }));
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(format!("accept: {e}"))),
            }
        }
        // Drain: reject new work, let in-flight requests finish, then
        // cancel whatever outlived the deadline.
        self.ctx.admission.begin_drain();
        let deadline = Instant::now() + Duration::from_millis(self.ctx.cfg.drain_deadline_ms);
        let clean = self.ctx.admission.wait_idle(deadline);
        let force_cancelled = if clean { 0 } else { self.ctx.cancel_live() };
        if !clean {
            // Give cancelled requests a moment to trip their guards
            // and release their permits.
            let grace = Instant::now() + Duration::from_secs(2);
            self.ctx.admission.wait_idle(grace);
        }
        // Connection threads exit on their own: draining makes
        // read_request give up on idle keep-alives. Join briefly,
        // detach stragglers.
        let join_deadline = Instant::now() + Duration::from_secs(1);
        for worker in workers {
            if worker.is_finished() || Instant::now() < join_deadline {
                let _ = worker.join();
            }
        }
        Ok(DrainOutcome {
            clean,
            force_cancelled,
        })
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    admission: Arc<Admission>,
    thread: JoinHandle<Result<DrainOutcome, ServeError>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Requests shutdown and waits for the drain to finish.
    pub fn shutdown_and_join(self) -> Result<DrainOutcome, ServeError> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.thread.join() {
            Ok(outcome) => outcome,
            Err(_) => Err(ServeError::Io("server thread panicked".to_string())),
        }
    }
}

/// 503s a connection accepted over the connection cap.
fn reject_over_capacity(mut stream: TcpStream) {
    let response =
        Response::json(503, "{\"error\":\"shed\",\"reason\":\"connection_limit\"}").retry_after(1);
    let _ = write_response(&mut stream, &response, true);
}

/// Serves one connection until close, error, or drain.
fn handle_connection(ctx: &Arc<Ctx>, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut conn = match Conn::new(stream, ctx.cfg.max_body_bytes) {
        Ok(conn) => conn,
        Err(_) => return,
    };
    let admission = Arc::clone(&ctx.admission);
    let give_up = move || admission.is_draining();
    loop {
        match conn.read_request(&give_up) {
            Ok(Some(request)) => {
                let response = catch_unwind(AssertUnwindSafe(|| route(ctx, &request, &conn)))
                    .unwrap_or_else(|_| {
                        Response::json(
                            500,
                            "{\"error\":\"internal\",\"message\":\"handler panicked\"}",
                        )
                    });
                let close = request.wants_close() || ctx.admission.is_draining();
                let mut stream = match conn.stream().try_clone() {
                    Ok(stream) => stream,
                    Err(_) => return,
                };
                if write_response(&mut stream, &response, close).is_err() || close {
                    return;
                }
            }
            Ok(None) => return,
            Err(error) => {
                let response = match &error {
                    HttpError::BodyTooLarge { declared, limit } => Response::json(
                        413,
                        format!(
                            "{{\"error\":\"body_too_large\",\"declared\":{declared},\"limit\":{limit}}}"
                        ),
                    ),
                    HttpError::Syntax(detail) => Response::json(
                        400,
                        format!(
                            "{{\"error\":\"bad_request\",\"message\":{}}}",
                            json_string(detail)
                        ),
                    ),
                    HttpError::Disconnected | HttpError::Io(_) => return,
                };
                if let Ok(mut stream) = conn.stream().try_clone() {
                    let _ = write_response(&mut stream, &response, true);
                }
                return;
            }
        }
    }
}

/// Dispatches one request.
fn route(ctx: &Arc<Ctx>, request: &Request, conn: &Conn) -> Response {
    match (request.method.as_str(), request.path()) {
        ("GET", "/health") => Response::json(
            200,
            format!("{{\"status\":\"ok\",\"epoch\":{}}}", ctx.base.head().0),
        ),
        ("GET", "/ready") => {
            // `store` reports how the base is backed: "disk" when a
            // persistent store is attached (memory-mapped segment +
            // WAL), "memory" for a freshly materialized engine.
            let store = if ctx.base.store().is_some() {
                "disk"
            } else {
                "memory"
            };
            if ctx.admission.is_draining() {
                Response::json(503, "{\"ready\":false,\"reason\":\"draining\"}")
            } else {
                Response::json(200, format!("{{\"ready\":true,\"store\":\"{store}\"}}"))
            }
        }
        ("GET", "/stats") => Response::json(200, stats_json(ctx)),
        ("POST", "/explain") => handle_explain(ctx, request, conn),
        ("POST", "/query") => handle_query(ctx, request, conn),
        ("GET" | "POST", _) => Response::json(
            404,
            format!(
                "{{\"error\":\"not_found\",\"path\":{}}}",
                json_string(request.path())
            ),
        ),
        _ => Response::json(405, "{\"error\":\"method_not_allowed\"}"),
    }
}

fn bad_request(message: &str) -> Response {
    Response::json(
        400,
        format!(
            "{{\"error\":\"bad_request\",\"message\":{}}}",
            json_string(message)
        ),
    )
}

/// 429/503 for a shed request, with `Retry-After` and a
/// machine-readable reason.
fn shed_response(shed: Shed) -> Response {
    let status = if matches!(shed, Shed::Draining) {
        503
    } else {
        429
    };
    Response::json(
        status,
        format!(
            "{{\"error\":\"shed\",\"reason\":{},\"retry_after_secs\":{}}}",
            json_string(shed.reason()),
            shed.retry_after_secs()
        ),
    )
    .retry_after(shed.retry_after_secs())
}

/// Maps engine errors to responses. `sparql_is_client_fault` is true
/// on `/query`, where a SPARQL error means the *client's* query was
/// bad (400); on `/explain` the templates are ours, so it's a 500.
fn engine_error_response(error: &EngineError, sparql_is_client_fault: bool) -> Response {
    let status = match error {
        EngineError::Exhausted(exhausted) => {
            return Response::json(
                206,
                format!(
                    "{{\"complete\":false,\"exhausted\":{}}}",
                    exhausted.to_json()
                ),
            )
        }
        EngineError::UnknownEntity(_)
        | EngineError::MissingRecommendations
        | EngineError::MissingPopulation
        | EngineError::UnknownEpoch(_)
        | EngineError::UnknownBranch(_)
        | EngineError::DuplicateBranch(_) => 422,
        EngineError::Sparql(_) if sparql_is_client_fault => 400,
        EngineError::Sparql(_) | EngineError::Inconsistent(_) | EngineError::Store(_) => 500,
    };
    Response::json(
        status,
        format!(
            "{{\"error\":\"engine\",\"message\":{}}}",
            json_string(&error.to_string())
        ),
    )
}

/// `/stats` body: admission counters (global and per-tenant), plan
/// cache, cumulative join-operator counters, ledger head.
fn stats_json(ctx: &Ctx) -> String {
    let a = ctx.admission.stats();
    let j = feo_sparql::join_counters();
    let tenants = ctx
        .admission
        .tenant_stats()
        .iter()
        .map(|(name, t)| {
            format!(
                "{}:{{\"admitted\":{},\"shed\":{}}}",
                json_string(name),
                t.admitted,
                t.shed
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"admission\":{{\"admitted\":{},\"completed\":{},\"shed_queue_full\":{},\"shed_deadline\":{},\"rejected_quota\":{},\"cancelled_disconnects\":{},\"inflight\":{},\"queued\":{},\"ewma_service_micros\":{},\"tenants\":{{{tenants}}}}},\"plan_cache\":{},\"joins\":{{\"nested\":{},\"hash\":{},\"merge\":{},\"leapfrog\":{}}},\"epoch\":{},\"draining\":{}}}",
        a.admitted,
        a.completed,
        a.shed_queue_full,
        a.shed_deadline,
        a.rejected_quota,
        a.cancelled_disconnects,
        a.inflight,
        a.queued,
        a.ewma_service_micros,
        ctx.base.plan_cache_stats().to_json(),
        j.nested,
        j.hash,
        j.merge,
        j.leapfrog,
        ctx.base.head().0,
        ctx.admission.is_draining(),
    )
}

/// Parses the wire form of a question. Type names follow the CLI
/// verbs (`why-eat`, `why-over`, `steps`, …).
fn parse_question(value: &Json) -> Result<Question, String> {
    let Some(kind) = value.get("type").and_then(Json::as_str) else {
        return Err("question missing a \"type\" string".to_string());
    };
    let field = |name: &str| -> Result<String, String> {
        value
            .get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("question type {kind:?} needs a {name:?} string"))
    };
    match kind {
        "why-eat" => Ok(Question::WhyEat {
            food: field("food")?,
        }),
        "why-over" => Ok(Question::WhyEatOver {
            preferred: field("preferred")?,
            alternative: field("alternative")?,
        }),
        "what-if" => Ok(Question::WhatIf {
            hypothesis: parse_hypothesis(&field("hypothesis")?)?,
        }),
        "other-users" => Ok(Question::WhatOtherUsers {
            food: field("food")?,
        }),
        "why-generally" => Ok(Question::WhyGenerally {
            food: field("food")?,
        }),
        "literature" => Ok(Question::WhatLiterature {
            food: field("food")?,
        }),
        "eaten-daily" => Ok(Question::WhatIfEatenDaily {
            food: field("food")?,
        }),
        "diet-evidence" => Ok(Question::WhatEvidenceForDiet {
            diet: field("diet")?,
        }),
        "steps" => Ok(Question::WhatSteps {
            food: field("food")?,
        }),
        other => Err(format!(
            "unknown question type {other:?} (expected why-eat | why-over | what-if | \
             other-users | why-generally | literature | eaten-daily | diet-evidence | steps)"
        )),
    }
}

/// Hypothesis spec: `pregnant` | `diet:<Diet>` | `allergic:<Ingredient>`.
fn parse_hypothesis(spec: &str) -> Result<Hypothesis, String> {
    if spec == "pregnant" {
        return Ok(Hypothesis::Pregnant);
    }
    if let Some(diet) = spec.strip_prefix("diet:") {
        if !diet.is_empty() {
            return Ok(Hypothesis::FollowedDiet(diet.to_string()));
        }
    }
    if let Some(ingredient) = spec.strip_prefix("allergic:") {
        if !ingredient.is_empty() {
            return Ok(Hypothesis::AllergicTo(ingredient.to_string()));
        }
    }
    Err(format!(
        "bad hypothesis {spec:?} (expected pregnant | diet:<Diet> | allergic:<Ingredient>)"
    ))
}

/// Builds the request's [`Budget`]: client wishes clamped to server
/// ceilings, plus the request's cancel flag. Returns the budget and
/// the effective deadline in milliseconds.
fn build_budget(
    cfg: &ServeConfig,
    body: Option<&Json>,
    request: &Request,
    cancel: CancelFlag,
) -> (Budget, u64) {
    let spec = body.and_then(|v| v.get("budget"));
    let header_deadline = request
        .header("x-feo-deadline-ms")
        .and_then(|v| v.trim().parse::<u64>().ok());
    let deadline_ms = spec
        .and_then(|v| v.get("deadline_ms"))
        .and_then(Json::as_u64)
        .or(header_deadline)
        .unwrap_or(cfg.default_deadline_ms)
        .clamp(1, cfg.max_deadline_ms);
    let clamped = |name: &str, ceiling: u64| -> u64 {
        spec.and_then(|v| v.get(name))
            .and_then(Json::as_u64)
            .map(|v| v.min(ceiling))
            .unwrap_or(ceiling)
            .max(1)
    };
    let budget = Budget::new()
        .with_deadline(Duration::from_millis(deadline_ms))
        .with_max_inferred(clamped("max_inferred", cfg.max_inferred))
        .with_max_rounds(clamped("max_rounds", cfg.max_rounds))
        .with_max_solutions(clamped("max_solutions", cfg.max_solutions))
        .with_max_input_bytes(cfg.max_body_bytes as u64)
        .with_cancel(cancel);
    (budget, deadline_ms)
}

/// Engine parallelism for one request: client choice capped at 16
/// workers, else the server default.
fn request_parallelism(cfg: &ServeConfig, body: &Json) -> Parallelism {
    match body.get("parallelism").and_then(Json::as_u64) {
        Some(0) => Parallelism::Off,
        Some(n) => Parallelism::Fixed(n.min(16) as usize),
        None => cfg.parallelism,
    }
}

/// Watches the client socket while a request executes; flips `cancel`
/// if the peer disconnects so the governor aborts the work.
fn spawn_disconnect_watcher(
    conn: &Conn,
    cancel: CancelFlag,
    done: Arc<AtomicBool>,
    admission: Arc<Admission>,
) {
    let Ok(peer) = conn.stream().try_clone() else {
        return;
    };
    if peer.set_read_timeout(Some(WATCH_POLL)).is_err() {
        return;
    }
    thread::spawn(move || {
        let mut probe = [0u8; 1];
        while !done.load(Ordering::SeqCst) {
            match peer.peek(&mut probe) {
                // EOF: the client hung up mid-request.
                Ok(0) => {
                    if !done.load(Ordering::SeqCst) {
                        cancel.cancel();
                        admission.note_disconnect_cancel();
                    }
                    return;
                }
                // Bytes waiting (a pipelined next request) — alive.
                Ok(_) => thread::sleep(WATCH_POLL),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // Reset/broken pipe: gone.
                Err(_) => {
                    if !done.load(Ordering::SeqCst) {
                        cancel.cancel();
                        admission.note_disconnect_cancel();
                    }
                    return;
                }
            }
        }
    });
}

/// POST `/explain`: parse, admit, execute under budget, map the
/// outcome to 200 (complete) or 206 (degraded).
fn handle_explain(ctx: &Arc<Ctx>, request: &Request, conn: &Conn) -> Response {
    let Some(text) = request.body_utf8() else {
        return bad_request("body is not UTF-8");
    };
    let body = match Json::parse(text) {
        Ok(body) => body,
        Err(error) => return bad_request(&error),
    };
    let Some(items) = body.get("questions").and_then(Json::as_array) else {
        return bad_request("missing \"questions\" array");
    };
    if items.is_empty() {
        return bad_request("\"questions\" is empty");
    }
    let max_questions = ctx.cfg.max_questions;
    if items.len() > max_questions {
        return bad_request(&format!("at most {max_questions} questions per request"));
    }
    let mut questions = Vec::with_capacity(items.len());
    for item in items {
        match parse_question(item) {
            Ok(question) => questions.push(question),
            Err(error) => return bad_request(&error),
        }
    }
    let parallelism = request_parallelism(&ctx.cfg, &body);
    let cancel = CancelFlag::new();
    let (budget, deadline_ms) = build_budget(&ctx.cfg, Some(&body), request, cancel.clone());
    let tenant = request.header("x-feo-tenant").unwrap_or("anonymous");
    let wait = Duration::from_millis(deadline_ms.min(ctx.cfg.queue_wait_cap_ms));
    let permit = match ctx.admission.admit(tenant, Instant::now() + wait) {
        Ok(permit) => permit,
        Err(shed) => return shed_response(shed),
    };
    let live = ctx.register_live(cancel.clone());
    spawn_disconnect_watcher(conn, cancel, live.done.clone(), Arc::clone(&ctx.admission));
    let result = ctx
        .base
        .explain_batch_with_budget(&questions, &budget, parallelism);
    drop(live);
    drop(permit);
    match result {
        Ok(outcome) => {
            let status = if outcome.is_complete() { 200 } else { 206 };
            Response::json(status, outcome.to_json())
        }
        Err(error) => engine_error_response(&error, false),
    }
}

/// POST `/query`: SPARQL against head, a historical epoch (`as_of`),
/// or a named branch — budget-guarded like `/explain`.
fn handle_query(ctx: &Arc<Ctx>, request: &Request, conn: &Conn) -> Response {
    let Some(text) = request.body_utf8() else {
        return bad_request("body is not UTF-8");
    };
    // Either a JSON envelope or a raw query body.
    let raw_query = request
        .header("content-type")
        .map(|ct| ct.starts_with("application/sparql-query"))
        .unwrap_or(false);
    let (body, sparql, as_of, branch) = if raw_query {
        (None, text.to_string(), None, None)
    } else {
        let body = match Json::parse(text) {
            Ok(body) => body,
            Err(error) => return bad_request(&error),
        };
        let Some(sparql) = body
            .get("sparql")
            .and_then(Json::as_str)
            .map(str::to_string)
        else {
            return bad_request("missing \"sparql\" string");
        };
        let as_of = body.get("as_of").and_then(Json::as_u64);
        let branch = body
            .get("branch")
            .and_then(Json::as_str)
            .map(str::to_string);
        (Some(body), sparql, as_of, branch)
    };
    if as_of.is_some() && branch.is_some() {
        return bad_request("\"as_of\" and \"branch\" are mutually exclusive");
    }
    // Convenience: prepend the standard prologue when the query
    // doesn't declare its own prefixes.
    let full = if sparql.to_ascii_lowercase().contains("prefix") {
        sparql
    } else {
        format!("{}{}", feo_ontology::ns::sparql_prologue(), sparql)
    };
    let cancel = CancelFlag::new();
    let (budget, deadline_ms) = build_budget(&ctx.cfg, body.as_ref(), request, cancel.clone());
    let parallelism = body
        .as_ref()
        .map(|b| request_parallelism(&ctx.cfg, b))
        .unwrap_or(ctx.cfg.parallelism);
    let tenant = request.header("x-feo-tenant").unwrap_or("anonymous");
    let wait = Duration::from_millis(deadline_ms.min(ctx.cfg.queue_wait_cap_ms));
    let permit = match ctx.admission.admit(tenant, Instant::now() + wait) {
        Ok(permit) => permit,
        Err(shed) => return shed_response(shed),
    };
    let live = ctx.register_live(cancel.clone());
    spawn_disconnect_watcher(conn, cancel, live.done.clone(), Arc::clone(&ctx.admission));
    let guard = budget.start();
    let opts = ExplainOptions {
        guard: Some(&guard),
        planner: Planner::default(),
        parallelism,
    };
    let result = match (as_of, branch.as_deref()) {
        (Some(epoch), None) => match ctx.base.at_epoch(EpochId(epoch)) {
            Some(mut session) => session.query_opts(&full, &opts),
            None => Err(EngineError::UnknownEpoch(epoch)),
        },
        (None, Some(name)) => match ctx.base.branch_session(name) {
            Some(mut session) => session.query_opts(&full, &opts),
            None => Err(EngineError::UnknownBranch(name.to_string())),
        },
        _ => ctx.base.session().query_opts(&full, &opts),
    };
    drop(live);
    drop(permit);
    match result {
        Ok(query_result) => Response::json(200, query_result.to_json()),
        Err(error) => engine_error_response(&error, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_wire_forms_parse() {
        use feo_core::ExplanationType as T;
        let cases = [
            (r#"{"type":"why-eat","food":"Chicken"}"#, T::Contextual),
            (
                r#"{"type":"why-over","preferred":"A","alternative":"B"}"#,
                T::Contrastive,
            ),
            (
                r#"{"type":"what-if","hypothesis":"pregnant"}"#,
                T::Counterfactual,
            ),
            (
                r#"{"type":"what-if","hypothesis":"diet:DashDiet"}"#,
                T::Counterfactual,
            ),
            (
                r#"{"type":"what-if","hypothesis":"allergic:Peanut"}"#,
                T::Counterfactual,
            ),
            (r#"{"type":"other-users","food":"A"}"#, T::CaseBased),
            (r#"{"type":"why-generally","food":"A"}"#, T::Everyday),
            (r#"{"type":"literature","food":"A"}"#, T::Scientific),
            (r#"{"type":"eaten-daily","food":"A"}"#, T::SimulationBased),
            (r#"{"type":"diet-evidence","diet":"D"}"#, T::Statistical),
            (r#"{"type":"steps","food":"A"}"#, T::TraceBased),
        ];
        for (doc, expected_type) in cases {
            let value = Json::parse(doc).expect("parses");
            let question = parse_question(&value).expect(doc);
            assert_eq!(question.explanation_type(), expected_type, "for {doc}");
        }
    }

    #[test]
    fn question_parse_errors_name_the_problem() {
        let missing = Json::parse(r#"{"type":"why-eat"}"#).expect("parses");
        let err = parse_question(&missing).expect_err("no food");
        assert!(err.contains("food"), "{err}");
        let unknown = Json::parse(r#"{"type":"why-not"}"#).expect("parses");
        let err = parse_question(&unknown).expect_err("unknown type");
        assert!(err.contains("why-not"), "{err}");
        assert!(parse_hypothesis("diet:").is_err());
        assert!(parse_hypothesis("mystery").is_err());
    }

    #[test]
    fn budgets_clamp_to_server_ceilings() {
        let cfg = ServeConfig {
            max_deadline_ms: 1_000,
            max_inferred: 500,
            max_rounds: 8,
            max_solutions: 100,
            ..ServeConfig::default()
        };
        let body = Json::parse(
            r#"{"budget":{"deadline_ms":99999,"max_inferred":50,"max_rounds":99,"max_solutions":1000000}}"#,
        )
        .expect("parses");
        let request = Request {
            method: "POST".to_string(),
            target: "/explain".to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        let (budget, deadline_ms) = build_budget(&cfg, Some(&body), &request, CancelFlag::new());
        assert_eq!(deadline_ms, 1_000);
        // Client narrows inferred below the ceiling; widening attempts
        // are clamped back down.
        assert_eq!(budget.max_inferred, Some(50));
        assert_eq!(budget.max_rounds, Some(8));
        assert_eq!(budget.max_solutions, Some(100));
    }

    #[test]
    fn header_deadline_applies_when_body_has_none() {
        let cfg = ServeConfig::default();
        let request = Request {
            method: "POST".to_string(),
            target: "/explain".to_string(),
            headers: vec![("x-feo-deadline-ms".to_string(), "250".to_string())],
            body: Vec::new(),
        };
        let (_, deadline_ms) = build_budget(&cfg, None, &request, CancelFlag::new());
        assert_eq!(deadline_ms, 250);
    }
}
