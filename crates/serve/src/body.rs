//! A small recursive-descent JSON parser for request bodies.
//!
//! The service cannot pull in serde (offline build, no registry), and
//! the request schema is tiny — objects, arrays, strings, numbers,
//! booleans. This parser accepts exactly RFC 8259 JSON with a depth
//! cap, and the accessor methods make the route handlers read like
//! schema declarations. Serialization lives in `feo_core::json`; this
//! module is the inbound half.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in document order (duplicate keys keep the
    /// first occurrence on lookup).
    Obj(Vec<(String, Json)>),
}

/// Nesting cap — far above anything the request schema needs, low
/// enough that hostile bodies cannot blow the parse stack.
const MAX_DEPTH: usize = 32;

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Object member lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric member as an unsigned integer; rejects negatives and
    /// fractional values rather than truncating them silently.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!(
            "unexpected byte {:?} at offset {}",
            *c as char, pos
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("bad number at offset {start}"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    // Caller guarantees bytes[*pos] == b'"'.
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let low = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        match ch {
                            Some(c) => out.push(c),
                            None => return Err(format!("bad \\u escape near offset {pos}")),
                        }
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control byte in string at offset {pos}"));
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("non-UTF-8 string content at offset {pos}"))?;
                match rest.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let Some(slice) = bytes.get(at..at + 4) else {
        return Err(format!("truncated \\u escape at offset {at}"));
    };
    let text = std::str::from_utf8(slice).map_err(|_| format!("bad \\u escape at offset {at}"))?;
    u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape {text:?}"))
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected member name at offset {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shaped_document() {
        let doc = r#"{
            "questions": [
                {"type": "why-eat", "food": "Chicken"},
                {"type": "what-if", "hypothesis": "diet:DashDiet"}
            ],
            "budget": {"deadline_ms": 250, "max_inferred": 10000},
            "parallelism": 2
        }"#;
        let v = Json::parse(doc).expect("parses");
        let questions = v.get("questions").and_then(Json::as_array).expect("array");
        assert_eq!(questions.len(), 2);
        assert_eq!(
            questions[0].get("type").and_then(Json::as_str),
            Some("why-eat")
        );
        assert_eq!(
            v.get("budget")
                .and_then(|b| b.get("deadline_ms"))
                .and_then(Json::as_u64),
            Some(250)
        );
        assert_eq!(v.get("parallelism").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\né🥦""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\né🥦"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn as_u64_refuses_lossy_numbers() {
        assert_eq!(Json::parse("3").ok().and_then(|v| v.as_u64()), Some(3));
        assert_eq!(Json::parse("3.5").ok().and_then(|v| v.as_u64()), None);
        assert_eq!(Json::parse("-3").ok().and_then(|v| v.as_u64()), None);
    }
}
