//! # feo-serve
//!
//! A dependency-free HTTP/1.1 service wrapping [`feo_core::EngineBase`]
//! — the paper's explanation engine, operated the way a production
//! recommender would actually run it: as a shared, long-lived service
//! with strangers on the other end of the socket.
//!
//! The design extends the execution governor (`feo_rdf::governor`)
//! from "bound one call" to "bound a fleet of callers":
//!
//! - **Admission control** ([`admission::Admission`]): a global
//!   in-flight cap, a bounded queue with deadline-based shedding, and
//!   per-tenant token buckets. Overload produces fast, honest `429`s
//!   with `Retry-After` — never a timeout pile-up.
//! - **Graceful degradation**: every request runs under a [`Budget`]
//!   clamped to server ceilings; a tripped budget returns `206
//!   Partial Content` with the engine's `DegradationReport`, so
//!   clients see *which* explanations they got and *why* the rest
//!   were skipped.
//! - **Cancellation**: a watcher thread per in-flight request flips
//!   the request's `CancelFlag` when the client disconnects, aborting
//!   the work at the governor's next check.
//! - **Graceful shutdown**: SIGTERM/SIGINT stop the accept loop,
//!   `/ready` flips to `503`, in-flight requests drain up to a
//!   deadline, stragglers are cancelled, and the process exits 0.
//!
//! Everything is `std`-only: `TcpListener` + thread-per-connection,
//! hand-rolled HTTP framing ([`http`]), and a small JSON parser
//! ([`body`]). No async runtime, no serde.
//!
//! ```no_run
//! use std::sync::Arc;
//! use feo_core::EngineBase;
//! use feo_foodkg::{curated, Season, SystemContext, UserProfile};
//! use feo_serve::{ServeConfig, Server};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = Arc::new(EngineBase::new(
//!     curated(),
//!     UserProfile::new("u"),
//!     SystemContext::new(Season::Autumn),
//! )?);
//! let handle = Server::spawn(base, ServeConfig::default())?;
//! println!("listening on {}", handle.addr());
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub mod body;
pub mod http;
pub mod server;
pub mod shutdown;

pub use admission::{Admission, AdmissionConfig, AdmissionStats, Shed, TenantStats};
pub use body::Json;
pub use http::{Request, Response};
pub use server::{DrainOutcome, ServeConfig, ServeError, Server, ServerHandle};

// The budget types a caller needs to configure the service.
pub use feo_rdf::{Budget, CancelFlag, Parallelism};
