//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! Hand-rolled on purpose: the build environment has no async runtime
//! and no HTTP crates, and the service only needs the subset a
//! load-balancer-fronted API actually exercises — request line,
//! headers, `Content-Length` bodies, keep-alive. Parsing is
//! *incremental over an owned buffer*: reads use a short socket
//! timeout so the connection thread can notice server drain between
//! packets, and partially received requests survive those timeouts
//! because bytes accumulate in [`Conn::buf`] rather than in a
//! `BufRead` adapter that would lose them.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Cap on the request line + headers block. Requests with bigger
/// preambles are attacks or bugs; both get a fast 431-ish rejection.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Socket read timeout: the granularity at which an idle connection
/// thread re-checks the drain flag.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// How long a *partially received* request may dribble in before the
/// connection is dropped as stalled.
const STALL_DEADLINE: Duration = Duration::from_secs(10);

/// Errors surfaced while reading one request off a connection.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request framing (bad request line, header, or length).
    Syntax(String),
    /// The declared body exceeds the configured cap.
    BodyTooLarge { declared: usize, limit: usize },
    /// The peer closed mid-request, or stalled past the dribble
    /// deadline.
    Disconnected,
    /// A transport error other than timeout/disconnect.
    Io(ErrorKind),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Syntax(detail) => write!(f, "malformed request: {detail}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds the {limit}-byte cap"
                )
            }
            HttpError::Disconnected => write!(f, "peer disconnected mid-request"),
            HttpError::Io(kind) => write!(f, "transport error: {kind:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// The raw request target (path plus any query string).
    pub target: String,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive single-header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == needle)
            .map(|(_, v)| v.as_str())
    }

    /// The target with any query string stripped.
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }

    /// True when the client asked to close after this response (or
    /// spoke HTTP/1.0 semantics via `Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }

    /// The request body as UTF-8, or `None` when it isn't.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// One live connection: the stream plus the bytes received so far.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    max_body: usize,
}

impl Conn {
    /// Wraps an accepted stream. The short read timeout is what lets
    /// [`Conn::read_request`] poll `give_up` between packets.
    pub fn new(stream: TcpStream, max_body: usize) -> std::io::Result<Self> {
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(Conn {
            stream,
            buf: Vec::new(),
            max_body,
        })
    }

    /// The underlying stream (for response writing and for cloning a
    /// disconnect-watcher handle).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads the next request off the connection.
    ///
    /// Returns `Ok(None)` when the peer closed cleanly between
    /// requests, or when `give_up` reports true while the connection
    /// is idle (server draining) — either way the caller just closes.
    /// A partially received request keeps accumulating across read
    /// timeouts until [`STALL_DEADLINE`].
    pub fn read_request(
        &mut self,
        give_up: &dyn Fn() -> bool,
    ) -> Result<Option<Request>, HttpError> {
        let mut chunk = [0u8; 4096];
        let mut partial_since: Option<Instant> = None;
        loop {
            if let Some(head_end) = find_head_end(&self.buf) {
                let (request, consumed) = self.try_frame(head_end)?;
                if let Some(request) = request {
                    self.buf.drain(..consumed);
                    return Ok(Some(request));
                }
                // Headers complete but the body is still arriving.
            } else if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::Syntax(format!(
                    "header block exceeds {MAX_HEAD_BYTES} bytes"
                )));
            }
            if !self.buf.is_empty() {
                let since = *partial_since.get_or_insert_with(Instant::now);
                if since.elapsed() > STALL_DEADLINE {
                    return Err(HttpError::Disconnected);
                }
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(HttpError::Disconnected)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if self.buf.is_empty() && give_up() {
                        return Ok(None);
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::BrokenPipe) =>
                {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(HttpError::Disconnected)
                    };
                }
                Err(e) => return Err(HttpError::Io(e.kind())),
            }
        }
    }

    /// Attempts to frame one request given a complete header block
    /// ending at `head_end` (index of the blank line). Returns the
    /// request and the total bytes consumed, or `(None, _)` when the
    /// body has not fully arrived yet.
    #[allow(clippy::type_complexity)]
    fn try_frame(&self, head_end: usize) -> Result<(Option<Request>, usize), HttpError> {
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| HttpError::Syntax("non-UTF-8 header block".to_string()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v)) if !m.is_empty() && !t.is_empty() => (m, t, v),
            _ => {
                return Err(HttpError::Syntax(format!(
                    "bad request line {request_line:?}"
                )))
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Syntax(format!(
                "unsupported version {version:?}"
            )));
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::Syntax(format!("bad header line {line:?}")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        if headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
        {
            return Err(HttpError::Syntax(
                "chunked transfer encoding is not supported".to_string(),
            ));
        }
        let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| HttpError::Syntax(format!("bad content-length {v:?}")))?,
            None => 0,
        };
        if content_length > self.max_body {
            return Err(HttpError::BodyTooLarge {
                declared: content_length,
                limit: self.max_body,
            });
        }
        let body_start = head_end + 4;
        let total = body_start + content_length;
        if self.buf.len() < total {
            return Ok((None, 0));
        }
        let request = Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: self.buf[body_start..total].to_vec(),
        };
        Ok((Some(request), total))
    }
}

/// Index of the `\r\n\r\n` terminating the header block, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub body: Vec<u8>,
    pub content_type: &'static str,
    /// Extra headers (e.g. `Retry-After`).
    pub extra: Vec<(String, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            extra: Vec::new(),
        }
    }

    /// Adds a `Retry-After` header (seconds).
    pub fn retry_after(mut self, secs: u64) -> Self {
        self.extra
            .push(("Retry-After".to_string(), secs.to_string()));
        self
    }
}

/// The standard reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes and writes `response`; `close` controls the
/// `Connection` header.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    for (name, value) in &response.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn parses_request_with_body_split_across_writes() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 1024).expect("conn");
        client
            .write_all(b"POST /explain HTTP/1.1\r\nContent-Le")
            .expect("write");
        client.flush().expect("flush");
        let handle = std::thread::spawn(move || conn.read_request(&|| false));
        std::thread::sleep(Duration::from_millis(120));
        client
            .write_all(b"ngth: 5\r\nX-Feo-Tenant: t1\r\n\r\nhello")
            .expect("write");
        let request = handle
            .join()
            .expect("no panic")
            .expect("parses")
            .expect("some");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path(), "/explain");
        assert_eq!(request.header("x-feo-tenant"), Some("t1"));
        assert_eq!(request.body, b"hello");
    }

    #[test]
    fn keep_alive_frames_two_requests() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 1024).expect("conn");
        client
            .write_all(b"GET /health HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n")
            .expect("write");
        let first = conn.read_request(&|| false).expect("parses").expect("some");
        assert_eq!(first.path(), "/health");
        let second = conn.read_request(&|| false).expect("parses").expect("some");
        assert_eq!(second.path(), "/stats");
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        let (client, server) = pair();
        let mut conn = Conn::new(server, 1024).expect("conn");
        drop(client);
        assert!(conn.read_request(&|| false).expect("no error").is_none());
    }

    #[test]
    fn disconnect_mid_request_is_an_error() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 1024).expect("conn");
        client
            .write_all(b"POST /explain HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")
            .expect("write");
        drop(client);
        assert!(matches!(
            conn.read_request(&|| false),
            Err(HttpError::Disconnected)
        ));
    }

    #[test]
    fn oversized_body_is_rejected_by_declared_length() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 16).expect("conn");
        client
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 64\r\n\r\n")
            .expect("write");
        assert!(matches!(
            conn.read_request(&|| false),
            Err(HttpError::BodyTooLarge { declared: 64, .. })
        ));
    }

    #[test]
    fn give_up_closes_idle_connections_only() {
        let (_client, server) = pair();
        let mut conn = Conn::new(server, 1024).expect("conn");
        // Idle connection + give_up → clean None, not an error.
        assert!(conn.read_request(&|| true).expect("no error").is_none());
    }

    #[test]
    fn response_wire_format() {
        let (mut client, mut server_stream) = pair();
        let response = Response::json(429, "{\"error\":\"shed\"}").retry_after(2);
        write_response(&mut server_stream, &response, true).expect("write");
        drop(server_stream);
        let mut raw = String::new();
        use std::io::Read as _;
        client.read_to_string(&mut raw).expect("read");
        assert!(
            raw.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{raw}"
        );
        assert!(raw.contains("Retry-After: 2\r\n"), "{raw}");
        assert!(raw.contains("Connection: close\r\n"), "{raw}");
        assert!(raw.ends_with("{\"error\":\"shed\"}"), "{raw}");
    }
}
