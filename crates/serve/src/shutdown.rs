//! Process signal plumbing for graceful shutdown, without a libc
//! dependency: `signal(2)` is declared directly and the handler does
//! the only thing an async-signal-safe handler may do — store to an
//! atomic. The serve loop (or any caller) polls [`requested`] and
//! runs the actual drain outside signal context.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that set the shutdown flag.
/// Idempotent; call once before the accept loop starts.
pub fn install() {
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// True once a shutdown signal has arrived.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Test/emergency hook: raise the flag programmatically.
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}
