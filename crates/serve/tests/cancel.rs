//! Cross-thread cancellation under serving conditions, at the engine
//! boundary: a `CancelFlag` raised from another thread must stop
//! `explain_batch_with_budget` promptly with a *typed* outcome, and
//! the shared `EngineBase` must remain fully usable afterwards.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use feo_core::{EngineBase, ExplainOptions, Hypothesis, Question};
use feo_foodkg::{curated, Season, SystemContext, UserProfile};
use feo_rdf::governor::{Budget, CancelFlag, Resource};
use feo_rdf::Parallelism;

fn base() -> Arc<EngineBase> {
    let user = UserProfile::new("cancel-user");
    let ctx = SystemContext::new(Season::Autumn);
    Arc::new(EngineBase::new(curated(), user, ctx).expect("curated is consistent"))
}

/// A batch long enough that it cannot finish before the flag flips.
fn long_batch(repeats: usize) -> Vec<Question> {
    let mut questions = Vec::new();
    for _ in 0..repeats {
        questions.push(Question::WhyEat {
            food: "CauliflowerPotatoCurry".to_string(),
        });
        questions.push(Question::WhatIf {
            hypothesis: Hypothesis::Pregnant,
        });
    }
    questions
}

#[test]
fn cancel_mid_batch_returns_typed_outcome_promptly() {
    let base = base();
    let cancel = CancelFlag::new();
    let budget = Budget::new()
        .with_deadline(Duration::from_secs(60))
        .with_cancel(cancel.clone());
    let worker = {
        let base = Arc::clone(&base);
        thread::spawn(move || {
            let started = Instant::now();
            let outcome =
                base.explain_batch_with_budget(&long_batch(500), &budget, Parallelism::Off);
            (outcome, started.elapsed())
        })
    };
    thread::sleep(Duration::from_millis(40));
    let cancelled_at = Instant::now();
    cancel.cancel();
    let (outcome, total) = worker.join().expect("worker returns, not panics");

    // Typed degradation, not an opaque abort: the batch reports which
    // explanations completed, which were skipped, and why.
    let outcome = outcome.expect("budgeted batch returns Ok with a report");
    assert!(
        !outcome.is_complete(),
        "cancellation must show in the outcome"
    );
    let degradation = outcome.degradation.expect("degradation report present");
    assert_eq!(degradation.exhausted.resource, Resource::Cancelled);
    assert!(
        !degradation.skipped.is_empty(),
        "cancelled batch must report skipped work"
    );
    assert_eq!(
        degradation.completed.len() + degradation.skipped.len(),
        1000,
        "every question accounted for exactly once"
    );
    assert_eq!(outcome.explanations.len(), degradation.completed.len());

    // Prompt: the worker must return within a bounded wall-clock of
    // the flag flipping, far below the 60s deadline.
    let after_cancel = cancelled_at.elapsed();
    assert!(
        after_cancel < Duration::from_secs(5),
        "worker took {after_cancel:?} to notice cancellation (total run {total:?})"
    );
}

#[test]
fn engine_stays_coherent_after_cancellation() {
    let base = base();
    let cancel = CancelFlag::new();
    let budget = Budget::new().with_cancel(cancel.clone());
    // Cancel before the batch even starts: everything is skipped.
    cancel.cancel();
    let outcome = base
        .explain_batch_with_budget(&long_batch(4), &budget, Parallelism::Off)
        .expect("typed outcome");
    assert!(!outcome.is_complete());

    // The same base, fresh budget: full service, correct answers, and
    // the plan cache still advances (no poisoned shared state).
    let clean = base
        .explain_batch_with_budget(
            &[Question::WhyEat {
                food: "CauliflowerPotatoCurry".to_string(),
            }],
            &Budget::new(),
            Parallelism::Off,
        )
        .expect("clean run");
    assert!(clean.is_complete());
    assert!(clean.explanations[0].answer.contains("current season"));
    let session_answer = base
        .explain(
            &Question::WhyEat {
                food: "CauliflowerPotatoCurry".to_string(),
            },
            &ExplainOptions::default(),
        )
        .expect("session path unaffected");
    assert_eq!(session_answer.answer, clean.explanations[0].answer);
}
