//! End-to-end tests of the HTTP service: routes, status mapping,
//! degradation, quotas, disconnect cancellation, and graceful
//! shutdown — all over real sockets against a real engine.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use common::{get, post, spawn, test_config};
use feo_serve::{AdmissionConfig, ServeConfig};

const WHY_EAT: &str = r#"{"questions":[{"type":"why-eat","food":"CauliflowerPotatoCurry"}]}"#;

#[test]
fn health_ready_stats_and_unknown_routes() {
    let handle = spawn(test_config());
    let addr = handle.addr();

    let (status, _, body) = get(addr, "/health");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, _, body) = get(addr, "/ready");
    assert_eq!(status, 200, "{body}");

    let (status, _, body) = get(addr, "/stats");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"admission\""), "{body}");
    assert!(body.contains("\"plan_cache\""), "{body}");

    let (status, _, _) = get(addr, "/no-such-route");
    assert_eq!(status, 404);

    // Wrong method on a POST route.
    let (status, _, _) = get(addr, "/explain");
    assert_eq!(status, 404);

    let outcome = handle.shutdown_and_join().expect("clean shutdown");
    assert!(outcome.clean);
}

#[test]
fn stats_reports_per_tenant_admission_counters() {
    let mut cfg = test_config();
    // Quotas on, tiny burst: the third request from one tenant sheds.
    cfg.admission = AdmissionConfig {
        max_inflight: 4,
        max_queue: 16,
        tenant_rate: 0.5,
        tenant_burst: 2.0,
    };
    let handle = spawn(cfg);
    let addr = handle.addr();

    let tenant = |name: &str, expect: u16| {
        let (status, _, body) =
            common::http(addr, "POST", "/explain", &[("x-feo-tenant", name)], WHY_EAT);
        assert_eq!(status, expect, "tenant {name}: {body}");
    };
    tenant("alice", 200);
    tenant("alice", 200);
    tenant("alice", 429); // burst of 2 spent
    tenant("bob", 200); // own bucket

    let (status, _, body) = get(addr, "/stats");
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains(r#""alice":{"admitted":2,"shed":1}"#),
        "{body}"
    );
    assert!(body.contains(r#""bob":{"admitted":1,"shed":0}"#), "{body}");
    // Global counters agree with the per-tenant split.
    assert!(body.contains("\"admitted\":3"), "{body}");
    assert!(body.contains("\"rejected_quota\":1"), "{body}");
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn ready_reports_store_backing_mode() {
    // Memory-backed engine (the default fixture).
    let handle = spawn(test_config());
    let (status, _, body) = get(handle.addr(), "/ready");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"store\":\"memory\""), "{body}");
    handle.shutdown_and_join().expect("clean shutdown");

    // Disk-backed engine: save, reopen via mmap, serve.
    use feo_foodkg::{curated, Season, SystemContext, UserProfile};
    let dir = std::env::temp_dir().join(format!("feo-serve-ready-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let user = UserProfile::new("test-user");
    let ctx = SystemContext::new(Season::Autumn);
    let mut built =
        feo_core::EngineBase::new(curated(), user.clone(), ctx.clone()).expect("consistent");
    built.save_to(&dir).expect("save store");
    let reopened = feo_core::EngineBase::open(&dir, curated(), user, ctx).expect("reopen store");
    let handle = feo_serve::Server::spawn(std::sync::Arc::new(reopened), test_config())
        .expect("bind ephemeral port");
    let (status, _, body) = get(handle.addr(), "/ready");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"store\":\"disk\""), "{body}");
    // The disk-backed engine answers the same explanation route.
    let (status, _, body) = post(handle.addr(), "/explain", WHY_EAT);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("current season"), "{body}");
    handle.shutdown_and_join().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_batch_complete_is_200() {
    let handle = spawn(test_config());
    let (status, _, body) = post(handle.addr(), "/explain", WHY_EAT);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"complete\":true"), "{body}");
    assert!(body.contains("current season"), "{body}");
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn budget_trip_degrades_to_206_with_report() {
    let handle = spawn(test_config());
    // max_rounds: 1 cannot finish the counterfactual's delta closure,
    // so the request degrades deterministically.
    let body_doc = r#"{"questions":[{"type":"why-eat","food":"CauliflowerPotatoCurry"},{"type":"what-if","hypothesis":"pregnant"}],"budget":{"max_rounds":1}}"#;
    let (status, _, body) = post(handle.addr(), "/explain", body_doc);
    assert_eq!(status, 206, "{body}");
    assert!(body.contains("\"complete\":false"), "{body}");
    assert!(body.contains("\"degradation\""), "{body}");
    assert!(body.contains("\"resource\":\"rounds\""), "{body}");
    assert!(body.contains("\"skipped\""), "{body}");
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn client_errors_get_4xx_not_5xx() {
    let handle = spawn(test_config());
    let addr = handle.addr();

    let (status, _, body) = post(addr, "/explain", "{not json");
    assert_eq!(status, 400, "{body}");

    let (status, _, body) = post(addr, "/explain", r#"{"questions":[]}"#);
    assert_eq!(status, 400, "{body}");

    let (status, _, body) = post(
        addr,
        "/explain",
        r#"{"questions":[{"type":"warp-drive","food":"X"}]}"#,
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("warp-drive"), "{body}");

    let (status, _, body) = post(
        addr,
        "/explain",
        r#"{"questions":[{"type":"why-eat","food":"NoSuchFood"}]}"#,
    );
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("unknown entity"), "{body}");

    // Bad SPARQL is the client's fault on /query.
    let (status, _, body) = post(addr, "/query", r#"{"sparql":"SELECT WHERE {"}"#);
    assert_eq!(status, 400, "{body}");

    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn query_serves_head_epochs_and_branches() {
    let handle = spawn(test_config());
    let addr = handle.addr();

    // Head query, W3C JSON shape.
    let (status, _, body) = post(
        addr,
        "/query",
        r#"{"sparql":"SELECT ?r WHERE { ?r a food:Recipe } LIMIT 1"}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"head\":{\"vars\":[\"r\"]}"), "{body}");
    assert!(body.contains("\"bindings\""), "{body}");

    // ASK.
    let (status, _, body) = post(addr, "/query", r#"{"sparql":"ASK { ?s ?p ?o }"}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"boolean\":true"), "{body}");

    // Time travel to the base epoch.
    let (status, _, body) = post(addr, "/query", r#"{"sparql":"ASK { ?s ?p ?o }","as_of":0}"#);
    assert_eq!(status, 200, "{body}");

    // Past the head.
    let (status, _, body) = post(
        addr,
        "/query",
        r#"{"sparql":"ASK { ?s ?p ?o }","as_of":99}"#,
    );
    assert_eq!(status, 422, "{body}");

    // Unknown branch.
    let (status, _, body) = post(
        addr,
        "/query",
        r#"{"sparql":"ASK { ?s ?p ?o }","branch":"nope"}"#,
    );
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("unknown branch"), "{body}");

    // Mutually exclusive selectors.
    let (status, _, _) = post(
        addr,
        "/query",
        r#"{"sparql":"ASK { ?s ?p ?o }","as_of":0,"branch":"b"}"#,
    );
    assert_eq!(status, 400);

    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn raw_sparql_body_works_without_json_envelope() {
    let handle = spawn(test_config());
    let (status, _, body) = common::http(
        handle.addr(),
        "POST",
        "/query",
        &[("Content-Type", "application/sparql-query")],
        "ASK { ?s ?p ?o }",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"boolean\":true"), "{body}");
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn tenant_quota_yields_429_with_retry_after() {
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            max_inflight: 4,
            max_queue: 16,
            tenant_rate: 0.01,
            tenant_burst: 1.0,
        },
        ..test_config()
    };
    let handle = spawn(cfg);
    let addr = handle.addr();
    let tenant = [("X-Feo-Tenant", "heavy-user")];

    let (status, _, body) = common::http(addr, "POST", "/explain", &tenant, WHY_EAT);
    assert_eq!(status, 200, "{body}");

    let (status, head, body) = common::http(addr, "POST", "/explain", &tenant, WHY_EAT);
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("over_quota"), "{body}");
    assert!(head.contains("Retry-After:"), "{head}");

    // A different tenant is unaffected.
    let other = [("X-Feo-Tenant", "light-user")];
    let (status, _, body) = common::http(addr, "POST", "/explain", &other, WHY_EAT);
    assert_eq!(status, 200, "{body}");

    assert_eq!(handle.admission_stats().rejected_quota, 1);
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn overload_sheds_with_429_and_never_5xx() {
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            max_inflight: 1,
            max_queue: 1,
            ..AdmissionConfig::default()
        },
        default_deadline_ms: 400,
        queue_wait_cap_ms: 400,
        ..test_config()
    };
    let handle = spawn(cfg);
    let addr = handle.addr();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            thread::spawn(move || {
                let mut statuses = Vec::new();
                for _ in 0..4 {
                    let (status, _, _) = post(addr, "/explain", WHY_EAT);
                    statuses.push(status);
                }
                statuses
            })
        })
        .collect();
    let mut all = Vec::new();
    for worker in workers {
        all.extend(worker.join().expect("client thread"));
    }
    assert!(
        all.iter().all(|s| matches!(s, 200 | 206 | 429)),
        "unexpected statuses: {all:?}"
    );
    assert!(all.contains(&200), "nothing served under overload: {all:?}");
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn client_disconnect_cancels_inflight_work() {
    let cfg = ServeConfig {
        max_questions: 4096,
        ..test_config()
    };
    let handle = spawn(cfg);
    let addr = handle.addr();

    // A deliberately long request: many questions, engine parallelism
    // off, generous deadline — it can only end early via cancellation.
    let mut questions = Vec::new();
    for _ in 0..1000 {
        questions.push(r#"{"type":"why-eat","food":"CauliflowerPotatoCurry"}"#.to_string());
        questions.push(r#"{"type":"what-if","hypothesis":"pregnant"}"#.to_string());
    }
    let body = format!(
        r#"{{"questions":[{}],"budget":{{"deadline_ms":25000}},"parallelism":0}}"#,
        questions.join(",")
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "POST /explain HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(request.as_bytes()).expect("write");
    // Let the request get admitted and start working, then vanish.
    thread::sleep(Duration::from_millis(150));
    drop(stream);

    // The watcher must flip the cancel flag and the worker must
    // release its slot promptly — well before the 25s deadline.
    let started = Instant::now();
    let deadline = Duration::from_secs(5);
    loop {
        let stats = handle.admission_stats();
        if stats.cancelled_disconnects >= 1 && stats.inflight == 0 {
            break;
        }
        assert!(
            started.elapsed() < deadline,
            "cancellation not observed in {deadline:?}: {stats:?}"
        );
        thread::sleep(Duration::from_millis(25));
    }

    // The shared engine is still coherent: new requests succeed.
    let (status, _, body) = post(addr, "/explain", WHY_EAT);
    assert_eq!(status, 200, "{body}");
    handle.shutdown_and_join().expect("clean shutdown");
}

#[test]
fn shutdown_drains_inflight_requests() {
    let handle = spawn(test_config());
    let addr = handle.addr();

    // A request slow enough to still be in flight when shutdown hits.
    let inflight = thread::spawn(move || {
        let body = r#"{"questions":[{"type":"why-eat","food":"CauliflowerPotatoCurry"},{"type":"what-if","hypothesis":"pregnant"},{"type":"why-over","preferred":"CauliflowerPotatoCurry","alternative":"ButternutSquashSoup"}],"budget":{"deadline_ms":20000},"parallelism":0}"#;
        post(addr, "/explain", body)
    });
    thread::sleep(Duration::from_millis(80));
    let outcome = handle.shutdown_and_join().expect("drain");
    let (status, _, body) = inflight.join().expect("request thread");
    assert!(
        matches!(status, 200 | 206),
        "in-flight request lost: {status} {body}"
    );
    assert!(outcome.clean, "drain cancelled in-flight work: {outcome:?}");
    assert_eq!(outcome.force_cancelled, 0);

    // The listener is gone afterwards.
    assert!(TcpStream::connect(addr).is_err());
}
