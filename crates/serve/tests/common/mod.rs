//! Shared helpers for the integration tests: engine fixtures and a
//! tiny blocking HTTP client.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use feo_core::EngineBase;
use feo_foodkg::{curated, Season, SystemContext, UserProfile};
use feo_serve::{AdmissionConfig, ServeConfig, ServerHandle};

/// An engine over the curated KG with one committed epoch
/// ("pregnant") so `as_of` and history have something to see.
pub fn base_with_epoch() -> Arc<EngineBase> {
    let user = UserProfile::new("test-user");
    let ctx = SystemContext::new(Season::Autumn);
    let mut base = EngineBase::new(curated(), user.clone(), ctx).expect("curated is consistent");
    base.commit_with("pregnant", |overlay| {
        feo_core::ecosystem::apply_hypothesis(&feo_core::Hypothesis::Pregnant, &user, overlay);
    });
    Arc::new(base)
}

/// Default test config: ephemeral port, roomy gate.
pub fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        admission: AdmissionConfig {
            max_inflight: 4,
            max_queue: 16,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// Spawns a server over [`base_with_epoch`] with `cfg`.
pub fn spawn(cfg: ServeConfig) -> ServerHandle {
    feo_serve::Server::spawn(base_with_epoch(), cfg).expect("bind ephemeral port")
}

/// One HTTP exchange over a fresh connection. Returns `(status,
/// headers, body)`.
pub fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut request = format!("{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
    for (name, value) in headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let (head, response_body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status = head
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse::<u16>().ok())
        .expect("status line");
    (status, head.to_string(), response_body.to_string())
}

/// POST with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    http(addr, "POST", path, &[], body)
}

/// GET a path.
pub fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    http(addr, "GET", path, &[], "")
}
