//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The workspace pins `proptest = "1"` but this build environment has no
//! registry access, so this path crate implements the surface the
//! workspace's property tests use: the [`proptest!`] /
//! [`prop_assert!`] family of macros, the [`strategy::Strategy`] trait
//! with `prop_map`, [`strategy::Just`], [`prop_oneof!`], `any::<T>()`,
//! integer/float range strategies, tuple strategies,
//! `prop::collection::vec`, `prop::bool::ANY`, and regex-literal string
//! strategies for the character-class subset the tests rely on.
//!
//! Simplifications versus upstream: no shrinking (a failing case panics
//! with the generated inputs' debug output), and generation is driven
//! by a splitmix64 stream seeded per test name, so runs are
//! deterministic per test but explore different inputs across tests.

pub mod test_runner {
    use std::fmt;

    /// Deterministic generation stream (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from_u64(state: u64) -> Self {
            TestRng { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[lo, hi]` (inclusive), `lo <= hi`.
        pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            lo + (self.next_u64() as u128 % span) as i128
        }

        pub fn usize_in(&mut self, lo: usize, hi_excl: usize) -> usize {
            debug_assert!(lo < hi_excl);
            self.int_in(lo as i128, hi_excl as i128 - 1) as usize
        }
    }

    /// FNV-1a over the test name: a stable per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use super::string::RegexGen;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Value-producing strategy. Unlike upstream there is no value tree
    /// or shrinking: `new_value` samples a fresh value.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// One generator arm of a [`Union`].
    pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Uniform choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<UnionArm<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<UnionArm<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0, self.arms.len());
            (self.arms[i])(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.int_in(self.start as i128, self.end as i128 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.int_in(*self.start() as i128, *self.end() as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.next_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// String literals are regex strategies, matching upstream's
    /// `impl Strategy for &str`.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            RegexGen::parse(self).generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (S0 0);
        (S0 0, S1 1);
        (S0 0, S1 1, S2 2);
        (S0 0, S1 1, S2 2, S3 3);
        (S0 0, S1 1, S2 2, S3 3, S4 4);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct ArbitraryStrategy<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
        ArbitraryStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.start < self.size.end {
                rng.usize_in(self.size.start, self.size.end)
            } else {
                self.size.start
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: BoolAny = BoolAny;
}

pub mod string {
    //! Generator for the regex subset the workspace uses in string
    //! strategies: literal chars, `.`, character classes with ranges and
    //! escapes, and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`.

    use super::test_runner::TestRng;

    #[derive(Clone, Debug)]
    enum Atom {
        /// Concrete choices (a literal is a one-element class).
        Class(Vec<char>),
        /// `.` — any printable char from a fixed pool.
        Dot,
    }

    #[derive(Clone, Debug)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    #[derive(Clone, Debug)]
    pub struct RegexGen {
        pieces: Vec<Piece>,
    }

    /// Pool for `.`: printable ASCII plus a few multibyte chars so fuzz
    /// inputs exercise UTF-8 boundaries.
    const DOT_POOL_EXTRA: [char; 4] = ['£', 'é', '😀', '\t'];

    fn dot_char(rng: &mut TestRng) -> char {
        let n = (0x7E - 0x20 + 1) + DOT_POOL_EXTRA.len();
        let i = rng.usize_in(0, n);
        if i < 0x7E - 0x20 + 1 {
            char::from_u32(0x20 + i as u32).unwrap()
        } else {
            DOT_POOL_EXTRA[i - (0x7E - 0x20 + 1)]
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    impl RegexGen {
        pub fn parse(pattern: &str) -> RegexGen {
            let chars: Vec<char> = pattern.chars().collect();
            let mut pieces = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                let atom = match chars[i] {
                    '[' => {
                        i += 1;
                        let mut set = Vec::new();
                        while i < chars.len() && chars[i] != ']' {
                            let lo = if chars[i] == '\\' {
                                i += 1;
                                unescape(chars[i])
                            } else {
                                chars[i]
                            };
                            // Range `a-z` (a trailing `-` is a literal).
                            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                                let hi = if chars[i + 2] == '\\' {
                                    i += 1;
                                    unescape(chars[i + 2])
                                } else {
                                    chars[i + 2]
                                };
                                for u in lo as u32..=hi as u32 {
                                    if let Some(ch) = char::from_u32(u) {
                                        set.push(ch);
                                    }
                                }
                                i += 3;
                            } else {
                                set.push(lo);
                                i += 1;
                            }
                        }
                        i += 1; // closing ']'
                        assert!(!set.is_empty(), "empty char class in {pattern:?}");
                        Atom::Class(set)
                    }
                    '.' => {
                        i += 1;
                        Atom::Dot
                    }
                    '\\' => {
                        i += 1;
                        let c = unescape(chars[i]);
                        i += 1;
                        Atom::Class(vec![c])
                    }
                    c => {
                        i += 1;
                        Atom::Class(vec![c])
                    }
                };
                // Optional quantifier.
                let (min, max) = if i < chars.len() {
                    match chars[i] {
                        '{' => {
                            let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                            let body: String = chars[i + 1..close].iter().collect();
                            i = close + 1;
                            match body.split_once(',') {
                                Some((m, n)) => {
                                    (m.trim().parse().unwrap(), n.trim().parse().unwrap())
                                }
                                None => {
                                    let n: usize = body.trim().parse().unwrap();
                                    (n, n)
                                }
                            }
                        }
                        '?' => {
                            i += 1;
                            (0, 1)
                        }
                        '*' => {
                            i += 1;
                            (0, 6)
                        }
                        '+' => {
                            i += 1;
                            (1, 6)
                        }
                        _ => (1, 1),
                    }
                } else {
                    (1, 1)
                };
                pieces.push(Piece { atom, min, max });
            }
            RegexGen { pieces }
        }

        pub fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let count = rng.int_in(piece.min as i128, piece.max as i128) as usize;
                for _ in 0..count {
                    match &piece.atom {
                        Atom::Class(set) => out.push(set[rng.usize_in(0, set.len())]),
                        Atom::Dot => out.push(dot_char(rng)),
                    }
                }
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::seed_from_u64(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!("proptest {} case {}/{} failed: {}",
                        stringify!($name), case + 1, config.cases, err);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), l, r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: {} != {}\n  both: {:?}",
                            stringify!($left), stringify!($right), l),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Failed assumptions skip the rest of the case (no retry, unlike
/// upstream — acceptable without shrinking).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::new_value(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::string::RegexGen;
    use crate::test_runner::TestRng;

    fn sample(pattern: &str, n: usize) -> Vec<String> {
        let gen = RegexGen::parse(pattern);
        let mut rng = TestRng::seed_from_u64(42);
        (0..n).map(|_| gen.generate(&mut rng)).collect()
    }

    #[test]
    fn regex_class_with_range_and_counts() {
        for s in sample("[a-z]{1,8}", 200) {
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        for s in sample("[a-z]{2}", 50) {
            assert_eq!(s.chars().count(), 2);
        }
    }

    #[test]
    fn regex_escapes_and_literals() {
        // `[ab]\*?[ab]?` — escaped star is a literal, `?` is a quantifier.
        let seen_star = sample("[ab]\\*?[ab]?", 200).iter().any(|s| s.contains('*'));
        assert!(seen_star);
        for s in sample("[ab]\\*?[ab]?", 200) {
            assert!(s.chars().all(|c| c == 'a' || c == 'b' || c == '*'), "{s:?}");
        }
        // Class escapes, including a raw newline in the class.
        for s in sample("[@<>\"'a-z:#._;,()\\[\\]\\\\ \n0-9-]{0,120}", 50) {
            assert!(s.chars().count() <= 120);
        }
    }

    #[test]
    fn regex_dot_and_unicode_classes() {
        for s in sample(".{0,200}", 50) {
            assert!(s.chars().count() <= 200);
        }
        let multi = sample("[ -~£é😀]{0,12}", 400).concat();
        assert!(!multi.is_ascii(), "multibyte chars appear");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro surface itself: patterns, tuples, oneof, vec, any.
        #[test]
        fn macro_surface_works(
            mut xs in prop::collection::vec((0u8..12, prop::bool::ANY), 0..20),
            flag in any::<bool>(),
            pick in prop_oneof![Just(1usize), Just(2usize), 3usize..5],
            s in "[abc]{1,3}",
        ) {
            xs.push((0, flag));
            prop_assert!(!xs.is_empty());
            prop_assert!((1usize..5usize).contains(&pick));
            prop_assert_ne!(s.len(), 0);
            prop_assert_eq!(s.len(), s.len(), "lengths {} differ", s.len());
            for (x, _) in xs {
                prop_assert!(x < 13, "x was {}", x);
            }
        }
    }
}
