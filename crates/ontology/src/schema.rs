//! The TBoxes: the Explanation Ontology fragment, the Food Explanation
//! Ontology itself, and the "What To Make" food ontology.
//!
//! These are the Rust encoding of the paper's §III ontology modeling:
//!
//! - **Figure 1** — the `feo:Characteristic` class hierarchy
//!   ([`feo_tbox`]);
//! - **Figure 2** — the property lattice: `feo:hasCharacteristic`
//!   (transitive) with its inverse `feo:isCharacteristicOf`, the
//!   supportive/opposing sub-lattice, and `feo:forbids` /
//!   `feo:recommends` under both a polarity property and
//!   `isCharacteristicOf` (multiple inheritance, §III-B);
//! - **Figure 3** — `eo:Fact` / `eo:Foil` as `owl:equivalentClass`
//!   definitions over the polarity properties and ecosystem presence;
//! - the `feo:isInternal` flag separating internal (food/health) from
//!   external (season, location, budget) characteristic classes, which
//!   contextual explanations filter on.

use feo_rdf::Graph;

use crate::builder::TBox;
use crate::ns::{eo, feo, food};

/// Writes the Explanation Ontology fragment FEO imports.
pub fn eo_tbox(g: &mut Graph) {
    let mut b = TBox::new(g);
    b.class(eo::EXPLANATION, "Explanation");
    for (iri, label) in [
        (eo::CASE_BASED, "Case Based Explanation"),
        (eo::CONTEXTUAL, "Contextual Explanation"),
        (eo::CONTRASTIVE, "Contrastive Explanation"),
        (eo::COUNTERFACTUAL, "Counterfactual Explanation"),
        (eo::EVERYDAY, "Everyday Explanation"),
        (eo::SCIENTIFIC, "Scientific Explanation"),
        (eo::SIMULATION_BASED, "Simulation Based Explanation"),
        (eo::STATISTICAL, "Statistical Explanation"),
        (eo::TRACE_BASED, "Trace Based Explanation"),
    ] {
        b.class(iri, label).sub_class(iri, eo::EXPLANATION);
    }

    // Knowledge-level constructs: the competency queries exclude
    // subclasses of eo:knowledge when listing characteristic types.
    b.class(eo::KNOWLEDGE, "knowledge");
    b.class(eo::FACT, "Fact").sub_class(eo::FACT, eo::KNOWLEDGE);
    b.class(eo::FOIL, "Foil").sub_class(eo::FOIL, eo::KNOWLEDGE);

    b.class(eo::OBJECT_RECORD, "Object Record");
    b.class(eo::KNOWLEDGE_RECORD, "Knowledge Record")
        .sub_class(eo::KNOWLEDGE_RECORD, eo::KNOWLEDGE);
    b.class(eo::RECOMMENDATION, "Recommendation");
    b.class(eo::SYSTEM_RECOMMENDATION, "System Recommendation")
        .sub_class(eo::SYSTEM_RECOMMENDATION, eo::RECOMMENDATION);

    b.object_property(eo::BASED_ON, "is based on");
    b.object_property(eo::IN_RELATION_TO, "in relation to");
}

/// Writes the FEO TBox (the paper's contribution).
pub fn feo_tbox(g: &mut Graph) {
    let mut b = TBox::new(g);

    // ---- Figure 1: the Characteristic hierarchy -----------------------
    b.class(feo::CHARACTERISTIC, "Characteristic");
    b.class(feo::PARAMETER, "Parameter")
        .sub_class(feo::PARAMETER, feo::CHARACTERISTIC);
    b.class(feo::USER_CHARACTERISTIC, "User Characteristic")
        .sub_class(feo::USER_CHARACTERISTIC, feo::CHARACTERISTIC);
    b.class(feo::SYSTEM_CHARACTERISTIC, "System Characteristic")
        .sub_class(feo::SYSTEM_CHARACTERISTIC, feo::CHARACTERISTIC);

    for (iri, label) in [
        (feo::LIKED_FOOD, "Liked Food Characteristic"),
        (feo::DISLIKED_FOOD, "Disliked Food Characteristic"),
        (feo::ALLERGIC_FOOD, "Allergic Food Characteristic"),
        (feo::DIET, "Diet Characteristic"),
        (feo::NUTRITIONAL_GOAL, "Nutritional Goal Characteristic"),
        (feo::PREGNANCY, "Pregnancy Characteristic"),
        (feo::BUDGET, "Budget Characteristic"),
    ] {
        b.class(iri, label).sub_class(iri, feo::USER_CHARACTERISTIC);
    }
    for (iri, label) in [
        (feo::SEASON, "Season Characteristic"),
        (feo::LOCATION, "Location Characteristic"),
        (feo::TIME, "Time Characteristic"),
    ] {
        b.class(iri, label)
            .sub_class(iri, feo::SYSTEM_CHARACTERISTIC);
    }

    // feo:isInternal — internal (food/health) vs external (environment)
    // characteristic classes; contextual explanations use external only.
    b.datatype_property(feo::IS_INTERNAL, "is internal");
    for internal in [
        feo::LIKED_FOOD,
        feo::DISLIKED_FOOD,
        feo::ALLERGIC_FOOD,
        feo::DIET,
        feo::NUTRITIONAL_GOAL,
        feo::PREGNANCY,
    ] {
        b.boolean(internal, feo::IS_INTERNAL, true);
    }
    for external in [feo::SEASON, feo::LOCATION, feo::TIME, feo::BUDGET] {
        b.boolean(external, feo::IS_INTERNAL, false);
    }

    // ---- Question / ecosystem classes ---------------------------------
    b.class(feo::QUESTION, "Question");
    b.class(feo::ECOSYSTEM, "Ecosystem");
    b.individual(feo::CURRENT_ECOSYSTEM, feo::ECOSYSTEM, "Current Ecosystem");

    // ---- Figure 2: the property lattice --------------------------------
    b.object_property(feo::HAS_CHARACTERISTIC, "has characteristic")
        .transitive(feo::HAS_CHARACTERISTIC);
    b.object_property(feo::IS_CHARACTERISTIC_OF, "is characteristic of")
        .inverse(feo::IS_CHARACTERISTIC_OF, feo::HAS_CHARACTERISTIC);

    b.object_property(
        feo::IS_SUPPORTIVE_CHARACTERISTIC_OF,
        "is supportive characteristic of",
    )
    .sub_property(
        feo::IS_SUPPORTIVE_CHARACTERISTIC_OF,
        feo::IS_CHARACTERISTIC_OF,
    );
    b.object_property(
        feo::IS_OPPOSING_CHARACTERISTIC_OF,
        "is opposing characteristic of",
    )
    .sub_property(
        feo::IS_OPPOSING_CHARACTERISTIC_OF,
        feo::IS_CHARACTERISTIC_OF,
    );

    // §III-B: feo:forbids is a subproperty of both the opposing polarity
    // property and isCharacteristicOf (multiple inheritance).
    b.object_property(feo::FORBIDS, "forbids")
        .sub_property(feo::FORBIDS, feo::IS_OPPOSING_CHARACTERISTIC_OF)
        .sub_property(feo::FORBIDS, feo::IS_CHARACTERISTIC_OF);
    b.object_property(feo::RECOMMENDS, "recommends")
        .sub_property(feo::RECOMMENDS, feo::IS_SUPPORTIVE_CHARACTERISTIC_OF)
        .sub_property(feo::RECOMMENDS, feo::IS_CHARACTERISTIC_OF);

    // Polarity propagates through composition: a characteristic of a
    // characteristic of F supports/opposes F. This is the inference that
    // lets "Autumn supports Butternut Squash Soup" follow from
    // "Autumn is the season of butternut squash" + "butternut squash is
    // an ingredient of the soup".
    b.chain(
        feo::IS_SUPPORTIVE_CHARACTERISTIC_OF,
        &[
            feo::IS_SUPPORTIVE_CHARACTERISTIC_OF,
            feo::IS_CHARACTERISTIC_OF,
        ],
    );
    b.chain(
        feo::IS_OPPOSING_CHARACTERISTIC_OF,
        &[
            feo::IS_OPPOSING_CHARACTERISTIC_OF,
            feo::IS_CHARACTERISTIC_OF,
        ],
    );
    // feo:forbids / feo:recommends propagate into composite dishes:
    // pregnancy forbids raw fish → pregnancy forbids sushi.
    b.chain(feo::FORBIDS, &[feo::FORBIDS, food::CATEGORY_OF]);
    b.chain(feo::FORBIDS, &[feo::FORBIDS, food::IS_INGREDIENT_OF]);
    b.chain(feo::RECOMMENDS, &[feo::RECOMMENDS, food::IS_NUTRIENT_OF]);

    // Question parameters.
    b.object_property(feo::HAS_PARAMETER, "has parameter")
        .domain(feo::HAS_PARAMETER, feo::QUESTION)
        .range(feo::HAS_PARAMETER, feo::PARAMETER);
    b.object_property(feo::HAS_PRIMARY_PARAMETER, "has primary parameter")
        .sub_property(feo::HAS_PRIMARY_PARAMETER, feo::HAS_PARAMETER);
    b.object_property(feo::HAS_SECONDARY_PARAMETER, "has secondary parameter")
        .sub_property(feo::HAS_SECONDARY_PARAMETER, feo::HAS_PARAMETER);

    // Ecosystem presence.
    b.object_property(feo::PRESENT_IN, "present in ecosystem")
        .range(feo::PRESENT_IN, feo::ECOSYSTEM);
    b.object_property(feo::ABSENT_FROM, "absent from ecosystem")
        .range(feo::ABSENT_FROM, feo::ECOSYSTEM);

    // ---- Figure 3: facts and foils -------------------------------------
    // Fact ≡ (supports some Parameter) ⊓ (presentIn value CurrentEcosystem)
    let supports_param = b.some_values_from(feo::IS_SUPPORTIVE_CHARACTERISTIC_OF, feo::PARAMETER);
    let present = b.has_value(feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
    let fact = b.intersection(&[supports_param, present]);
    b.equivalent_to_node(eo::FACT, fact);

    // Foil ≡ (supports some Parameter ⊓ absentFrom value Eco)
    //      ⊔ (opposes some Parameter ⊓ presentIn value Eco)
    let supports_param2 = b.some_values_from(feo::IS_SUPPORTIVE_CHARACTERISTIC_OF, feo::PARAMETER);
    let absent = b.has_value(feo::ABSENT_FROM, feo::CURRENT_ECOSYSTEM);
    let arm1 = b.intersection(&[supports_param2, absent]);
    let opposes_param = b.some_values_from(feo::IS_OPPOSING_CHARACTERISTIC_OF, feo::PARAMETER);
    let present2 = b.has_value(feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
    let arm2 = b.intersection(&[opposes_param, present2]);
    let foil = b.union(&[arm1, arm2]);
    b.equivalent_to_node(eo::FOIL, foil);

    // Characteristic classes inferred from user relations (§III-B: the
    // inverse-property pattern — dislikedBy lets the reasoner classify
    // DislikedFoodCharacteristic without asserting user facts twice).
    let liked = b.some_values_from(food::LIKED_BY, food::USER);
    b.equivalent_to_node(feo::LIKED_FOOD, liked);
    let disliked = b.some_values_from(food::DISLIKED_BY, food::USER);
    b.equivalent_to_node(feo::DISLIKED_FOOD, disliked);
    let allergic = b.some_values_from(food::ALLERGEN_OF, food::USER);
    b.equivalent_to_node(feo::ALLERGIC_FOOD, allergic);

    // ---- Season individuals --------------------------------------------
    for (iri, label) in [
        (feo::SPRING, "Spring"),
        (feo::SUMMER, "Summer"),
        (feo::AUTUMN, "Autumn"),
        (feo::WINTER, "Winter"),
    ] {
        b.individual(iri, feo::SEASON, label);
    }

    // Pregnancy as a (hypothetical) user characteristic individual with
    // its dietary knowledge: forbids raw fish, recommends folate.
    b.individual(feo::PREGNANCY_STATE, feo::PREGNANCY, "Pregnancy");
}

/// Writes the "What To Make" food TBox with FEO's extensions.
pub fn food_tbox(g: &mut Graph) {
    let mut b = TBox::new(g);

    b.class(food::FOOD, "Food");
    b.class(food::RECIPE, "Recipe")
        .sub_class(food::RECIPE, food::FOOD);
    b.class(food::INGREDIENT, "Ingredient")
        .sub_class(food::INGREDIENT, food::FOOD);
    b.class(food::NUTRIENT, "Nutrient");
    b.class(food::FOOD_CATEGORY, "Food Category");
    b.class(food::DIET, "Diet")
        .sub_class(food::DIET, crate::ns::feo::DIET);
    b.class(food::USER, "User");
    b.class(food::REGION, "Region")
        .sub_class(food::REGION, crate::ns::feo::LOCATION);

    // Composition properties — each is a specific kind of characteristic,
    // so they slot under feo:hasCharacteristic / feo:isCharacteristicOf.
    // hasIngredient is irreflexive: a dish cannot be its own ingredient.
    // This gives the consistency checker a genuine violation to catch in
    // malformed KGs.
    b.object_property(food::HAS_INGREDIENT, "has ingredient")
        .sub_property(food::HAS_INGREDIENT, feo::HAS_CHARACTERISTIC)
        .domain(food::HAS_INGREDIENT, food::FOOD)
        .triple_iri(
            food::HAS_INGREDIENT,
            feo_rdf::vocab::rdf::TYPE,
            feo_rdf::vocab::owl::IRREFLEXIVE_PROPERTY,
        );
    // Note: isIngredientOf is deliberately NOT under the supportive
    // polarity property — mere containment is neutral in Figure 3's
    // sense (otherwise an allergen would be classified a Fact of the very
    // dish it opposes). Polarity reaches dishes through the supportive /
    // opposing chains over isCharacteristicOf instead.
    b.object_property(food::IS_INGREDIENT_OF, "is ingredient of")
        .inverse(food::IS_INGREDIENT_OF, food::HAS_INGREDIENT);

    b.object_property(food::HAS_NUTRIENT, "has nutrient")
        .sub_property(food::HAS_NUTRIENT, feo::HAS_CHARACTERISTIC);
    b.object_property(food::IS_NUTRIENT_OF, "is nutrient of")
        .inverse(food::IS_NUTRIENT_OF, food::HAS_NUTRIENT)
        .sub_property(food::IS_NUTRIENT_OF, feo::IS_SUPPORTIVE_CHARACTERISTIC_OF);

    b.object_property(food::AVAILABLE_IN_SEASON, "available in season")
        .sub_property(food::AVAILABLE_IN_SEASON, feo::HAS_CHARACTERISTIC);
    b.object_property(food::SEASON_OF, "season of")
        .inverse(food::SEASON_OF, food::AVAILABLE_IN_SEASON)
        .sub_property(food::SEASON_OF, feo::IS_SUPPORTIVE_CHARACTERISTIC_OF);

    b.object_property(food::AVAILABLE_IN_REGION, "available in region")
        .sub_property(food::AVAILABLE_IN_REGION, feo::HAS_CHARACTERISTIC);
    b.object_property(food::REGION_OF, "region of")
        .inverse(food::REGION_OF, food::AVAILABLE_IN_REGION)
        .sub_property(food::REGION_OF, feo::IS_SUPPORTIVE_CHARACTERISTIC_OF);

    b.object_property(food::BELONGS_TO_CATEGORY, "belongs to category")
        .sub_property(food::BELONGS_TO_CATEGORY, feo::HAS_CHARACTERISTIC);
    b.object_property(food::CATEGORY_OF, "category of")
        .inverse(food::CATEGORY_OF, food::BELONGS_TO_CATEGORY);

    // User preference properties with the inverse pattern from §III-B.
    b.object_property(food::LIKES, "likes")
        .domain(food::LIKES, food::USER);
    b.object_property(food::LIKED_BY, "liked by")
        .inverse(food::LIKED_BY, food::LIKES);
    // Liking and disliking the same food is contradictory — declared
    // disjoint so the reasoner flags malformed profiles.
    b.object_property(food::DISLIKES, "dislikes")
        .domain(food::DISLIKES, food::USER)
        .triple_iri(
            food::LIKES,
            feo_rdf::vocab::owl::PROPERTY_DISJOINT_WITH,
            food::DISLIKES,
        );
    b.object_property(food::DISLIKED_BY, "disliked by")
        .inverse(food::DISLIKED_BY, food::DISLIKES);
    b.object_property(food::ALLERGIC_TO, "allergic to")
        .domain(food::ALLERGIC_TO, food::USER);
    b.object_property(food::ALLERGEN_OF, "allergen of")
        .inverse(food::ALLERGEN_OF, food::ALLERGIC_TO);
    b.object_property(food::FOLLOWS_DIET, "follows diet")
        .domain(food::FOLLOWS_DIET, food::USER)
        .range(food::FOLLOWS_DIET, food::DIET);
    b.object_property(food::DIET_OF, "diet of")
        .inverse(food::DIET_OF, food::FOLLOWS_DIET);
    b.object_property(food::HAS_GOAL, "has goal")
        .domain(food::HAS_GOAL, food::USER)
        .range(food::HAS_GOAL, feo::NUTRITIONAL_GOAL);
    // A diet forbids food categories (vegan forbids meat, …). This is
    // deliberately NOT a subproperty of feo:forbids — Listing 3's
    // leaf-property filter requires feo:forbids to have no subproperties,
    // so the ABox emitter asserts feo:forbids alongside forbidsCategory.
    b.object_property(food::FORBIDS_CATEGORY, "forbids category")
        .domain(food::FORBIDS_CATEGORY, food::DIET)
        .range(food::FORBIDS_CATEGORY, food::FOOD_CATEGORY);

    b.datatype_property(food::CALORIES, "calories per serving");
    b.datatype_property(food::SERVES, "serves");
    b.datatype_property(food::PRICE_TIER, "price tier");
}

/// Loads all three TBoxes into a graph.
pub fn load_tboxes(g: &mut Graph) {
    eo_tbox(g);
    feo_tbox(g);
    food_tbox(g);
}

/// A fresh graph containing the full TBox stack.
pub fn tbox_graph() -> Graph {
    let mut g = Graph::new();
    load_tboxes(&mut g);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_owl::{extract_axioms, Reasoner};
    use feo_rdf::vocab::rdf;

    #[test]
    fn tboxes_load_without_extraction_warnings() {
        let g = tbox_graph();
        let ont = extract_axioms(&g);
        assert!(ont.warnings.is_empty(), "warnings: {:?}", ont.warnings);
        assert!(
            ont.axioms.len() > 60,
            "expected a rich TBox, got {}",
            ont.axioms.len()
        );
    }

    #[test]
    fn tboxes_are_consistent_standalone() {
        let mut g = tbox_graph();
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(r.is_consistent(), "{:?}", r.inconsistencies);
    }

    #[test]
    fn characteristic_hierarchy_closes() {
        let mut g = tbox_graph();
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let sco = g.lookup_iri(feo_rdf::vocab::rdfs::SUB_CLASS_OF).unwrap();
        let characteristic = g.lookup_iri(feo::CHARACTERISTIC).unwrap();
        let season = g.lookup_iri(feo::SEASON).unwrap();
        assert!(
            g.contains_ids(season, sco, characteristic),
            "SeasonCharacteristic ⊑ Characteristic must be materialized"
        );
    }

    #[test]
    fn seasons_are_typed_system_characteristics() {
        let mut g = tbox_graph();
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let ty = g.lookup_iri(rdf::TYPE).unwrap();
        let autumn = g.lookup_iri(feo::AUTUMN).unwrap();
        let system = g.lookup_iri(feo::SYSTEM_CHARACTERISTIC).unwrap();
        assert!(g.contains_ids(autumn, ty, system));
    }

    #[test]
    fn internal_flags_are_set() {
        let g = tbox_graph();
        let is_internal = g.lookup_iri(feo::IS_INTERNAL).unwrap();
        let t = g.lookup(&feo_rdf::Term::boolean(true)).unwrap();
        let f = g.lookup(&feo_rdf::Term::boolean(false)).unwrap();
        let diet = g.lookup_iri(feo::DIET).unwrap();
        let season = g.lookup_iri(feo::SEASON).unwrap();
        assert!(g.contains_ids(diet, is_internal, t));
        assert!(g.contains_ids(season, is_internal, f));
    }

    #[test]
    fn disliked_food_inferred_via_inverse() {
        // The exact §III-B scenario: asserting only user dislikes x, the
        // reasoner infers x : DislikedFoodCharacteristic through the
        // inverse property and the someValuesFrom equivalence.
        let mut g = tbox_graph();
        g.insert_iris("http://e/u", rdf::TYPE, food::USER);
        g.insert_iris("http://e/u", food::DISLIKES, "http://e/okra");
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let ty = g.lookup_iri(rdf::TYPE).unwrap();
        let okra = g.lookup_iri("http://e/okra").unwrap();
        let disliked = g.lookup_iri(feo::DISLIKED_FOOD).unwrap();
        assert!(g.contains_ids(okra, ty, disliked));
        // And it is a UserCharacteristic by subclass closure.
        let uc = g.lookup_iri(feo::USER_CHARACTERISTIC).unwrap();
        assert!(g.contains_ids(okra, ty, uc));
    }

    #[test]
    fn fact_classification_via_equivalence() {
        let mut g = tbox_graph();
        // A parameter P supported by Autumn, which is present in the
        // current ecosystem.
        g.insert_iris("http://e/q", feo::HAS_PRIMARY_PARAMETER, "http://e/P");
        g.insert_iris(
            feo::AUTUMN,
            feo::IS_SUPPORTIVE_CHARACTERISTIC_OF,
            "http://e/P",
        );
        g.insert_iris(feo::AUTUMN, feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let ty = g.lookup_iri(rdf::TYPE).unwrap();
        let autumn = g.lookup_iri(feo::AUTUMN).unwrap();
        let fact = g.lookup_iri(eo::FACT).unwrap();
        assert!(g.contains_ids(autumn, ty, fact), "Autumn should be a Fact");
        // The parameter got typed feo:Parameter by the range axiom.
        let p = g.lookup_iri("http://e/P").unwrap();
        let param = g.lookup_iri(feo::PARAMETER).unwrap();
        assert!(g.contains_ids(p, ty, param));
    }

    #[test]
    fn foil_classification_both_arms() {
        let mut g = tbox_graph();
        g.insert_iris("http://e/q", feo::HAS_PRIMARY_PARAMETER, "http://e/P");
        // Arm 1: supportive but absent.
        g.insert_iris(
            feo::SUMMER,
            feo::IS_SUPPORTIVE_CHARACTERISTIC_OF,
            "http://e/P",
        );
        g.insert_iris(feo::SUMMER, feo::ABSENT_FROM, feo::CURRENT_ECOSYSTEM);
        // Arm 2: opposing and present.
        g.insert_iris(
            "http://e/broccoli",
            feo::IS_OPPOSING_CHARACTERISTIC_OF,
            "http://e/P",
        );
        g.insert_iris("http://e/broccoli", feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let ty = g.lookup_iri(rdf::TYPE).unwrap();
        let foil = g.lookup_iri(eo::FOIL).unwrap();
        let summer = g.lookup_iri(feo::SUMMER).unwrap();
        let broccoli = g.lookup_iri("http://e/broccoli").unwrap();
        assert!(
            g.contains_ids(summer, ty, foil),
            "supportive+absent is a foil"
        );
        assert!(
            g.contains_ids(broccoli, ty, foil),
            "opposing+present is a foil"
        );
        // Neither is a Fact.
        let fact = g.lookup_iri(eo::FACT).unwrap();
        assert!(!g.contains_ids(summer, ty, fact));
        assert!(!g.contains_ids(broccoli, ty, fact));
    }

    #[test]
    fn supportive_polarity_propagates_through_composition() {
        let mut g = tbox_graph();
        // soup hasIngredient squash; squash availableInSeason Autumn.
        g.insert_iris("http://e/soup", food::HAS_INGREDIENT, "http://e/squash");
        g.insert_iris("http://e/squash", food::AVAILABLE_IN_SEASON, feo::AUTUMN);
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let autumn = g.lookup_iri(feo::AUTUMN).unwrap();
        let soup = g.lookup_iri("http://e/soup").unwrap();
        let supportive = g.lookup_iri(feo::IS_SUPPORTIVE_CHARACTERISTIC_OF).unwrap();
        let has_char = g.lookup_iri(feo::HAS_CHARACTERISTIC).unwrap();
        assert!(
            g.contains_ids(autumn, supportive, soup),
            "polarity chain: autumn supports the soup through its ingredient"
        );
        assert!(
            g.contains_ids(soup, has_char, autumn),
            "transitive hasCharacteristic reaches the season"
        );
    }

    #[test]
    fn forbids_propagates_into_dishes() {
        let mut g = tbox_graph();
        // sushi hasIngredient rawSalmon; rawSalmon belongsToCategory RawFish;
        // pregnancy forbids RawFish.
        g.insert_iris("http://e/sushi", food::HAS_INGREDIENT, "http://e/rawSalmon");
        g.insert_iris(
            "http://e/rawSalmon",
            food::BELONGS_TO_CATEGORY,
            "http://e/RawFish",
        );
        g.insert_iris(feo::PREGNANCY_STATE, feo::FORBIDS, "http://e/RawFish");
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let preg = g.lookup_iri(feo::PREGNANCY_STATE).unwrap();
        let forbids = g.lookup_iri(feo::FORBIDS).unwrap();
        let salmon = g.lookup_iri("http://e/rawSalmon").unwrap();
        let sushi = g.lookup_iri("http://e/sushi").unwrap();
        assert!(
            g.contains_ids(preg, forbids, salmon),
            "category chain: forbidden category ⇒ forbidden ingredient"
        );
        assert!(
            g.contains_ids(preg, forbids, sushi),
            "ingredient chain: forbidden ingredient ⇒ forbidden dish"
        );
    }

    #[test]
    fn recommends_propagates_from_nutrients() {
        let mut g = tbox_graph();
        g.insert_iris("http://e/spinach", food::HAS_NUTRIENT, "http://e/Folate");
        g.insert_iris(feo::PREGNANCY_STATE, feo::RECOMMENDS, "http://e/Folate");
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let preg = g.lookup_iri(feo::PREGNANCY_STATE).unwrap();
        let recommends = g.lookup_iri(feo::RECOMMENDS).unwrap();
        let spinach = g.lookup_iri("http://e/spinach").unwrap();
        assert!(g.contains_ids(preg, recommends, spinach));
    }
}

#[cfg(test)]
mod hardening_tests {
    use super::*;
    use feo_owl::{InconsistencyKind, Reasoner};

    #[test]
    fn self_ingredient_is_inconsistent() {
        let mut g = tbox_graph();
        g.insert_iris(
            "http://e/OuroborosStew",
            food::HAS_INGREDIENT,
            "http://e/OuroborosStew",
        );
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(!r.is_consistent());
        assert!(r
            .inconsistencies
            .iter()
            .any(|i| i.kind == InconsistencyKind::IrreflexiveViolation));
    }

    #[test]
    fn well_formed_kg_stays_consistent_with_hardening() {
        let mut g = tbox_graph();
        g.insert_iris("http://e/soup", food::HAS_INGREDIENT, "http://e/leek");
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(r.is_consistent(), "{:?}", r.inconsistencies);
    }
}

#[cfg(test)]
mod profile_hardening_tests {
    use super::*;
    use feo_owl::{InconsistencyKind, Reasoner};

    #[test]
    fn liking_and_disliking_same_food_is_inconsistent() {
        let mut g = tbox_graph();
        g.insert_iris("http://e/u", food::LIKES, "http://e/kale");
        g.insert_iris("http://e/u", food::DISLIKES, "http://e/kale");
        let r = Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        assert!(r
            .inconsistencies
            .iter()
            .any(|i| i.kind == InconsistencyKind::DisjointPropertiesViolation));
    }
}
