//! Namespace constants for the three ontologies the paper composes:
//! the Explanation Ontology (`eo:`), the Food Explanation Ontology
//! (`feo:`), and the "What To Make" food ontology (`food:`).
//!
//! IRIs match the paper's published namespaces (`purl.org/heals/...`).

/// Explanation Ontology (Chari et al., ISWC 2020) — the fragment FEO
/// extends: explanation-type classes, `eo:Fact` / `eo:Foil`, and the
/// `eo:knowledge` grouping class the competency queries filter on.
pub mod eo {
    pub const NS: &str = "https://purl.org/heals/eo#";

    pub const EXPLANATION: &str = "https://purl.org/heals/eo#Explanation";
    pub const CASE_BASED: &str = "https://purl.org/heals/eo#CaseBasedExplanation";
    pub const CONTEXTUAL: &str = "https://purl.org/heals/eo#ContextualExplanation";
    pub const CONTRASTIVE: &str = "https://purl.org/heals/eo#ContrastiveExplanation";
    pub const COUNTERFACTUAL: &str = "https://purl.org/heals/eo#CounterfactualExplanation";
    pub const EVERYDAY: &str = "https://purl.org/heals/eo#EverydayExplanation";
    pub const SCIENTIFIC: &str = "https://purl.org/heals/eo#ScientificExplanation";
    pub const SIMULATION_BASED: &str = "https://purl.org/heals/eo#SimulationBasedExplanation";
    pub const STATISTICAL: &str = "https://purl.org/heals/eo#StatisticalExplanation";
    pub const TRACE_BASED: &str = "https://purl.org/heals/eo#TraceBasedExplanation";

    /// Grouping class for knowledge-level constructs; the paper's queries
    /// exclude subclasses of `eo:knowledge` from characteristic listings.
    pub const KNOWLEDGE: &str = "https://purl.org/heals/eo#knowledge";
    pub const FACT: &str = "https://purl.org/heals/eo#Fact";
    pub const FOIL: &str = "https://purl.org/heals/eo#Foil";

    /// Record classes from EO that FEO reuses for explanation assembly.
    pub const OBJECT_RECORD: &str = "https://purl.org/heals/eo#ObjectRecord";
    pub const KNOWLEDGE_RECORD: &str = "https://purl.org/heals/eo#KnowledgeRecord";
    pub const RECOMMENDATION: &str = "https://purl.org/heals/eo#Recommendation";
    pub const SYSTEM_RECOMMENDATION: &str = "https://purl.org/heals/eo#SystemRecommendation";

    pub const BASED_ON: &str = "https://purl.org/heals/eo#isBasedOn";
    pub const IN_RELATION_TO: &str = "https://purl.org/heals/eo#inRelationTo";
}

/// Food Explanation Ontology — the paper's contribution.
pub mod feo {
    pub const NS: &str = "https://purl.org/heals/feo#";

    // ---- Characteristic hierarchy (Figure 1) ----
    pub const CHARACTERISTIC: &str = "https://purl.org/heals/feo#Characteristic";
    pub const PARAMETER: &str = "https://purl.org/heals/feo#Parameter";
    pub const USER_CHARACTERISTIC: &str = "https://purl.org/heals/feo#UserCharacteristic";
    pub const SYSTEM_CHARACTERISTIC: &str = "https://purl.org/heals/feo#SystemCharacteristic";

    pub const LIKED_FOOD: &str = "https://purl.org/heals/feo#LikedFoodCharacteristic";
    pub const DISLIKED_FOOD: &str = "https://purl.org/heals/feo#DislikedFoodCharacteristic";
    pub const ALLERGIC_FOOD: &str = "https://purl.org/heals/feo#AllergicFoodCharacteristic";
    pub const DIET: &str = "https://purl.org/heals/feo#DietCharacteristic";
    pub const NUTRITIONAL_GOAL: &str = "https://purl.org/heals/feo#NutritionalGoalCharacteristic";
    pub const PREGNANCY: &str = "https://purl.org/heals/feo#PregnancyCharacteristic";
    pub const BUDGET: &str = "https://purl.org/heals/feo#BudgetCharacteristic";

    pub const SEASON: &str = "https://purl.org/heals/feo#SeasonCharacteristic";
    pub const LOCATION: &str = "https://purl.org/heals/feo#LocationCharacteristic";
    pub const TIME: &str = "https://purl.org/heals/feo#TimeCharacteristic";

    // ---- Question / ecosystem model ----
    pub const QUESTION: &str = "https://purl.org/heals/feo#Question";
    pub const ECOSYSTEM: &str = "https://purl.org/heals/feo#Ecosystem";
    /// The singleton individual representing the current user+system
    /// context the engine reasons about.
    pub const CURRENT_ECOSYSTEM: &str = "https://purl.org/heals/feo#CurrentEcosystem";

    // ---- Properties (Figure 2) ----
    /// Food/parameter → characteristic; `owl:TransitiveProperty`.
    pub const HAS_CHARACTERISTIC: &str = "https://purl.org/heals/feo#hasCharacteristic";
    /// Inverse of `hasCharacteristic`.
    pub const IS_CHARACTERISTIC_OF: &str = "https://purl.org/heals/feo#isCharacteristicOf";
    /// Characteristic supports the food it characterizes.
    pub const IS_SUPPORTIVE_CHARACTERISTIC_OF: &str =
        "https://purl.org/heals/feo#isSupportiveCharacteristicOf";
    /// Characteristic opposes the food it characterizes.
    pub const IS_OPPOSING_CHARACTERISTIC_OF: &str =
        "https://purl.org/heals/feo#isOpposingCharacteristicOf";
    /// `feo:forbids ⊑ isOpposingCharacteristicOf ⊓ isCharacteristicOf`
    /// (paper §III-B).
    pub const FORBIDS: &str = "https://purl.org/heals/feo#forbids";
    /// `feo:recommends ⊑ isSupportiveCharacteristicOf ⊓ isCharacteristicOf`.
    pub const RECOMMENDS: &str = "https://purl.org/heals/feo#recommends";

    pub const HAS_PARAMETER: &str = "https://purl.org/heals/feo#hasParameter";
    pub const HAS_PRIMARY_PARAMETER: &str = "https://purl.org/heals/feo#hasPrimaryParameter";
    pub const HAS_SECONDARY_PARAMETER: &str = "https://purl.org/heals/feo#hasSecondaryParameter";

    /// Characteristic holds in the current ecosystem.
    pub const PRESENT_IN: &str = "https://purl.org/heals/feo#presentIn";
    /// Characteristic contradicts the current ecosystem.
    pub const ABSENT_FROM: &str = "https://purl.org/heals/feo#absentFrom";

    /// Boolean datatype property flagging internal (food/health domain)
    /// vs. external (location, season, budget) characteristic classes.
    pub const IS_INTERNAL: &str = "https://purl.org/heals/feo#isInternal";

    /// Links a reference user to a nutritional goal they achieved —
    /// the aggregate evidence behind statistical explanations (§VI).
    pub const ACHIEVED_GOAL: &str = "https://purl.org/heals/feo#achievedGoal";

    // ---- Season individuals ----
    pub const SPRING: &str = "https://purl.org/heals/feo#Spring";
    pub const SUMMER: &str = "https://purl.org/heals/feo#Summer";
    pub const AUTUMN: &str = "https://purl.org/heals/feo#Autumn";
    pub const WINTER: &str = "https://purl.org/heals/feo#Winter";

    // ---- Pregnancy individual for the counterfactual CQ ----
    pub const PREGNANCY_STATE: &str = "https://purl.org/heals/feo#Pregnancy";

    /// The `feo:BudgetTier<n>` individual for a price tier (1..=3).
    pub fn budget_tier_iri(tier: u8) -> String {
        format!("{NS}BudgetTier{tier}")
    }
}

/// "What To Make" food ontology (`http://purl.org/heals/food`), the concise
/// food model FEO builds on, with the diet/seasonal/regional extensions
/// the paper added.
pub mod food {
    pub const NS: &str = "http://purl.org/heals/food#";

    pub const FOOD: &str = "http://purl.org/heals/food#Food";
    pub const RECIPE: &str = "http://purl.org/heals/food#Recipe";
    pub const INGREDIENT: &str = "http://purl.org/heals/food#Ingredient";
    pub const NUTRIENT: &str = "http://purl.org/heals/food#Nutrient";
    /// Food groupings like "raw fish" — not directly edible `food:Food`s.
    pub const FOOD_CATEGORY: &str = "http://purl.org/heals/food#FoodCategory";
    pub const DIET: &str = "http://purl.org/heals/food#Diet";
    pub const USER: &str = "http://purl.org/heals/food#User";
    pub const REGION: &str = "http://purl.org/heals/food#Region";

    pub const HAS_INGREDIENT: &str = "http://purl.org/heals/food#hasIngredient";
    pub const IS_INGREDIENT_OF: &str = "http://purl.org/heals/food#isIngredientOf";
    pub const HAS_NUTRIENT: &str = "http://purl.org/heals/food#hasNutrient";
    pub const IS_NUTRIENT_OF: &str = "http://purl.org/heals/food#isNutrientOf";
    pub const AVAILABLE_IN_SEASON: &str = "http://purl.org/heals/food#availableInSeason";
    pub const SEASON_OF: &str = "http://purl.org/heals/food#seasonOf";
    pub const AVAILABLE_IN_REGION: &str = "http://purl.org/heals/food#availableInRegion";
    pub const REGION_OF: &str = "http://purl.org/heals/food#regionOf";
    pub const BELONGS_TO_CATEGORY: &str = "http://purl.org/heals/food#belongsToCategory";
    pub const CATEGORY_OF: &str = "http://purl.org/heals/food#categoryOf";

    pub const LIKES: &str = "http://purl.org/heals/food#likes";
    pub const LIKED_BY: &str = "http://purl.org/heals/food#likedBy";
    pub const DISLIKES: &str = "http://purl.org/heals/food#dislikes";
    pub const DISLIKED_BY: &str = "http://purl.org/heals/food#dislikedBy";
    pub const ALLERGIC_TO: &str = "http://purl.org/heals/food#allergicTo";
    pub const ALLERGEN_OF: &str = "http://purl.org/heals/food#allergenOf";
    pub const FOLLOWS_DIET: &str = "http://purl.org/heals/food#followsDiet";
    pub const DIET_OF: &str = "http://purl.org/heals/food#dietOf";
    pub const HAS_GOAL: &str = "http://purl.org/heals/food#hasGoal";
    pub const FORBIDS_CATEGORY: &str = "http://purl.org/heals/food#forbidsCategory";

    pub const CALORIES: &str = "http://purl.org/heals/food#calories";
    pub const SERVES: &str = "http://purl.org/heals/food#serves";
    pub const PRICE_TIER: &str = "http://purl.org/heals/food#priceTier";
}

/// Standard prefix list for serializing / writing queries against FEO
/// graphs.
pub const PREFIXES: &[(&str, &str)] = &[
    ("eo", eo::NS),
    ("feo", feo::NS),
    ("food", food::NS),
    ("rdf", feo_rdf::vocab::rdf::NS),
    ("rdfs", feo_rdf::vocab::rdfs::NS),
    ("owl", feo_rdf::vocab::owl::NS),
    ("xsd", feo_rdf::vocab::xsd::NS),
];

/// The SPARQL prologue declaring [`PREFIXES`] — prepend to query bodies.
pub fn sparql_prologue() -> String {
    PREFIXES
        .iter()
        .map(|(p, ns)| format!("PREFIX {p}: <{ns}>\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_consistent() {
        assert!(eo::FACT.starts_with(eo::NS));
        assert!(feo::HAS_CHARACTERISTIC.starts_with(feo::NS));
        assert!(food::HAS_INGREDIENT.starts_with(food::NS));
    }

    #[test]
    fn prologue_declares_all_prefixes() {
        let p = sparql_prologue();
        for (name, _) in PREFIXES {
            assert!(p.contains(&format!("PREFIX {name}:")));
        }
    }
}
