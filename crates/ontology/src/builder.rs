//! A small fluent builder for writing OWL TBoxes into an RDF graph.
//!
//! Keeps the schema modules declarative: each axiom is one call, and the
//! OWL-in-RDF encoding details (restriction blank nodes, RDF lists) live
//! here once.

use feo_rdf::term::{Literal, Term};
use feo_rdf::vocab::{owl, rdf, rdfs};
use feo_rdf::{Graph, TermId};

/// TBox builder over a graph.
pub struct TBox<'g> {
    pub g: &'g mut Graph,
}

impl<'g> TBox<'g> {
    pub fn new(g: &'g mut Graph) -> Self {
        TBox { g }
    }

    fn iri(&mut self, iri: &str) -> TermId {
        self.g.intern_iri(iri)
    }

    /// Declares an `owl:Class` with a label.
    pub fn class(&mut self, iri: &str, label: &str) -> &mut Self {
        self.triple_iri(iri, rdf::TYPE, owl::CLASS);
        self.annotate(iri, rdfs::LABEL, label);
        self
    }

    /// `sub rdfs:subClassOf sup` (both named).
    pub fn sub_class(&mut self, sub: &str, sup: &str) -> &mut Self {
        self.triple_iri(sub, rdfs::SUB_CLASS_OF, sup)
    }

    /// Declares an `owl:ObjectProperty`.
    pub fn object_property(&mut self, iri: &str, label: &str) -> &mut Self {
        self.triple_iri(iri, rdf::TYPE, owl::OBJECT_PROPERTY);
        self.annotate(iri, rdfs::LABEL, label);
        self
    }

    /// Declares an `owl:DatatypeProperty`.
    pub fn datatype_property(&mut self, iri: &str, label: &str) -> &mut Self {
        self.triple_iri(iri, rdf::TYPE, owl::DATATYPE_PROPERTY);
        self.annotate(iri, rdfs::LABEL, label);
        self
    }

    pub fn sub_property(&mut self, sub: &str, sup: &str) -> &mut Self {
        self.triple_iri(sub, rdfs::SUB_PROPERTY_OF, sup)
    }

    pub fn inverse(&mut self, a: &str, b: &str) -> &mut Self {
        self.triple_iri(a, owl::INVERSE_OF, b)
    }

    pub fn transitive(&mut self, p: &str) -> &mut Self {
        self.triple_iri(p, rdf::TYPE, owl::TRANSITIVE_PROPERTY)
    }

    pub fn symmetric(&mut self, p: &str) -> &mut Self {
        self.triple_iri(p, rdf::TYPE, owl::SYMMETRIC_PROPERTY)
    }

    pub fn functional(&mut self, p: &str) -> &mut Self {
        self.triple_iri(p, rdf::TYPE, owl::FUNCTIONAL_PROPERTY)
    }

    pub fn domain(&mut self, p: &str, c: &str) -> &mut Self {
        self.triple_iri(p, rdfs::DOMAIN, c)
    }

    pub fn range(&mut self, p: &str, c: &str) -> &mut Self {
        self.triple_iri(p, rdfs::RANGE, c)
    }

    pub fn disjoint(&mut self, a: &str, b: &str) -> &mut Self {
        self.triple_iri(a, owl::DISJOINT_WITH, b)
    }

    /// `owl:propertyChainAxiom`: `chain` (in order) entails `p`.
    pub fn chain(&mut self, p: &str, chain: &[&str]) -> &mut Self {
        let members: Vec<TermId> = chain.iter().map(|c| self.g.intern_iri(c)).collect();
        let head = self.g.write_list(&members);
        let p = self.iri(p);
        let pred = self.iri(owl::PROPERTY_CHAIN_AXIOM);
        self.g.insert_ids(p, pred, head);
        self
    }

    /// `rdf:type` assertion for an individual.
    pub fn individual(&mut self, iri: &str, class: &str, label: &str) -> &mut Self {
        self.triple_iri(iri, rdf::TYPE, class);
        self.annotate(iri, rdfs::LABEL, label);
        self
    }

    /// Plain object triple between IRIs.
    pub fn triple_iri(&mut self, s: &str, p: &str, o: &str) -> &mut Self {
        self.g.insert_iris(s, p, o);
        self
    }

    /// Boolean datatype assertion.
    pub fn boolean(&mut self, s: &str, p: &str, v: bool) -> &mut Self {
        let s = self.iri(s);
        let p = self.iri(p);
        let o = self.g.intern(&Term::boolean(v));
        self.g.insert_ids(s, p, o);
        self
    }

    /// String annotation (label/comment).
    pub fn annotate(&mut self, s: &str, p: &str, text: &str) -> &mut Self {
        let s = self.iri(s);
        let p = self.iri(p);
        let o = self.g.intern(&Term::Literal(Literal::simple(text)));
        self.g.insert_ids(s, p, o);
        self
    }

    /// Builds a `someValuesFrom` restriction node and returns its id.
    pub fn some_values_from(&mut self, property: &str, filler: &str) -> TermId {
        let node = self.g.fresh_bnode();
        let ty = self.iri(rdf::TYPE);
        let restriction = self.iri(owl::RESTRICTION);
        let on_prop = self.iri(owl::ON_PROPERTY);
        let svf = self.iri(owl::SOME_VALUES_FROM);
        let p = self.iri(property);
        let f = self.iri(filler);
        self.g.insert_ids(node, ty, restriction);
        self.g.insert_ids(node, on_prop, p);
        self.g.insert_ids(node, svf, f);
        node
    }

    /// Builds a `hasValue` restriction node.
    pub fn has_value(&mut self, property: &str, value: &str) -> TermId {
        let node = self.g.fresh_bnode();
        let ty = self.iri(rdf::TYPE);
        let restriction = self.iri(owl::RESTRICTION);
        let on_prop = self.iri(owl::ON_PROPERTY);
        let hv = self.iri(owl::HAS_VALUE);
        let p = self.iri(property);
        let v = self.iri(value);
        self.g.insert_ids(node, ty, restriction);
        self.g.insert_ids(node, on_prop, p);
        self.g.insert_ids(node, hv, v);
        node
    }

    /// Builds an `intersectionOf` class node from member nodes.
    pub fn intersection(&mut self, members: &[TermId]) -> TermId {
        let node = self.g.fresh_bnode();
        let head = self.g.write_list(members);
        let ty = self.iri(rdf::TYPE);
        let class = self.iri(owl::CLASS);
        let inter = self.iri(owl::INTERSECTION_OF);
        self.g.insert_ids(node, ty, class);
        self.g.insert_ids(node, inter, head);
        node
    }

    /// Builds a `unionOf` class node from member nodes.
    pub fn union(&mut self, members: &[TermId]) -> TermId {
        let node = self.g.fresh_bnode();
        let head = self.g.write_list(members);
        let ty = self.iri(rdf::TYPE);
        let class = self.iri(owl::CLASS);
        let uni = self.iri(owl::UNION_OF);
        self.g.insert_ids(node, ty, class);
        self.g.insert_ids(node, uni, head);
        node
    }

    /// `named owl:equivalentClass <expression node>`.
    pub fn equivalent_to_node(&mut self, named: &str, node: TermId) -> &mut Self {
        let n = self.iri(named);
        let eq = self.iri(owl::EQUIVALENT_CLASS);
        self.g.insert_ids(n, eq, node);
        self
    }

    /// Interns a named class reference for use inside expression builders.
    pub fn named(&mut self, iri: &str) -> TermId {
        self.iri(iri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_owl::{extract_axioms, Axiom, ClassExpr};

    #[test]
    fn builder_emits_extractable_axioms() {
        let mut g = Graph::new();
        {
            let mut b = TBox::new(&mut g);
            b.class("http://e/A", "A")
                .class("http://e/B", "B")
                .sub_class("http://e/A", "http://e/B")
                .object_property("http://e/p", "p")
                .transitive("http://e/p")
                .inverse("http://e/p", "http://e/q");
            let some = b.some_values_from("http://e/p", "http://e/B");
            let hv = b.has_value("http://e/q", "http://e/v");
            let inter = b.intersection(&[some, hv]);
            b.equivalent_to_node("http://e/C", inter);
            b.chain("http://e/p", &["http://e/p", "http://e/q"]);
        }
        let ont = extract_axioms(&g);
        assert!(ont.warnings.is_empty(), "{:?}", ont.warnings);
        assert_eq!(ont.count_of(|a| matches!(a, Axiom::SubClassOf(_, _))), 1);
        assert_eq!(
            ont.count_of(|a| matches!(a, Axiom::TransitiveProperty(_))),
            1
        );
        assert_eq!(ont.count_of(|a| matches!(a, Axiom::InverseOf(_, _))), 1);
        assert_eq!(ont.count_of(|a| matches!(a, Axiom::PropertyChain(_, _))), 1);
        assert!(ont.axioms.iter().any(|a| matches!(
            a,
            Axiom::EquivalentClasses(_, ClassExpr::IntersectionOf(m)) if m.len() == 2
        ) || matches!(
            a,
            Axiom::EquivalentClasses(ClassExpr::IntersectionOf(m), _) if m.len() == 2
        )));
    }

    #[test]
    fn union_expression_round_trips() {
        let mut g = Graph::new();
        {
            let mut b = TBox::new(&mut g);
            let x = b.named("http://e/X");
            let y = b.named("http://e/Y");
            let u = b.union(&[x, y]);
            b.equivalent_to_node("http://e/Z", u);
        }
        let ont = extract_axioms(&g);
        assert!(ont.axioms.iter().any(|a| matches!(
            a,
            Axiom::EquivalentClasses(_, ClassExpr::UnionOf(m))
            | Axiom::EquivalentClasses(ClassExpr::UnionOf(m), _) if m.len() == 2
        )));
    }
}
