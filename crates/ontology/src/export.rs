//! Turtle export of the ontology stack — the analogue of the paper's
//! published `.ttl` resource files.

use feo_rdf::turtle::write_turtle;
use feo_rdf::Graph;

use crate::ns::PREFIXES;
use crate::schema;

/// Serializes an FEO-stack graph as Turtle with the standard prefixes.
pub fn to_turtle(g: &Graph) -> String {
    write_turtle(g, PREFIXES)
}

/// The full TBox stack as a Turtle document.
pub fn tboxes_turtle() -> String {
    let mut g = Graph::new();
    schema::load_tboxes(&mut g);
    to_turtle(&g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_rdf::turtle::parse_turtle_into;

    #[test]
    fn turtle_export_round_trips() {
        let mut original = Graph::new();
        schema::load_tboxes(&mut original);
        let ttl = tboxes_turtle();
        let mut reparsed = Graph::new();
        parse_turtle_into(&ttl, &mut reparsed, &Default::default()).expect("export parses");
        assert_eq!(original.len(), reparsed.len());
        for t in original.iter_triples() {
            assert!(reparsed.contains(&t), "missing after round trip: {t}");
        }
    }

    #[test]
    fn export_uses_prefixes() {
        let ttl = tboxes_turtle();
        assert!(ttl.contains("@prefix feo:"));
        assert!(ttl.contains("feo:Characteristic"));
        assert!(ttl.contains("food:hasIngredient"));
    }
}
