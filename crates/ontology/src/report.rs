//! Introspection helpers that regenerate the paper's schema figures from
//! the live ontology graph (rather than from hard-coded text), so the
//! rendered figures are guaranteed to match the TBox actually loaded.
//!
//! - Figure 1: the subclass tree under `feo:Characteristic`;
//! - Figure 2: the property lattice (super-properties, inverses,
//!   transitivity, chains).

use feo_rdf::vocab::{owl, rdf, rdfs};
use feo_rdf::{Graph, TermId};

use crate::ns::feo;

/// One node of the characteristic tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassNode {
    pub iri: String,
    pub label: String,
    pub children: Vec<ClassNode>,
}

impl ClassNode {
    /// Renders the tree as indented ASCII (the Figure 1 reproduction).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.label);
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// Total node count (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ClassNode::size).sum::<usize>()
    }

    /// Depth-first search for a node by label.
    pub fn find(&self, label: &str) -> Option<&ClassNode> {
        if self.label == label {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(label))
    }
}

/// Builds the subclass tree rooted at `feo:Characteristic` from *direct*
/// (asserted) subclass edges, ignoring the materialized closure so the
/// tree shape matches the authored hierarchy.
pub fn characteristic_tree(g: &Graph) -> Option<ClassNode> {
    let root = g.lookup_iri(feo::CHARACTERISTIC)?;
    let sco = g.lookup_iri(rdfs::SUB_CLASS_OF)?;
    Some(build_node(g, root, sco, &mut Vec::new()))
}

fn build_node(g: &Graph, class: TermId, sco: TermId, seen: &mut Vec<TermId>) -> ClassNode {
    seen.push(class);
    let mut children = Vec::new();
    for sub in g.subjects(sco, class) {
        if seen.contains(&sub) || !g.term(sub).is_iri() {
            continue;
        }
        // Keep only direct children: skip subs that also have an
        // intermediate superclass below `class`.
        if !is_direct_subclass(g, sub, class, sco) {
            continue;
        }
        children.push(build_node(g, sub, sco, seen));
    }
    seen.pop();
    children.sort_by(|a, b| a.label.cmp(&b.label));
    ClassNode {
        iri: match g.term(class) {
            feo_rdf::Term::Iri(i) => i.as_str().to_string(),
            other => other.to_string(),
        },
        label: g.term_name(class),
        children,
    }
}

/// True when no other named class sits strictly between sub and sup.
fn is_direct_subclass(g: &Graph, sub: TermId, sup: TermId, sco: TermId) -> bool {
    for mid in g.objects(sub, sco) {
        if mid == sub || mid == sup || !g.term(mid).is_iri() {
            continue;
        }
        if g.contains_ids(mid, sco, sup) {
            return false;
        }
    }
    true
}

/// One row of the property-lattice report (Figure 2 reproduction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyInfo {
    pub local: String,
    pub super_properties: Vec<String>,
    pub inverse_of: Vec<String>,
    pub transitive: bool,
    pub chains: Vec<Vec<String>>,
}

/// Collects every declared object property with its lattice relations,
/// sorted by name.
pub fn property_lattice(g: &Graph) -> Vec<PropertyInfo> {
    let Some(ty) = g.lookup_iri(rdf::TYPE) else {
        return Vec::new();
    };
    let Some(obj_prop) = g.lookup_iri(owl::OBJECT_PROPERTY) else {
        return Vec::new();
    };
    let spo = g.lookup_iri(rdfs::SUB_PROPERTY_OF);
    let inv = g.lookup_iri(owl::INVERSE_OF);
    let trans = g.lookup_iri(owl::TRANSITIVE_PROPERTY);
    let chain = g.lookup_iri(owl::PROPERTY_CHAIN_AXIOM);

    let mut out = Vec::new();
    for p in g.instances_of(obj_prop) {
        let mut info = PropertyInfo {
            local: g.term_name(p),
            super_properties: Vec::new(),
            inverse_of: Vec::new(),
            transitive: false,
            chains: Vec::new(),
        };
        if let Some(spo) = spo {
            for sup in g.objects(p, spo) {
                if sup != p {
                    info.super_properties.push(g.term_name(sup));
                }
            }
        }
        if let Some(inv) = inv {
            for other in g.objects(p, inv) {
                info.inverse_of.push(g.term_name(other));
            }
            for other in g.subjects(inv, p) {
                let name = g.term_name(other);
                if !info.inverse_of.contains(&name) {
                    info.inverse_of.push(name);
                }
            }
        }
        if let Some(trans) = trans {
            info.transitive = g.contains_ids(p, ty, trans);
        }
        if let Some(chain) = chain {
            for head in g.objects(p, chain) {
                if let Some(items) = g.read_list(head) {
                    info.chains
                        .push(items.into_iter().map(|i| g.term_name(i)).collect());
                }
            }
        }
        info.super_properties.sort();
        info.inverse_of.sort();
        out.push(info);
    }
    out.sort_by(|a, b| a.local.cmp(&b.local));
    out.dedup_by(|a, b| a.local == b.local);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::tbox_graph;

    #[test]
    fn figure1_tree_matches_paper_hierarchy() {
        let g = tbox_graph();
        let tree = characteristic_tree(&g).expect("root exists");
        assert_eq!(tree.label, "Characteristic");
        // The three main subclasses from §III-A.
        let top: Vec<&str> = tree.children.iter().map(|c| c.label.as_str()).collect();
        assert!(top.contains(&"Parameter"));
        assert!(top.contains(&"UserCharacteristic"));
        assert!(top.contains(&"SystemCharacteristic"));
        // Season sits under System, AllergicFood under User.
        let system = tree.find("SystemCharacteristic").unwrap();
        assert!(system.find("SeasonCharacteristic").is_some());
        let user = tree.find("UserCharacteristic").unwrap();
        assert!(user.find("AllergicFoodCharacteristic").is_some());
        assert!(tree.size() >= 14);
    }

    #[test]
    fn figure1_tree_uses_direct_edges_even_after_reasoning() {
        let mut g = tbox_graph();
        feo_owl::Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let tree = characteristic_tree(&g).expect("root exists");
        // Materialized closure adds Season ⊑ Characteristic, but the tree
        // must still place Season under SystemCharacteristic, not the root.
        let direct: Vec<&str> = tree.children.iter().map(|c| c.label.as_str()).collect();
        assert!(!direct.contains(&"SeasonCharacteristic"));
        assert!(tree
            .find("SystemCharacteristic")
            .unwrap()
            .find("SeasonCharacteristic")
            .is_some());
    }

    #[test]
    fn figure2_lattice_reports_key_relations() {
        let g = tbox_graph();
        let props = property_lattice(&g);
        let get = |name: &str| props.iter().find(|p| p.local == name).unwrap();

        let has_char = get("hasCharacteristic");
        assert!(has_char.transitive);
        assert!(has_char
            .inverse_of
            .contains(&"isCharacteristicOf".to_string()));

        let forbids = get("forbids");
        assert!(forbids
            .super_properties
            .contains(&"isOpposingCharacteristicOf".to_string()));
        assert!(forbids
            .super_properties
            .contains(&"isCharacteristicOf".to_string()));
        assert!(!forbids.chains.is_empty());

        let supportive = get("isSupportiveCharacteristicOf");
        assert!(supportive
            .chains
            .iter()
            .any(|c| c.len() == 2 && c[1] == "isCharacteristicOf"));
    }

    #[test]
    fn render_is_indented() {
        let g = tbox_graph();
        let tree = characteristic_tree(&g).unwrap();
        let text = tree.render();
        assert!(text.starts_with("Characteristic\n"));
        assert!(text.contains("\n  SystemCharacteristic\n"));
        assert!(text.contains("\n    SeasonCharacteristic\n"));
    }
}
