//! # feo-ontology
//!
//! The ontologies of the FEO paper, encoded programmatically:
//!
//! - [`ns`] — namespace constants (`eo:`, `feo:`, `food:`) and the shared
//!   SPARQL prologue;
//! - [`schema`] — TBox builders for the Explanation Ontology fragment,
//!   the Food Explanation Ontology (Figures 1–3 of the paper), and the
//!   "What To Make" food ontology with FEO's diet/season/region
//!   extensions;
//! - [`builder`] — the fluent OWL-in-RDF builder the schemas use;
//! - [`report`] — regenerates Figure 1 (characteristic tree) and
//!   Figure 2 (property lattice) from the live graph;
//! - [`export`] — Turtle serialization of the TBoxes.
//!
//! ```
//! use feo_ontology::schema::tbox_graph;
//! use feo_owl::Reasoner;
//!
//! let mut g = tbox_graph();
//! let result = Reasoner::new().materialize(&mut g, &Default::default())?;
//! assert!(result.is_consistent());
//! # Ok::<(), feo_owl::ReasonerError>(())
//! ```

pub mod builder;
pub mod export;
pub mod ns;
pub mod report;
pub mod schema;

pub use schema::{eo_tbox, feo_tbox, food_tbox, load_tboxes, tbox_graph};
