//! Property tests for the recommenders: constraint respect, trace
//! completeness, group-coach invariants, and ranking determinism over
//! random KGs and profiles.

use feo_foodkg::{random_profiles, synthetic, FoodKg, Season, SyntheticConfig, SystemContext};
use feo_recommender::{GroupCoach, HealthCoach, Recommender};
use proptest::prelude::*;

fn arb_kg() -> impl Strategy<Value = FoodKg> {
    (15usize..40, 12usize..30, any::<u64>()).prop_map(|(recipes, ingredients, seed)| {
        synthetic(&SyntheticConfig {
            recipes,
            ingredients,
            seed,
            ..Default::default()
        })
    })
}

fn arb_season() -> impl Strategy<Value = Season> {
    prop_oneof![
        Just(Season::Spring),
        Just(Season::Summer),
        Just(Season::Autumn),
        Just(Season::Winter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every surviving recommendation has only non-filter trace steps,
    /// every elimination is a filter step, and the two partition the KG.
    #[test]
    fn trace_steps_partition_cleanly(kg in arb_kg(), seed in any::<u64>(), season in arb_season()) {
        let user = random_profiles(&kg, 1, seed).pop().unwrap();
        let coach = HealthCoach::new(&kg);
        let set = coach.recommend(&user, &SystemContext::new(season), kg.recipes.len());
        for rec in &set.recommendations {
            for step in &rec.trace {
                prop_assert!(!step.is_filter(), "filter step in survivor trace: {step}");
                prop_assert_eq!(step.recipe(), rec.recipe_id.as_str());
            }
        }
        for step in &set.eliminated {
            prop_assert!(step.is_filter());
        }
        prop_assert_eq!(
            set.recommendations.len() + set.eliminated.len(),
            kg.recipes.len()
        );
    }

    /// Group recommendations never include a dish any member's individual
    /// run would eliminate, and group scores are bounded by the members'
    /// individual scores.
    #[test]
    fn group_respects_every_member(kg in arb_kg(), seed in any::<u64>(), season in arb_season()) {
        let members = random_profiles(&kg, 3, seed);
        let ctx = SystemContext::new(season);
        let coach = HealthCoach::new(&kg);
        let individual: Vec<_> = members
            .iter()
            .map(|m| coach.recommend(m, &ctx, kg.recipes.len()))
            .collect();
        let group = GroupCoach::new(&kg).recommend(&members, &ctx, kg.recipes.len());
        for rec in &group.recommendations {
            for ind in &individual {
                prop_assert!(
                    ind.elimination(&rec.recipe_id).is_none(),
                    "group surfaced {} despite a member's veto",
                    rec.recipe_id
                );
            }
            let min = individual
                .iter()
                .filter_map(|i| i.get(&rec.recipe_id))
                .map(|r| r.score)
                .fold(f64::INFINITY, f64::min);
            let max = individual
                .iter()
                .filter_map(|i| i.get(&rec.recipe_id))
                .map(|r| r.score)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(rec.score >= min - 1e-9 && rec.score <= max + 1e-9,
                "average score out of member bounds");
        }
    }

    /// Rankings are deterministic and k-prefix-stable: top-k is a prefix
    /// of top-(k+5).
    #[test]
    fn topk_is_prefix_stable(kg in arb_kg(), seed in any::<u64>(), k in 1usize..10) {
        let user = random_profiles(&kg, 1, seed).pop().unwrap();
        let ctx = SystemContext::new(Season::Autumn);
        let coach = HealthCoach::new(&kg);
        let small = coach.recommend(&user, &ctx, k);
        let large = coach.recommend(&user, &ctx, k + 5);
        let small_ids: Vec<_> = small.recommendations.iter().map(|r| &r.recipe_id).collect();
        let large_ids: Vec<_> = large.recommendations.iter().take(small_ids.len()).collect::<Vec<_>>()
            .iter().map(|r| &r.recipe_id).collect();
        prop_assert_eq!(small_ids, large_ids);
    }
}
