//! # feo-recommender
//!
//! The "Health Coach" recommender simulator — the substitute for the
//! closed Health Coach application \[8\] whose recommendations the paper's
//! competency questions explain. FEO is explicitly *post-hoc* and
//! "recommender system agnostic" (§I), so any recommender that emits
//! `(user, recommendation, trace)` drives the explanation pipeline
//! identically; this one combines hard constraint filtering (allergies,
//! dislikes, diet, pregnancy) with content scoring (liked-ingredient
//! overlap, nutritional goals, seasonality, budget) and records a full
//! reasoning trace, which also feeds FEO's trace-based explanations.
//!
//! A popularity baseline ([`PopularityRecommender`]) mirrors the
//! non-personalized, non-explainable systems the paper's related-work
//! section contrasts against.

pub mod coach;
pub mod group;
pub mod trace;

pub use coach::{HealthCoach, PopularityRecommender, Recommender, Weights};
pub use group::{GroupCoach, GroupRecommendationSet};
pub use trace::{Recommendation, RecommendationSet, TraceStep};
