//! Group recommendation — the paper's introduction motivates exactly
//! this: "the seafood allergy of one family member may preclude recipes
//! including shrimp to be recommended to the whole group" (§I).
//!
//! The group recommender applies every member's hard constraints (any
//! member's allergy, dislike, diet, or pregnancy restriction eliminates a
//! dish for the whole group) and averages the members' content scores for
//! the survivors. Eliminations record *whose* constraint fired, so the
//! explanation layer can answer "why can't we have Shrimp Scampi?" with
//! the responsible member.

use feo_foodkg::{FoodKg, SystemContext, UserProfile};

use crate::coach::{HealthCoach, Recommender, Weights};
use crate::trace::{Recommendation, RecommendationSet, TraceStep};

/// A recommendation set where every elimination is attributed to the
/// member whose constraint fired.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupRecommendationSet {
    /// Ranked survivors, best average score first.
    pub recommendations: Vec<Recommendation>,
    /// `(member id, elimination step)` pairs.
    pub eliminated: Vec<(String, TraceStep)>,
}

impl GroupRecommendationSet {
    pub fn top(&self) -> Option<&str> {
        self.recommendations.first().map(|r| r.recipe_id.as_str())
    }

    pub fn get(&self, recipe_id: &str) -> Option<&Recommendation> {
        self.recommendations
            .iter()
            .find(|r| r.recipe_id == recipe_id)
    }

    /// The first recorded veto of this recipe, if any.
    pub fn veto(&self, recipe_id: &str) -> Option<(&str, &TraceStep)> {
        self.vetoes(recipe_id).into_iter().next()
    }

    /// Every member's veto of this recipe.
    pub fn vetoes(&self, recipe_id: &str) -> Vec<(&str, &TraceStep)> {
        self.eliminated
            .iter()
            .filter(|(_, s)| s.recipe() == recipe_id)
            .map(|(m, s)| (m.as_str(), s))
            .collect()
    }

    /// Renders the veto as a sentence ("Shrimp Scampi was excluded
    /// because dana: removed ShrimpScampi: contains allergen Shrimp").
    pub fn veto_sentence(&self, recipe_id: &str) -> Option<String> {
        self.veto(recipe_id)
            .map(|(member, step)| format!("excluded for {member}: {step}"))
    }
}

/// Recommends for a whole group over a shared context.
pub struct GroupCoach<'kg> {
    kg: &'kg FoodKg,
    weights: Weights,
}

impl<'kg> GroupCoach<'kg> {
    pub fn new(kg: &'kg FoodKg) -> Self {
        GroupCoach {
            kg,
            weights: Weights::default(),
        }
    }

    pub fn with_weights(kg: &'kg FoodKg, weights: Weights) -> Self {
        GroupCoach { kg, weights }
    }

    /// Ranks recipes acceptable to *every* member, scored by the mean of
    /// the members' individual scores.
    pub fn recommend(
        &self,
        members: &[UserProfile],
        ctx: &SystemContext,
        k: usize,
    ) -> GroupRecommendationSet {
        let mut set = GroupRecommendationSet::default();
        if members.is_empty() {
            return set;
        }
        // One per-member coach run gives both constraints and scores.
        let coach = HealthCoach::with_weights(self.kg, self.weights.clone());
        let individual: Vec<(&UserProfile, RecommendationSet)> = members
            .iter()
            .map(|m| (m, coach.recommend(m, ctx, self.kg.recipes.len())))
            .collect();

        let mut scored: Vec<Recommendation> = Vec::new();
        for recipe in &self.kg.recipes {
            // Any member's elimination vetoes the dish for the group; all
            // members' vetoes are recorded so explanations can name every
            // objection, not just the first.
            let mut vetoed = false;
            for (member, result) in &individual {
                if let Some(step) = result.elimination(&recipe.id) {
                    set.eliminated.push((member.id.clone(), step.clone()));
                    vetoed = true;
                }
            }
            if vetoed {
                continue;
            }
            let mut total = 0.0;
            let mut trace: Vec<TraceStep> = Vec::new();
            for (_, result) in &individual {
                if let Some(rec) = result.get(&recipe.id) {
                    total += rec.score;
                    for step in &rec.trace {
                        if !trace.contains(step) {
                            trace.push(step.clone());
                        }
                    }
                }
            }
            scored.push(Recommendation {
                recipe_id: recipe.id.clone(),
                score: total / members.len() as f64,
                trace,
            });
        }
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.recipe_id.cmp(&b.recipe_id))
        });
        scored.truncate(k);
        set.recommendations = scored;
        set
    }
}

impl Recommender for GroupCoach<'_> {
    fn name(&self) -> &str {
        "group-coach"
    }

    /// Single-user adapter: a group of one behaves like the individual
    /// coach (modulo attribution plumbing).
    fn recommend(&self, user: &UserProfile, ctx: &SystemContext, k: usize) -> RecommendationSet {
        let group = GroupCoach::recommend(self, std::slice::from_ref(user), ctx, k);
        RecommendationSet {
            recommendations: group.recommendations,
            eliminated: group.eliminated.into_iter().map(|(_, s)| s).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_foodkg::{curated, Season};

    fn family() -> Vec<UserProfile> {
        vec![
            UserProfile::new("ana").likes(&["ShrimpScampi", "PastaPrimavera"]),
            UserProfile::new("ben")
                .likes(&["LentilSoup"])
                .diet("Vegetarian"),
            UserProfile::new("dana").allergies(&["Shrimp"]),
        ]
    }

    #[test]
    fn paper_intro_scenario_shrimp_vetoed_for_group() {
        // "the seafood allergy of one family member may preclude recipes
        // including shrimp to be recommended to the whole group" (§I).
        let kg = curated();
        let group = GroupCoach::new(&kg);
        let set = group.recommend(&family(), &SystemContext::new(Season::Autumn), 20);
        assert!(set.get("ShrimpScampi").is_none(), "shrimp dish vetoed");
        let vetoes = set.vetoes("ShrimpScampi");
        // Dana's allergy is among the recorded objections (Ben's
        // vegetarian diet also vetoes the shellfish dish).
        assert!(
            vetoes.iter().any(|(m, step)| *m == "dana"
                && matches!(step, TraceStep::FilteredByAllergy { allergen, .. } if allergen == "Shrimp")),
            "{vetoes:?}"
        );
        assert!(set.veto_sentence("ShrimpScampi").is_some());
    }

    #[test]
    fn all_member_constraints_apply() {
        let kg = curated();
        let group = GroupCoach::new(&kg);
        let set = group.recommend(&family(), &SystemContext::new(Season::Autumn), 40);
        // Ben is vegetarian: meat dishes are vetoed too.
        assert!(set.get("BeefStew").is_none());
        assert!(set.vetoes("BeefStew").iter().any(|(m, _)| *m == "ben"));
        // Survivors violate nobody's constraints.
        for r in &set.recommendations {
            let recipe = kg.recipe(&r.recipe_id).unwrap();
            assert!(!recipe.ingredients.contains(&"Shrimp".to_string()));
            let cats = kg.recipe_categories(recipe);
            assert!(!cats.contains(&"Meat".to_string()));
        }
    }

    #[test]
    fn scores_average_member_preferences() {
        let kg = curated();
        let group = GroupCoach::new(&kg);
        let ctx = SystemContext::new(Season::Autumn);
        // Two members both liking the same dish outrank one liking it.
        let both = vec![
            UserProfile::new("a").likes(&["LentilSoup"]),
            UserProfile::new("b").likes(&["LentilSoup"]),
        ];
        let one = vec![
            UserProfile::new("a").likes(&["LentilSoup"]),
            UserProfile::new("b"),
        ];
        let s_both = group
            .recommend(&both, &ctx, 40)
            .get("LentilSoup")
            .unwrap()
            .score;
        let s_one = group
            .recommend(&one, &ctx, 40)
            .get("LentilSoup")
            .unwrap()
            .score;
        assert!(s_both > s_one);
    }

    #[test]
    fn group_of_one_matches_individual_coach() {
        let kg = curated();
        let user = UserProfile::new("solo")
            .likes(&["KaleQuinoaBowl"])
            .allergies(&["Peanuts"]);
        let ctx = SystemContext::new(Season::Autumn);
        let solo = HealthCoach::new(&kg).recommend(&user, &ctx, 10);
        let group = GroupCoach::new(&kg);
        let as_group = Recommender::recommend(&group, &user, &ctx, 10);
        let solo_ids: Vec<_> = solo.recommendations.iter().map(|r| &r.recipe_id).collect();
        let group_ids: Vec<_> = as_group
            .recommendations
            .iter()
            .map(|r| &r.recipe_id)
            .collect();
        assert_eq!(solo_ids, group_ids);
    }

    #[test]
    fn empty_group_yields_nothing() {
        let kg = curated();
        let set = GroupCoach::new(&kg).recommend(&[], &SystemContext::new(Season::Autumn), 5);
        assert!(set.recommendations.is_empty());
        assert!(set.top().is_none());
    }
}
