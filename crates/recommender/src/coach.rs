//! The Health Coach recommender and the popularity baseline.

use std::collections::HashMap;

use feo_foodkg::{FoodKg, SystemContext, UserProfile};

use crate::trace::{Recommendation, RecommendationSet, TraceStep};

/// A recommender that FEO can explain post-hoc. The trait keeps the
/// explanation engine recommender-agnostic, as the paper requires.
pub trait Recommender {
    fn name(&self) -> &str;
    fn recommend(&self, user: &UserProfile, ctx: &SystemContext, k: usize) -> RecommendationSet;
}

/// Scoring weights for [`HealthCoach`].
#[derive(Debug, Clone)]
pub struct Weights {
    pub direct_like: f64,
    pub like_overlap_per_ingredient: f64,
    pub goal_nutrient: f64,
    pub seasonal: f64,
    pub regional: f64,
    pub price_penalty_per_tier: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            direct_like: 2.0,
            like_overlap_per_ingredient: 0.5,
            goal_nutrient: 1.0,
            seasonal: 1.0,
            regional: 0.5,
            price_penalty_per_tier: 0.25,
        }
    }
}

/// The constraint-filtering + content-scoring recommender.
pub struct HealthCoach<'kg> {
    kg: &'kg FoodKg,
    weights: Weights,
}

impl<'kg> HealthCoach<'kg> {
    pub fn new(kg: &'kg FoodKg) -> Self {
        HealthCoach {
            kg,
            weights: Weights::default(),
        }
    }

    pub fn with_weights(kg: &'kg FoodKg, weights: Weights) -> Self {
        HealthCoach { kg, weights }
    }

    /// Hard-constraint check; returns the elimination step if the recipe
    /// must be excluded for this user.
    fn check_constraints(&self, user: &UserProfile, recipe_id: &str) -> Option<TraceStep> {
        let recipe = self.kg.recipe(recipe_id)?;
        // Dislike.
        if user.dislikes.iter().any(|d| d == recipe_id) {
            return Some(TraceStep::FilteredByDislike {
                recipe: recipe_id.to_string(),
            });
        }
        // Allergy: any allergen among the ingredients.
        for allergen in &user.allergies {
            if recipe.ingredients.iter().any(|i| i == allergen) {
                return Some(TraceStep::FilteredByAllergy {
                    recipe: recipe_id.to_string(),
                    allergen: allergen.clone(),
                });
            }
        }
        let categories = self.kg.recipe_categories(recipe);
        // Diet.
        if let Some(diet_id) = &user.diet {
            if let Some(diet) = self.kg.diet(diet_id) {
                if let Some(cat) = categories
                    .iter()
                    .find(|c| diet.forbids_categories.contains(c))
                {
                    return Some(TraceStep::FilteredByDiet {
                        recipe: recipe_id.to_string(),
                        diet: diet_id.clone(),
                        category: cat.clone(),
                    });
                }
            }
        }
        // Pregnancy: raw fish is out (the paper's §V-C guidance).
        if user.pregnant && categories.iter().any(|c| c == "RawFish") {
            return Some(TraceStep::FilteredByPregnancy {
                recipe: recipe_id.to_string(),
                category: "RawFish".to_string(),
            });
        }
        None
    }

    /// Scores one surviving recipe, returning the score and its trace.
    fn score(
        &self,
        user: &UserProfile,
        ctx: &SystemContext,
        recipe_id: &str,
    ) -> (f64, Vec<TraceStep>) {
        let w = &self.weights;
        let mut score = 1.0;
        let mut trace = Vec::new();
        let Some(recipe) = self.kg.recipe(recipe_id) else {
            return (0.0, trace);
        };

        if user.likes.iter().any(|l| l == recipe_id) {
            score += w.direct_like;
            trace.push(TraceStep::ScoredDirectLike {
                recipe: recipe_id.to_string(),
            });
        }
        // Ingredient overlap with each liked recipe.
        for liked_id in &user.likes {
            if liked_id == recipe_id {
                continue;
            }
            let Some(liked) = self.kg.recipe(liked_id) else {
                continue;
            };
            let shared = recipe
                .ingredients
                .iter()
                .filter(|i| liked.ingredients.contains(i))
                .count();
            if shared > 0 {
                score += w.like_overlap_per_ingredient * shared as f64;
                trace.push(TraceStep::ScoredLikeOverlap {
                    recipe: recipe_id.to_string(),
                    liked: liked_id.clone(),
                    shared_ingredients: shared,
                });
            }
        }
        // Goal nutrients.
        let nutrients = self.kg.recipe_nutrients(recipe);
        for goal_id in &user.goals {
            if let Some(goal) = self.kg.goal(goal_id) {
                if nutrients.contains(&goal.wants_nutrient) {
                    score += w.goal_nutrient;
                    trace.push(TraceStep::ScoredGoal {
                        recipe: recipe_id.to_string(),
                        goal: goal_id.clone(),
                        nutrient: goal.wants_nutrient.clone(),
                    });
                }
            }
        }
        // Seasonality.
        if self.kg.recipe_in_season(recipe, ctx.season) {
            score += w.seasonal;
            trace.push(TraceStep::ScoredSeasonal {
                recipe: recipe_id.to_string(),
                season: ctx.season.name().to_string(),
            });
        }
        // Regional availability.
        if let Some(region) = user.region.as_ref().or(ctx.region.as_ref()) {
            let regional = recipe.ingredients.iter().any(|i| {
                self.kg
                    .ingredient(i)
                    .map(|ing| ing.regions.iter().any(|r| r == region))
                    .unwrap_or(false)
            });
            if regional {
                score += w.regional;
                trace.push(TraceStep::ScoredRegional {
                    recipe: recipe_id.to_string(),
                    region: region.clone(),
                });
            }
        }
        // Price.
        if recipe.price_tier > 1 {
            score -= w.price_penalty_per_tier * (recipe.price_tier - 1) as f64;
            trace.push(TraceStep::PenalizedPrice {
                recipe: recipe_id.to_string(),
                tier: recipe.price_tier,
            });
        }
        (score, trace)
    }
}

impl Recommender for HealthCoach<'_> {
    fn name(&self) -> &str {
        "health-coach"
    }

    fn recommend(&self, user: &UserProfile, ctx: &SystemContext, k: usize) -> RecommendationSet {
        let mut set = RecommendationSet::default();
        let mut scored: Vec<Recommendation> = Vec::new();
        for recipe in &self.kg.recipes {
            if let Some(step) = self.check_constraints(user, &recipe.id) {
                set.eliminated.push(step);
                continue;
            }
            let (score, trace) = self.score(user, ctx, &recipe.id);
            scored.push(Recommendation {
                recipe_id: recipe.id.clone(),
                score,
                trace,
            });
        }
        // Deterministic ranking: score desc, then id asc.
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.recipe_id.cmp(&b.recipe_id))
        });
        scored.truncate(k);
        set.recommendations = scored;
        set
    }
}

/// Non-personalized baseline: ranks recipes by how often a reference
/// population likes them. No constraints, no context — and therefore
/// nothing to explain, which is exactly the contrast the paper draws
/// with black-box recommenders.
pub struct PopularityRecommender<'kg> {
    kg: &'kg FoodKg,
    popularity: HashMap<String, usize>,
}

impl<'kg> PopularityRecommender<'kg> {
    /// Builds popularity counts from a reference population.
    pub fn from_population(kg: &'kg FoodKg, population: &[UserProfile]) -> Self {
        let mut popularity: HashMap<String, usize> = HashMap::new();
        for p in population {
            for l in &p.likes {
                *popularity.entry(l.clone()).or_insert(0) += 1;
            }
        }
        PopularityRecommender { kg, popularity }
    }
}

impl Recommender for PopularityRecommender<'_> {
    fn name(&self) -> &str {
        "popularity-baseline"
    }

    fn recommend(&self, _user: &UserProfile, _ctx: &SystemContext, k: usize) -> RecommendationSet {
        let mut scored: Vec<Recommendation> = self
            .kg
            .recipes
            .iter()
            .map(|r| Recommendation {
                recipe_id: r.id.clone(),
                score: *self.popularity.get(&r.id).unwrap_or(&0) as f64,
                trace: Vec::new(),
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.recipe_id.cmp(&b.recipe_id))
        });
        scored.truncate(k);
        RecommendationSet {
            recommendations: scored,
            eliminated: Vec::new(),
        }
    }
}

/// Precision-style overlap of two top-k lists (used by benches to compare
/// the coach against the baseline).
pub fn overlap_at_k(a: &RecommendationSet, b: &RecommendationSet, k: usize) -> f64 {
    let a_ids: Vec<&str> = a
        .recommendations
        .iter()
        .take(k)
        .map(|r| r.recipe_id.as_str())
        .collect();
    let b_ids: Vec<&str> = b
        .recommendations
        .iter()
        .take(k)
        .map(|r| r.recipe_id.as_str())
        .collect();
    if a_ids.is_empty() {
        return 0.0;
    }
    let shared = a_ids.iter().filter(|id| b_ids.contains(id)).count();
    shared as f64 / a_ids.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_foodkg::{curated, random_profiles, Season};

    fn autumn() -> SystemContext {
        SystemContext::new(Season::Autumn)
    }

    #[test]
    fn allergy_filters_out_broccoli_soup() {
        let kg = curated();
        let coach = HealthCoach::new(&kg);
        let user = UserProfile::new("u")
            .likes(&["BroccoliCheddarSoup"])
            .allergies(&["Broccoli"]);
        let set = coach.recommend(&user, &autumn(), 10);
        assert!(set.get("BroccoliCheddarSoup").is_none());
        let step = set.elimination("BroccoliCheddarSoup").unwrap();
        assert!(
            matches!(step, TraceStep::FilteredByAllergy { allergen, .. } if allergen == "Broccoli")
        );
    }

    #[test]
    fn paper_scenario_b_recommends_butternut_squash_soup() {
        // §V-B: user likes Broccoli Cheddar Soup but is allergic to
        // broccoli; the system recommends Butternut Squash Soup instead.
        let kg = curated();
        let coach = HealthCoach::new(&kg);
        let user = UserProfile::new("u")
            .likes(&["BroccoliCheddarSoup"])
            .allergies(&["Broccoli"]);
        let set = coach.recommend(&user, &autumn(), 5);
        let squash = set.get("ButternutSquashSoup");
        assert!(squash.is_some(), "squash soup should survive and rank");
        // The seasonal boost is part of its trace.
        assert!(squash
            .unwrap()
            .trace
            .iter()
            .any(|s| matches!(s, TraceStep::ScoredSeasonal { .. })));
    }

    #[test]
    fn diet_filters_by_category() {
        let kg = curated();
        let coach = HealthCoach::new(&kg);
        let user = UserProfile::new("u").diet("Vegan");
        let set = coach.recommend(&user, &autumn(), 50);
        for r in &set.recommendations {
            let recipe = kg.recipe(&r.recipe_id).unwrap();
            let cats = kg.recipe_categories(recipe);
            for forbidden in ["Meat", "Dairy", "Egg", "Fish"] {
                assert!(
                    !cats.contains(&forbidden.to_string()),
                    "{} has {forbidden}",
                    r.recipe_id
                );
            }
        }
        assert!(set
            .eliminated
            .iter()
            .any(|s| matches!(s, TraceStep::FilteredByDiet { .. })));
    }

    #[test]
    fn pregnancy_filters_sushi() {
        let kg = curated();
        let coach = HealthCoach::new(&kg);
        let user = UserProfile::new("u").pregnant(true);
        let set = coach.recommend(&user, &autumn(), 50);
        assert!(set.get("Sushi").is_none());
        assert!(matches!(
            set.elimination("Sushi"),
            Some(TraceStep::FilteredByPregnancy { .. })
        ));
        // Without pregnancy, sushi survives.
        let set = coach.recommend(&UserProfile::new("u"), &autumn(), 50);
        assert!(set.get("Sushi").is_some());
    }

    #[test]
    fn goals_boost_matching_recipes() {
        let kg = curated();
        let coach = HealthCoach::new(&kg);
        let with_goal = UserProfile::new("u").goals(&["FolateGoal"]);
        let without = UserProfile::new("u");
        let s1 = coach.recommend(&with_goal, &autumn(), 50);
        let s2 = coach.recommend(&without, &autumn(), 50);
        let frittata_with = s1.get("SpinachFrittata").unwrap().score;
        let frittata_without = s2.get("SpinachFrittata").unwrap().score;
        assert!(frittata_with > frittata_without);
        assert!(s1
            .get("SpinachFrittata")
            .unwrap()
            .trace
            .iter()
            .any(|s| matches!(s, TraceStep::ScoredGoal { nutrient, .. } if nutrient == "Folate")));
    }

    #[test]
    fn ranking_is_deterministic() {
        let kg = curated();
        let coach = HealthCoach::new(&kg);
        let user = UserProfile::new("u").likes(&["LentilSoup"]);
        let a = coach.recommend(&user, &autumn(), 10);
        let b = coach.recommend(&user, &autumn(), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn seasonality_changes_ranking() {
        let kg = curated();
        let coach = HealthCoach::new(&kg);
        let user = UserProfile::new("u");
        let autumn_set = coach.recommend(&user, &SystemContext::new(Season::Autumn), 50);
        let summer_set = coach.recommend(&user, &SystemContext::new(Season::Summer), 50);
        let squash_autumn = autumn_set.get("ButternutSquashSoup").unwrap().score;
        let squash_summer = summer_set.get("ButternutSquashSoup").unwrap().score;
        assert!(squash_autumn > squash_summer);
    }

    #[test]
    fn popularity_baseline_ignores_constraints() {
        let kg = curated();
        let population = random_profiles(&kg, 100, 11);
        let baseline = PopularityRecommender::from_population(&kg, &population);
        let user = UserProfile::new("u").allergies(&["Broccoli"]);
        let set = baseline.recommend(&user, &autumn(), kg.recipes.len());
        // Baseline does not filter: every recipe is ranked.
        assert_eq!(set.recommendations.len(), kg.recipes.len());
        assert!(set.eliminated.is_empty());
    }

    #[test]
    fn coach_and_baseline_disagree() {
        let kg = curated();
        let population = random_profiles(&kg, 100, 11);
        let baseline = PopularityRecommender::from_population(&kg, &population);
        let coach = HealthCoach::new(&kg);
        let user = UserProfile::new("u")
            .diet("Vegan")
            .goals(&["HighFiberGoal"])
            .allergies(&["Peanuts"]);
        let a = coach.recommend(&user, &autumn(), 5);
        let b = baseline.recommend(&user, &autumn(), 5);
        assert!(
            overlap_at_k(&a, &b, 5) < 1.0,
            "personalized and popularity rankings should differ"
        );
    }

    #[test]
    fn price_penalty_recorded() {
        let kg = curated();
        let coach = HealthCoach::new(&kg);
        let set = coach.recommend(&UserProfile::new("u"), &autumn(), 50);
        let sushi = set.get("Sushi").unwrap();
        assert!(sushi
            .trace
            .iter()
            .any(|s| matches!(s, TraceStep::PenalizedPrice { tier: 3, .. })));
    }
}
