//! Recommendation results with their reasoning traces.

use std::fmt;

/// One step of the recommender's reasoning, recorded for trace-based
/// explanations (paper Table I: "What steps led to recommendation E?").
#[derive(Debug, Clone, PartialEq)]
pub enum TraceStep {
    /// Recipe removed: contains an allergen of the user.
    FilteredByAllergy { recipe: String, allergen: String },
    /// Recipe removed: the user dislikes it.
    FilteredByDislike { recipe: String },
    /// Recipe removed: its category is forbidden by the user's diet.
    FilteredByDiet {
        recipe: String,
        diet: String,
        category: String,
    },
    /// Recipe removed: forbidden during pregnancy.
    FilteredByPregnancy { recipe: String, category: String },
    /// Score bonus: ingredient overlap with a liked recipe.
    ScoredLikeOverlap {
        recipe: String,
        liked: String,
        shared_ingredients: usize,
    },
    /// Score bonus: the user likes this very recipe.
    ScoredDirectLike { recipe: String },
    /// Score bonus: recipe provides a goal nutrient.
    ScoredGoal {
        recipe: String,
        goal: String,
        nutrient: String,
    },
    /// Score bonus: a recipe ingredient is in season.
    ScoredSeasonal { recipe: String, season: String },
    /// Score bonus: a recipe ingredient is available in the user's region.
    ScoredRegional { recipe: String, region: String },
    /// Score penalty: price tier above the cheapest.
    PenalizedPrice { recipe: String, tier: u8 },
}

impl TraceStep {
    /// The recipe this step concerns.
    pub fn recipe(&self) -> &str {
        match self {
            TraceStep::FilteredByAllergy { recipe, .. }
            | TraceStep::FilteredByDislike { recipe }
            | TraceStep::FilteredByDiet { recipe, .. }
            | TraceStep::FilteredByPregnancy { recipe, .. }
            | TraceStep::ScoredLikeOverlap { recipe, .. }
            | TraceStep::ScoredDirectLike { recipe }
            | TraceStep::ScoredGoal { recipe, .. }
            | TraceStep::ScoredSeasonal { recipe, .. }
            | TraceStep::ScoredRegional { recipe, .. }
            | TraceStep::PenalizedPrice { recipe, .. } => recipe,
        }
    }

    /// True for the hard-constraint elimination steps.
    pub fn is_filter(&self) -> bool {
        matches!(
            self,
            TraceStep::FilteredByAllergy { .. }
                | TraceStep::FilteredByDislike { .. }
                | TraceStep::FilteredByDiet { .. }
                | TraceStep::FilteredByPregnancy { .. }
        )
    }
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceStep::FilteredByAllergy { recipe, allergen } => {
                write!(f, "removed {recipe}: contains allergen {allergen}")
            }
            TraceStep::FilteredByDislike { recipe } => {
                write!(f, "removed {recipe}: user dislikes it")
            }
            TraceStep::FilteredByDiet {
                recipe,
                diet,
                category,
            } => write!(f, "removed {recipe}: {diet} diet forbids {category}"),
            TraceStep::FilteredByPregnancy { recipe, category } => {
                write!(
                    f,
                    "removed {recipe}: {category} is forbidden during pregnancy"
                )
            }
            TraceStep::ScoredLikeOverlap {
                recipe,
                liked,
                shared_ingredients,
            } => write!(
                f,
                "boosted {recipe}: shares {shared_ingredients} ingredient(s) with liked {liked}"
            ),
            TraceStep::ScoredDirectLike { recipe } => {
                write!(f, "boosted {recipe}: user likes it directly")
            }
            TraceStep::ScoredGoal {
                recipe,
                goal,
                nutrient,
            } => write!(f, "boosted {recipe}: provides {nutrient} for {goal}"),
            TraceStep::ScoredSeasonal { recipe, season } => {
                write!(f, "boosted {recipe}: in season ({season})")
            }
            TraceStep::ScoredRegional { recipe, region } => {
                write!(f, "boosted {recipe}: regionally available in {region}")
            }
            TraceStep::PenalizedPrice { recipe, tier } => {
                write!(f, "penalized {recipe}: price tier {tier}")
            }
        }
    }
}

/// One ranked recommendation with the steps that produced its score.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    pub recipe_id: String,
    pub score: f64,
    pub trace: Vec<TraceStep>,
}

/// The full output of one recommendation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecommendationSet {
    /// Ranked survivors, best first.
    pub recommendations: Vec<Recommendation>,
    /// Recipes eliminated by hard constraints, with the reason.
    pub eliminated: Vec<TraceStep>,
}

impl RecommendationSet {
    /// The top recommendation's recipe id, if any.
    pub fn top(&self) -> Option<&str> {
        self.recommendations.first().map(|r| r.recipe_id.as_str())
    }

    /// Finds a ranked recommendation by recipe id.
    pub fn get(&self, recipe_id: &str) -> Option<&Recommendation> {
        self.recommendations
            .iter()
            .find(|r| r.recipe_id == recipe_id)
    }

    /// The elimination step for a recipe, if it was filtered out.
    pub fn elimination(&self, recipe_id: &str) -> Option<&TraceStep> {
        self.eliminated.iter().find(|s| s.recipe() == recipe_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_accessors() {
        let s = TraceStep::FilteredByAllergy {
            recipe: "Soup".into(),
            allergen: "Broccoli".into(),
        };
        assert_eq!(s.recipe(), "Soup");
        assert!(s.is_filter());
        assert!(s.to_string().contains("allergen Broccoli"));

        let s = TraceStep::ScoredSeasonal {
            recipe: "Soup".into(),
            season: "Autumn".into(),
        };
        assert!(!s.is_filter());
        assert!(s.to_string().contains("in season"));
    }

    #[test]
    fn set_accessors() {
        let set = RecommendationSet {
            recommendations: vec![Recommendation {
                recipe_id: "A".into(),
                score: 2.0,
                trace: vec![],
            }],
            eliminated: vec![TraceStep::FilteredByDislike { recipe: "B".into() }],
        };
        assert_eq!(set.top(), Some("A"));
        assert!(set.get("A").is_some());
        assert!(set.elimination("B").is_some());
        assert!(set.elimination("A").is_none());
    }
}
