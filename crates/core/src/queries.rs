//! The SPARQL competency-question templates.
//!
//! CQ1–CQ3 follow the paper's Listings 1–3. Where the paper's printed
//! query text is visibly truncated, the reconstruction is noted inline:
//!
//! - **CQ1** (Listing 1): the printed fragment shows the
//!   characteristic/class pattern and the `eo:knowledge` exclusion. We add
//!   the ecosystem-presence condition ("check if they matched any of our
//!   environment characteristics", §III-A), the external-only filter
//!   (`feo:isInternal`, §III-B — contextual explanations use external
//!   knowledge only), and the leaf-class filter that Listing 2 uses
//!   explicitly, all of which are required to produce the paper's printed
//!   single-row result.
//! - **CQ2** (Listing 2): reproduced as printed (the paper includes the
//!   knowledge-exclusion and leaf-class filters itself).
//! - **CQ3** (Listing 3): the printed fragment shows the
//!   subPropertyOf/`food:Food`/OPTIONAL skeleton; we reconstruct the
//!   subject binding (`feo:Pregnancy ?property ?baseFood`) and add a
//!   leaf-property filter mirroring Listing 2's leaf-class filters.

use feo_ontology::ns::sparql_prologue;

use crate::question::Question;

/// CQ1 — contextual explanation for "Why should I eat X?".
pub fn contextual_query(question: &Question) -> String {
    format!(
        "{prologue}\
         SELECT DISTINCT ?characteristic ?classes\n\
         WHERE {{\n\
           BIND (<{q}> AS ?question) .\n\
           ?question feo:hasParameter ?parameter .\n\
           ?parameter feo:hasCharacteristic ?characteristic .\n\
           ?characteristic feo:presentIn feo:CurrentEcosystem .\n\
           ?characteristic a ?classes .\n\
           ?classes rdfs:subClassOf feo:Characteristic .\n\
           FILTER (?classes != feo:Parameter) .\n\
           FILTER NOT EXISTS {{ ?classes rdfs:subClassOf eo:knowledge }} .\n\
           FILTER NOT EXISTS {{ ?classes feo:isInternal true }} .\n\
           FILTER NOT EXISTS {{ ?sub rdfs:subClassOf ?classes }} .\n\
         }}\n\
         ORDER BY ?classes ?characteristic",
        prologue = sparql_prologue(),
        q = question.iri()
    )
}

/// CQ2 — contrastive explanation for "Why X over Y?" (Listing 2).
pub fn contrastive_query(question: &Question) -> String {
    format!(
        "{prologue}\
         SELECT DISTINCT ?factType ?factA ?foilType ?foilB\n\
         WHERE {{\n\
           BIND (<{q}> AS ?question) .\n\
           ?question feo:hasPrimaryParameter ?parameterA .\n\
           ?question feo:hasSecondaryParameter ?parameterB .\n\
           ?parameterA feo:hasCharacteristic ?factA .\n\
           ?factA a eo:Fact .\n\
           ?factA a ?factType .\n\
           ?factType (rdfs:subClassOf+) feo:Characteristic .\n\
           FILTER NOT EXISTS {{ ?factType rdfs:subClassOf eo:knowledge }} .\n\
           FILTER NOT EXISTS {{ ?s rdfs:subClassOf ?factType }} .\n\
           ?parameterB feo:hasCharacteristic ?foilB .\n\
           ?foilB a eo:Foil .\n\
           ?foilB a ?foilType .\n\
           ?foilType (rdfs:subClassOf+) feo:Characteristic .\n\
           FILTER NOT EXISTS {{ ?foilType rdfs:subClassOf eo:knowledge }} .\n\
           FILTER NOT EXISTS {{ ?t rdfs:subClassOf ?foilType }} .\n\
         }}\n\
         ORDER BY ?factType ?factA ?foilType ?foilB",
        prologue = sparql_prologue(),
        q = question.iri()
    )
}

/// CQ3 — counterfactual explanation for "What if I was pregnant?"
/// (Listing 3). The hypothesis subject defaults to `feo:Pregnancy`.
pub fn counterfactual_query(hypothesis_iri: &str) -> String {
    format!(
        "{prologue}\
         SELECT DISTINCT ?property ?baseFood ?inheritedFood\n\
         WHERE {{\n\
           <{h}> ?property ?baseFood .\n\
           ?property rdfs:subPropertyOf feo:isCharacteristicOf .\n\
           ?baseFood a food:Food .\n\
           OPTIONAL {{ ?baseFood food:isIngredientOf ?inheritedFood . }}\n\
           FILTER NOT EXISTS {{ ?subp rdfs:subPropertyOf ?property }} .\n\
         }}\n\
         ORDER BY ?property ?baseFood ?inheritedFood",
        prologue = sparql_prologue(),
        h = hypothesis_iri
    )
}

/// Case-based support: how many reference users with a shared
/// characteristic (same diet or a shared goal) like the given food.
pub fn case_based_query(user_iri: &str, food_iri: &str) -> String {
    format!(
        "{prologue}\
         SELECT (COUNT(DISTINCT ?other) AS ?supporters)\n\
         WHERE {{\n\
           ?other food:likes <{food}> .\n\
           FILTER (?other != <{user}>) .\n\
           {{ <{user}> food:followsDiet ?d . ?other food:followsDiet ?d . }}\n\
           UNION\n\
           {{ <{user}> food:hasGoal ?g . ?other food:hasGoal ?g . }}\n\
         }}",
        prologue = sparql_prologue(),
        food = food_iri,
        user = user_iri
    )
}

/// Everyday / scientific evidence: knowledge records attached to any
/// characteristic of the parameter food. `record_class` selects the
/// record type (everyday rule of thumb vs. cited study).
pub fn knowledge_record_query(food_iri: &str, record_class: &str) -> String {
    format!(
        "{prologue}\
         SELECT DISTINCT ?record ?about ?text ?source\n\
         WHERE {{\n\
           <{food}> feo:hasCharacteristic ?about .\n\
           ?record a <{record_class}> ;\n\
                   eo:inRelationTo ?about ;\n\
                   rdfs:comment ?text .\n\
           OPTIONAL {{ ?record eo:isBasedOn ?source . }}\n\
         }}\n\
         ORDER BY ?record",
        prologue = sparql_prologue(),
        food = food_iri,
        record_class = record_class
    )
}

/// Statistical evidence: among reference users who follow `diet_iri`, how
/// many achieved their nutritional goal vs. total.
pub fn statistical_query(diet_iri: &str) -> String {
    format!(
        "{prologue}\
         SELECT (COUNT(DISTINCT ?follower) AS ?total)\n\
                (COUNT(DISTINCT ?winner) AS ?succeeded)\n\
         WHERE {{\n\
           ?follower food:followsDiet <{diet}> .\n\
           OPTIONAL {{ ?follower feo:achievedGoal ?g . BIND (?follower AS ?winner) . }}\n\
         }}",
        prologue = sparql_prologue(),
        diet = diet_iri
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::{Hypothesis, Question};
    use feo_sparql::parse_query;

    #[test]
    fn all_templates_parse() {
        let q1 = contextual_query(&Question::WhyEat {
            food: "CauliflowerPotatoCurry".into(),
        });
        parse_query(&q1).expect("CQ1 parses");

        let q2 = contrastive_query(&Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        });
        parse_query(&q2).expect("CQ2 parses");

        let q3 = counterfactual_query(feo_ontology::ns::feo::PREGNANCY_STATE);
        parse_query(&q3).expect("CQ3 parses");

        parse_query(&case_based_query("http://e/u", "http://e/f")).expect("case-based parses");
        parse_query(&knowledge_record_query(
            "http://e/f",
            feo_ontology::ns::eo::KNOWLEDGE_RECORD,
        ))
        .expect("knowledge-record parses");
        parse_query(&statistical_query("http://e/d")).expect("statistical parses");

        let _ = Question::WhatIf {
            hypothesis: Hypothesis::Pregnant,
        };
    }

    #[test]
    fn cq2_mirrors_listing_two_structure() {
        let q = contrastive_query(&Question::WhyEatOver {
            preferred: "A".into(),
            alternative: "B".into(),
        });
        assert!(q.contains("hasPrimaryParameter"));
        assert!(q.contains("hasSecondaryParameter"));
        assert!(q.contains("eo:Fact"));
        assert!(q.contains("eo:Foil"));
        assert!(q.contains("rdfs:subClassOf+"));
        assert_eq!(q.matches("FILTER NOT EXISTS").count(), 4);
    }
}
