//! Dependency-free JSON serialization for the serving surface.
//!
//! The HTTP explanation service and the `feo --json` CLI flag both need
//! machine-readable renderings of the same handful of types —
//! [`DegradationReport`], [`BudgetedOutcome`], [`CommitInfo`],
//! [`Explanation`], and SPARQL [`QueryResult`]s. Keeping every encoder
//! here (one [`ToJson`] impl per type, built on one escaping routine)
//! means the server and the CLI can never drift apart, and neither
//! needs a serde dependency the build environment doesn't have.
//!
//! SELECT results follow the W3C "SPARQL 1.1 Query Results JSON Format"
//! shape (`head.vars` + `results.bindings`, terms tagged with `type`
//! and `value`), so standard tooling can consume `/query` responses.

use feo_rdf::governor::{Exhausted, Resource};
use feo_rdf::Term;
use feo_sparql::{QueryResult, SolutionTable};

use crate::cache::PlanCacheStats;
use crate::engine::{BudgetedOutcome, CommitInfo, DegradationReport};
use crate::explanation::Explanation;

/// A type with a canonical JSON rendering.
pub trait ToJson {
    /// The value rendered as a self-contained JSON document (no
    /// trailing newline).
    fn to_json(&self) -> String;
}

/// Escapes `s` per RFC 8259 and wraps it in double quotes.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a slice of strings as a JSON array of strings.
pub fn json_string_array<S: AsRef<str>>(items: &[S]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(item.as_ref()));
    }
    out.push(']');
    out
}

/// Stable machine-readable name for a tripped resource (the human
/// prose stays on `Display`).
pub fn resource_name(resource: Resource) -> &'static str {
    match resource {
        Resource::WallClock => "wall_clock",
        Resource::InferredTriples => "inferred_triples",
        Resource::Rounds => "rounds",
        Resource::Solutions => "solutions",
        Resource::InputSize => "input_size",
        Resource::Cancelled => "cancelled",
    }
}

impl ToJson for Exhausted {
    fn to_json(&self) -> String {
        format!(
            "{{\"resource\":{},\"spent\":{},\"limit\":{},\"message\":{}}}",
            json_string(resource_name(self.resource)),
            self.spent,
            self.limit,
            json_string(&self.to_string())
        )
    }
}

impl ToJson for DegradationReport {
    fn to_json(&self) -> String {
        let labels = |ts: &[crate::question::ExplanationType]| -> String {
            json_string_array(&ts.iter().map(|t| t.label()).collect::<Vec<_>>())
        };
        format!(
            "{{\"exhausted\":{},\"completed\":{},\"skipped\":{}}}",
            self.exhausted.to_json(),
            labels(&self.completed),
            labels(&self.skipped)
        )
    }
}

impl ToJson for Explanation {
    fn to_json(&self) -> String {
        format!(
            "{{\"question\":{},\"type\":{},\"statements\":{},\"answer\":{}}}",
            json_string(&self.question.text()),
            json_string(self.explanation_type.label()),
            json_string_array(&self.statements),
            json_string(&self.answer)
        )
    }
}

impl ToJson for BudgetedOutcome {
    fn to_json(&self) -> String {
        let explanations: Vec<String> = self.explanations.iter().map(ToJson::to_json).collect();
        let degradation = match &self.degradation {
            Some(report) => report.to_json(),
            None => "null".to_string(),
        };
        format!(
            "{{\"complete\":{},\"explanations\":[{}],\"degradation\":{}}}",
            self.is_complete(),
            explanations.join(","),
            degradation
        )
    }
}

impl ToJson for CommitInfo {
    fn to_json(&self) -> String {
        format!(
            "{{\"epoch\":{},\"label\":{},\"triples\":{},\"terms\":{},\"inferred\":{},\"hash\":{}}}",
            self.epoch.0,
            json_string(&self.label),
            self.triples,
            self.terms,
            self.inferred,
            // Hex string: a u64 hash can exceed the 2^53 range JSON
            // numbers survive round-tripping through doubles.
            json_string(&format!("{:016x}", self.hash))
        )
    }
}

impl ToJson for PlanCacheStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"entries\":{},\"epoch\":{}}}",
            self.hits, self.misses, self.entries, self.epoch
        )
    }
}

/// One solution term in the W3C results-JSON shape.
fn term_to_json(term: &Term) -> String {
    match term {
        Term::Iri(iri) => format!(
            "{{\"type\":\"uri\",\"value\":{}}}",
            json_string(iri.as_str())
        ),
        Term::BlankNode(b) => format!(
            "{{\"type\":\"bnode\",\"value\":{}}}",
            json_string(b.as_str())
        ),
        Term::Literal(lit) => {
            let mut out = format!(
                "{{\"type\":\"literal\",\"value\":{}",
                json_string(lit.lexical_form())
            );
            if let Some(tag) = lit.language() {
                out.push_str(",\"xml:lang\":");
                out.push_str(&json_string(tag));
            } else {
                out.push_str(",\"datatype\":");
                out.push_str(&json_string(lit.datatype().as_str()));
            }
            out.push('}');
            out
        }
    }
}

impl ToJson for SolutionTable {
    fn to_json(&self) -> String {
        let mut out = String::from("{\"head\":{\"vars\":");
        out.push_str(&json_string_array(&self.vars));
        out.push_str("},\"results\":{\"bindings\":[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('{');
            let mut first = true;
            for (var, cell) in self.vars.iter().zip(row) {
                if let Some(term) = cell {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&json_string(var));
                    out.push(':');
                    out.push_str(&term_to_json(term));
                }
            }
            out.push('}');
        }
        out.push_str("]}}");
        out
    }
}

impl ToJson for QueryResult {
    fn to_json(&self) -> String {
        match self {
            QueryResult::Solutions(table) => table.to_json(),
            QueryResult::Boolean(b) => format!("{{\"head\":{{}},\"boolean\":{b}}}"),
            QueryResult::Graph(g) => {
                let turtle = feo_rdf::turtle::write_turtle(g, feo_ontology::ns::PREFIXES);
                format!("{{\"graph\":{}}}", json_string(&turtle))
            }
            QueryResult::Plan(plan) => format!("{{\"plan\":{}}}", json_string(plan)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_rdf::{EpochId, Literal};

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn exhausted_names_resource_stably() {
        let e = Exhausted {
            resource: Resource::WallClock,
            spent: 12,
            limit: 10,
        };
        let json = e.to_json();
        assert!(json.contains("\"resource\":\"wall_clock\""), "{json}");
        assert!(json.contains("\"spent\":12"), "{json}");
    }

    #[test]
    fn commit_hash_renders_as_hex_string() {
        let info = CommitInfo {
            epoch: EpochId(3),
            label: "session".into(),
            triples: 7,
            terms: 2,
            inferred: 1,
            hash: 0xdead_beef,
        };
        let json = info.to_json();
        assert!(json.contains("\"epoch\":3"), "{json}");
        assert!(json.contains("\"hash\":\"00000000deadbeef\""), "{json}");
    }

    #[test]
    fn solution_table_uses_w3c_shape() {
        let table = SolutionTable {
            vars: vec!["s".into(), "o".into()],
            rows: vec![vec![
                Some(Term::iri("http://e/a")),
                Some(Term::Literal(Literal::lang("hi", "en"))),
            ]],
        };
        let json = table.to_json();
        assert!(json.contains("\"vars\":[\"s\",\"o\"]"), "{json}");
        assert!(json.contains("\"type\":\"uri\""), "{json}");
        assert!(json.contains("\"xml:lang\":\"en\""), "{json}");
    }

    #[test]
    fn unbound_cells_are_omitted() {
        let table = SolutionTable {
            vars: vec!["s".into(), "o".into()],
            rows: vec![vec![None, Some(Term::integer(4))]],
        };
        let json = table.to_json();
        assert!(!json.contains("\"s\":"), "{json}");
        assert!(json.contains("\"o\":"), "{json}");
        assert!(json.contains("integer"), "typed literal datatype: {json}");
    }
}
