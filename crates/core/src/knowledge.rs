//! Auxiliary knowledge bases for the extension explanation types (§VI):
//! everyday rules of thumb, scientific evidence records, and a synthetic
//! reference population with goal outcomes for case-based and statistical
//! explanations.

use feo_foodkg::{user_to_rdf, FoodKg, UserProfile};
use feo_ontology::ns::{eo, feo};
use feo_rdf::term::Term;
use feo_rdf::vocab::{rdf, rdfs};
use feo_rdf::GraphStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The dedicated class for everyday rules of thumb (a
/// `eo:KnowledgeRecord` specialization).
pub const EVERYDAY_RECORD: &str = "https://purl.org/heals/feo#EverydayKnowledgeRecord";
/// The class for cited scientific evidence records.
pub const SCIENTIFIC_RECORD: &str = "https://purl.org/heals/feo#ScientificKnowledgeRecord";

/// One knowledge record: an assertion `about` a characteristic, with the
/// statement text and (for scientific records) the source citation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnowledgeRecord {
    pub id: &'static str,
    /// Local name of the characteristic (ingredient / season / nutrient)
    /// the record is about.
    pub about: &'static str,
    pub text: &'static str,
    /// Citation; empty for everyday records.
    pub source: &'static str,
}

/// Everyday (common-sense) food knowledge.
pub fn everyday_records() -> Vec<KnowledgeRecord> {
    vec![
        KnowledgeRecord {
            id: "EverydayAutumnProduce",
            about: "Autumn",
            text: "Produce picked in its season is fresher and tastes better.",
            source: "",
        },
        KnowledgeRecord {
            id: "EverydayCauliflower",
            about: "Cauliflower",
            text: "Roasted cauliflower is a filling, low-calorie vegetable.",
            source: "",
        },
        KnowledgeRecord {
            id: "EverydaySpinach",
            about: "Spinach",
            text: "Leafy greens like spinach are an easy way to add vitamins to a meal.",
            source: "",
        },
        KnowledgeRecord {
            id: "EverydayLentils",
            about: "Lentils",
            text: "Beans and lentils keep you full longer than refined carbs.",
            source: "",
        },
        KnowledgeRecord {
            id: "EverydayFiber",
            about: "Fiber",
            text: "Fiber-rich meals aid digestion and steady your energy.",
            source: "",
        },
        KnowledgeRecord {
            id: "EverydayProtein",
            about: "Protein",
            text: "Protein at every meal helps maintain muscle.",
            source: "",
        },
    ]
}

/// Cited scientific evidence.
pub fn scientific_records() -> Vec<KnowledgeRecord> {
    vec![
        KnowledgeRecord {
            id: "StudyFolatePregnancy",
            about: "Folate",
            text: "Periconceptional folic acid supplementation reduces neural-tube defects.",
            source: "Czeizel & Dudas 1992, NEJM",
        },
        KnowledgeRecord {
            id: "StudyOmega3Heart",
            about: "Omega3",
            text: "Omega-3 fatty acid intake is associated with lower cardiovascular risk.",
            source: "GISSI-Prevenzione 1999, The Lancet",
        },
        KnowledgeRecord {
            id: "StudyFiberMortality",
            about: "Fiber",
            text: "Higher dietary fiber intake is associated with reduced all-cause mortality.",
            source: "Park et al. 2011, Arch Intern Med",
        },
        KnowledgeRecord {
            id: "StudyCruciferous",
            about: "Cauliflower",
            text: "Cruciferous vegetable consumption is linked to lower cancer incidence.",
            source: "Verhoeven et al. 1996, Cancer Epidemiol",
        },
        KnowledgeRecord {
            id: "StudyVitaminC",
            about: "VitaminC",
            text: "Adequate vitamin C intake supports normal immune function.",
            source: "Carr & Maggini 2017, Nutrients",
        },
        KnowledgeRecord {
            id: "StudySpinachNitrate",
            about: "Spinach",
            text: "Dietary nitrate from leafy greens lowers blood pressure.",
            source: "Siervo et al. 2013, J Nutr",
        },
    ]
}

/// Emits both record sets into the graph as `eo:KnowledgeRecord`
/// individuals with `eo:inRelationTo` links.
pub fn records_to_rdf(g: &mut impl GraphStore) {
    // Record classes under eo:KnowledgeRecord (which is under
    // eo:knowledge, keeping records out of characteristic listings).
    g.insert_iris(EVERYDAY_RECORD, rdfs::SUB_CLASS_OF, eo::KNOWLEDGE_RECORD);
    g.insert_iris(SCIENTIFIC_RECORD, rdfs::SUB_CLASS_OF, eo::KNOWLEDGE_RECORD);
    for (class, records) in [
        (EVERYDAY_RECORD, everyday_records()),
        (SCIENTIFIC_RECORD, scientific_records()),
    ] {
        for r in records {
            let iri = FoodKg::iri(r.id);
            g.insert_iris(&iri, rdf::TYPE, class);
            g.insert_iris(&iri, eo::IN_RELATION_TO, &FoodKg::iri(r.about));
            g.insert_terms(
                feo_rdf::Iri::new(iri.clone()),
                feo_rdf::Iri::new(rdfs::COMMENT),
                Term::simple(r.text),
            );
            if !r.source.is_empty() {
                g.insert_terms(
                    feo_rdf::Iri::new(iri.clone()),
                    feo_rdf::Iri::new(eo::BASED_ON),
                    Term::simple(r.source),
                );
            }
        }
    }
}

/// A synthetic reference population with seeded goal outcomes, used by
/// case-based ("other users like you chose X") and statistical ("N of M
/// users on this diet met their goal") explanations.
#[derive(Debug, Clone)]
pub struct Population {
    pub profiles: Vec<UserProfile>,
    /// (user id, goal id) pairs for achieved goals.
    pub achievements: Vec<(String, String)>,
}

impl Population {
    /// Generates a population of `n` users over the KG; roughly 60% of
    /// users with a goal are marked as having achieved it when their
    /// liked recipes actually provide the goal nutrient, 20% otherwise —
    /// so diets that steer users toward goal nutrients show measurably
    /// better outcomes.
    pub fn generate(kg: &FoodKg, n: usize, seed: u64) -> Population {
        let profiles = feo_foodkg::random_profiles(kg, n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xACE);
        let mut achievements = Vec::new();
        for p in &profiles {
            for goal_id in &p.goals {
                let Some(goal) = kg.goal(goal_id) else {
                    continue;
                };
                let aligned = p.likes.iter().any(|recipe_id| {
                    kg.recipe(recipe_id)
                        .map(|r| kg.recipe_nutrients(r).contains(&goal.wants_nutrient))
                        .unwrap_or(false)
                });
                let p_success = if aligned { 0.6 } else { 0.2 };
                if rng.gen_bool(p_success) {
                    achievements.push((p.id.clone(), goal_id.clone()));
                }
            }
        }
        Population {
            profiles,
            achievements,
        }
    }

    /// Emits the population ABox (profiles + achievements).
    pub fn to_rdf(&self, g: &mut impl GraphStore) {
        for p in &self.profiles {
            user_to_rdf(p, g);
        }
        for (user, goal) in &self.achievements {
            g.insert_iris(&FoodKg::iri(user), feo::ACHIEVED_GOAL, &FoodKg::iri(goal));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_foodkg::curated;
    use feo_rdf::Graph;

    #[test]
    fn records_reference_known_entities() {
        let kg = curated();
        for r in everyday_records().iter().chain(scientific_records().iter()) {
            let known = kg.ingredient(r.about).is_some()
                || r.about == "Autumn"
                || kg
                    .ingredients
                    .iter()
                    .any(|i| i.nutrients.contains(&r.about.to_string()));
            assert!(known, "record {} about unknown entity {}", r.id, r.about);
        }
    }

    #[test]
    fn scientific_records_have_sources() {
        for r in scientific_records() {
            assert!(!r.source.is_empty(), "{} lacks a source", r.id);
        }
        for r in everyday_records() {
            assert!(r.source.is_empty());
        }
    }

    #[test]
    fn records_emit_rdf() {
        let mut g = Graph::new();
        records_to_rdf(&mut g);
        let rec = g.lookup_iri(&FoodKg::iri("StudyFolatePregnancy")).unwrap();
        let based_on = g.lookup_iri(eo::BASED_ON).unwrap();
        assert!(g.object(rec, based_on).is_some());
        let in_rel = g.lookup_iri(eo::IN_RELATION_TO).unwrap();
        let folate = g.lookup_iri(&FoodKg::iri("Folate")).unwrap();
        assert!(g.contains_ids(rec, in_rel, folate));
    }

    #[test]
    fn population_is_deterministic_and_outcome_biased() {
        let kg = curated();
        let a = Population::generate(&kg, 200, 5);
        let b = Population::generate(&kg, 200, 5);
        assert_eq!(a.achievements, b.achievements);
        assert!(!a.achievements.is_empty());
        // Achievements only reference users who hold that goal.
        for (user, goal) in &a.achievements {
            let p = a.profiles.iter().find(|p| &p.id == user).unwrap();
            assert!(p.goals.contains(goal));
        }
    }

    #[test]
    fn population_rdf_includes_achievements() {
        let kg = curated();
        let pop = Population::generate(&kg, 50, 5);
        let mut g = Graph::new();
        pop.to_rdf(&mut g);
        let achieved = g.lookup_iri(feo::ACHIEVED_GOAL);
        assert!(achieved.is_some());
        let n = g.match_pattern(None, achieved, None).len();
        assert_eq!(n, pop.achievements.len());
    }
}
