//! User questions and their mapping to explanation types.
//!
//! Table I of the paper pairs each of nine explanation types with an
//! example food question; this module models those question shapes and
//! mints the question individuals (`feo:WhyEatCauliflowerPotatoCurry`,
//! `feo:WhyEatButternutSquashSoupOverBroccoliCheddarSoup`, …) that the
//! SPARQL competency queries bind on.

use std::fmt;

use feo_foodkg::FoodKg;

/// The nine explanation types of the paper's Table I. The first three are
/// the evaluated competency-question types (§V); the remaining six are
/// the future-work types implemented here as engine extensions (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExplanationType {
    Contextual,
    Contrastive,
    Counterfactual,
    CaseBased,
    Everyday,
    Scientific,
    SimulationBased,
    Statistical,
    TraceBased,
}

impl ExplanationType {
    pub const ALL: [ExplanationType; 9] = [
        ExplanationType::CaseBased,
        ExplanationType::Contextual,
        ExplanationType::Contrastive,
        ExplanationType::Counterfactual,
        ExplanationType::Everyday,
        ExplanationType::Scientific,
        ExplanationType::SimulationBased,
        ExplanationType::Statistical,
        ExplanationType::TraceBased,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ExplanationType::CaseBased => "Case-Based Explanations",
            ExplanationType::Contextual => "Contextual Explanations",
            ExplanationType::Contrastive => "Contrastive Explanations",
            ExplanationType::Counterfactual => "Counterfactual Explanations",
            ExplanationType::Everyday => "Everyday Explanations",
            ExplanationType::Scientific => "Scientific Explanations",
            ExplanationType::SimulationBased => "Simulation-based Explanations",
            ExplanationType::Statistical => "Statistical Explanations",
            ExplanationType::TraceBased => "Trace-based Explanations",
        }
    }

    /// The `eo:` class IRI for this explanation type.
    pub fn iri(self) -> &'static str {
        use feo_ontology::ns::eo;
        match self {
            ExplanationType::CaseBased => eo::CASE_BASED,
            ExplanationType::Contextual => eo::CONTEXTUAL,
            ExplanationType::Contrastive => eo::CONTRASTIVE,
            ExplanationType::Counterfactual => eo::COUNTERFACTUAL,
            ExplanationType::Everyday => eo::EVERYDAY,
            ExplanationType::Scientific => eo::SCIENTIFIC,
            ExplanationType::SimulationBased => eo::SIMULATION_BASED,
            ExplanationType::Statistical => eo::STATISTICAL,
            ExplanationType::TraceBased => eo::TRACE_BASED,
        }
    }
}

impl fmt::Display for ExplanationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A hypothetical change to the user or system profile, for
/// counterfactual questions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hypothesis {
    /// "What if I was pregnant?" — the paper's §V-C scenario.
    Pregnant,
    /// "What if I followed diet D?"
    FollowedDiet(String),
    /// "What if I were allergic to ingredient X?"
    AllergicTo(String),
}

impl Hypothesis {
    pub fn describe(&self) -> String {
        match self {
            Hypothesis::Pregnant => "you were pregnant".to_string(),
            Hypothesis::FollowedDiet(d) => format!("you followed the {d} diet"),
            Hypothesis::AllergicTo(i) => format!("you were allergic to {i}"),
        }
    }
}

/// A user question about a recommendation, one shape per Table I row.
#[derive(Debug, Clone, PartialEq)]
pub enum Question {
    /// "Why should I eat Food A?" → contextual.
    WhyEat { food: String },
    /// "Why should I eat Food A over Food B?" → contrastive.
    WhyEatOver {
        preferred: String,
        alternative: String,
    },
    /// "What if \<hypothesis\>?" → counterfactual.
    WhatIf { hypothesis: Hypothesis },
    /// "What results from other users recommend food A?" → case-based.
    WhatOtherUsers { food: String },
    /// "Why is food A a sensible choice, in everyday terms?" → everyday.
    WhyGenerally { food: String },
    /// "What literature recommends Food A?" → scientific.
    WhatLiterature { food: String },
    /// "What if I ate food A every day?" → simulation-based.
    WhatIfEatenDaily { food: String },
    /// "What evidence from data suggests I follow diet D?" → statistical.
    WhatEvidenceForDiet { diet: String },
    /// "What steps led to recommendation E?" → trace-based.
    WhatSteps { food: String },
}

impl Question {
    /// The explanation type that answers this question.
    pub fn explanation_type(&self) -> ExplanationType {
        match self {
            Question::WhyEat { .. } => ExplanationType::Contextual,
            Question::WhyEatOver { .. } => ExplanationType::Contrastive,
            Question::WhatIf { .. } => ExplanationType::Counterfactual,
            Question::WhatOtherUsers { .. } => ExplanationType::CaseBased,
            Question::WhyGenerally { .. } => ExplanationType::Everyday,
            Question::WhatLiterature { .. } => ExplanationType::Scientific,
            Question::WhatIfEatenDaily { .. } => ExplanationType::SimulationBased,
            Question::WhatEvidenceForDiet { .. } => ExplanationType::Statistical,
            Question::WhatSteps { .. } => ExplanationType::TraceBased,
        }
    }

    /// The question individual's IRI (e.g.
    /// `feo:WhyEatButternutSquashSoupOverBroccoliCheddarSoup`).
    pub fn iri(&self) -> String {
        let local = match self {
            Question::WhyEat { food } => format!("WhyEat{food}"),
            Question::WhyEatOver {
                preferred,
                alternative,
            } => format!("WhyEat{preferred}Over{alternative}"),
            Question::WhatIf { hypothesis } => match hypothesis {
                Hypothesis::Pregnant => "WhatIfIWasPregnant".to_string(),
                Hypothesis::FollowedDiet(d) => format!("WhatIfIFollowed{d}"),
                Hypothesis::AllergicTo(i) => format!("WhatIfIWereAllergicTo{i}"),
            },
            Question::WhatOtherUsers { food } => format!("WhatOtherUsersRecommend{food}"),
            Question::WhyGenerally { food } => format!("WhyGenerally{food}"),
            Question::WhatLiterature { food } => format!("WhatLiteratureRecommends{food}"),
            Question::WhatIfEatenDaily { food } => format!("WhatIfIAte{food}Everyday"),
            Question::WhatEvidenceForDiet { diet } => format!("WhatEvidenceFor{diet}"),
            Question::WhatSteps { food } => format!("WhatStepsLedTo{food}"),
        };
        FoodKg::iri(&local)
    }

    /// The question phrased in natural language (the Table I examples).
    pub fn text(&self) -> String {
        let spaced = |id: &str| -> String {
            let mut out = String::new();
            for (i, c) in id.chars().enumerate() {
                if c.is_uppercase() && i > 0 {
                    out.push(' ');
                }
                out.push(c);
            }
            out
        };
        match self {
            Question::WhyEat { food } => format!("Why should I eat {}?", spaced(food)),
            Question::WhyEatOver {
                preferred,
                alternative,
            } => format!(
                "Why should I eat {} over {}?",
                spaced(preferred),
                spaced(alternative)
            ),
            Question::WhatIf { hypothesis } => format!("What if {}?", hypothesis.describe()),
            Question::WhatOtherUsers { food } => {
                format!("What results from other users recommend {}?", spaced(food))
            }
            Question::WhyGenerally { food } => {
                format!("Why is {} generally a good choice?", spaced(food))
            }
            Question::WhatLiterature { food } => {
                format!("What literature recommends {}?", spaced(food))
            }
            Question::WhatIfEatenDaily { food } => {
                format!("What if I ate {} every day?", spaced(food))
            }
            Question::WhatEvidenceForDiet { diet } => format!(
                "What evidence from data suggests I follow the {} diet?",
                spaced(diet)
            ),
            Question::WhatSteps { food } => {
                format!("What steps led to the recommendation of {}?", spaced(food))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_has_a_question_shape() {
        let questions = [
            Question::WhyEat { food: "A".into() },
            Question::WhyEatOver {
                preferred: "A".into(),
                alternative: "B".into(),
            },
            Question::WhatIf {
                hypothesis: Hypothesis::Pregnant,
            },
            Question::WhatOtherUsers { food: "A".into() },
            Question::WhyGenerally { food: "A".into() },
            Question::WhatLiterature { food: "A".into() },
            Question::WhatIfEatenDaily { food: "A".into() },
            Question::WhatEvidenceForDiet { diet: "D".into() },
            Question::WhatSteps { food: "A".into() },
        ];
        let mut types: Vec<ExplanationType> =
            questions.iter().map(Question::explanation_type).collect();
        types.sort();
        types.dedup();
        assert_eq!(types.len(), 9, "all nine explanation types covered");
    }

    #[test]
    fn question_iris_match_paper_style() {
        let q = Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        };
        assert_eq!(
            q.iri(),
            "https://purl.org/heals/feo#WhyEatButternutSquashSoupOverBroccoliCheddarSoup"
        );
    }

    #[test]
    fn question_text_is_humanized() {
        let q = Question::WhyEat {
            food: "CauliflowerPotatoCurry".into(),
        };
        assert_eq!(q.text(), "Why should I eat Cauliflower Potato Curry?");
        let q = Question::WhatIf {
            hypothesis: Hypothesis::Pregnant,
        };
        assert_eq!(q.text(), "What if you were pregnant?");
    }

    #[test]
    fn explanation_type_iris_are_eo() {
        for t in ExplanationType::ALL {
            assert!(t.iri().starts_with("https://purl.org/heals/eo#"));
        }
    }
}
