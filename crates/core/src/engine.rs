//! The explanation engine — the paper's pipeline end to end.
//!
//! [`ExplanationEngine::new`] assembles the reasoning graph (TBoxes +
//! FoodKG + user + system context + knowledge records), runs the
//! materializing reasoner, and keeps the inferred graph. Each
//! [`ExplanationEngine::explain`] call asserts the question individual,
//! re-closes the graph, evaluates the explanation type's SPARQL template,
//! and renders the answer — the exact §IV reasoning-then-querying
//! workflow.

use feo_foodkg::{FoodKg, Season, SystemContext, UserProfile};
use feo_ontology::ns::feo;
use feo_owl::{InferenceResult, Reasoner, ReasonerOptions};
use feo_rdf::Graph;
use feo_recommender::{RecommendationSet, TraceStep};
use feo_sparql::{query, SolutionTable, SparqlError};

use crate::ecosystem::{apply_hypothesis, assemble, assert_question};
use crate::explanation::{humanize, Explanation};
use crate::knowledge::{records_to_rdf, Population, EVERYDAY_RECORD, SCIENTIFIC_RECORD};
use crate::queries;
use crate::question::{ExplanationType, Hypothesis, Question};

/// Errors raised by the explanation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The assembled ontology is inconsistent.
    Inconsistent(Vec<String>),
    /// A SPARQL template failed (indicates an engine bug, surfaced rather
    /// than swallowed).
    Sparql(String),
    /// The question references an entity the KG does not know.
    UnknownEntity(String),
    /// Trace-based explanation requested without recommender output.
    MissingRecommendations,
    /// Case-based/statistical explanation requested without a reference
    /// population.
    MissingPopulation,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Inconsistent(details) => {
                write!(f, "ontology inconsistent: {}", details.join("; "))
            }
            EngineError::Sparql(e) => write!(f, "competency query failed: {e}"),
            EngineError::UnknownEntity(e) => write!(f, "unknown entity: {e}"),
            EngineError::MissingRecommendations => {
                write!(f, "trace-based explanations need recommender output")
            }
            EngineError::MissingPopulation => {
                write!(f, "case-based/statistical explanations need a reference population")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SparqlError> for EngineError {
    fn from(e: SparqlError) -> Self {
        EngineError::Sparql(e.to_string())
    }
}

/// The FEO explanation engine.
pub struct ExplanationEngine {
    kg: FoodKg,
    user: UserProfile,
    ctx: SystemContext,
    graph: Graph,
    inference: InferenceResult,
    population: Option<Population>,
    recommendations: Option<RecommendationSet>,
    track_proofs: bool,
}

impl ExplanationEngine {
    /// Assembles and materializes the reasoning graph.
    pub fn new(kg: FoodKg, user: UserProfile, ctx: SystemContext) -> Result<Self, EngineError> {
        Self::build(kg, user, ctx, false)
    }

    /// Like [`ExplanationEngine::new`], but the reasoner tracks
    /// derivations so [`ExplanationEngine::proof_of_type`] can render
    /// Pellet-style proof trees for inferred classifications.
    pub fn new_with_proofs(
        kg: FoodKg,
        user: UserProfile,
        ctx: SystemContext,
    ) -> Result<Self, EngineError> {
        Self::build(kg, user, ctx, true)
    }

    fn build(
        kg: FoodKg,
        user: UserProfile,
        ctx: SystemContext,
        track_proofs: bool,
    ) -> Result<Self, EngineError> {
        let mut graph = assemble(&kg, &user, &ctx);
        records_to_rdf(&mut graph);
        let inference = Self::reasoner(track_proofs).materialize(&mut graph);
        if !inference.is_consistent() {
            return Err(EngineError::Inconsistent(
                inference
                    .inconsistencies
                    .iter()
                    .map(|i| i.detail.clone())
                    .collect(),
            ));
        }
        Ok(ExplanationEngine {
            kg,
            user,
            ctx,
            graph,
            inference,
            population: None,
            recommendations: None,
            track_proofs,
        })
    }

    fn reasoner(track_proofs: bool) -> Reasoner {
        Reasoner::with_options(ReasonerOptions {
            track_derivations: track_proofs,
            ..Default::default()
        })
    }

    /// Renders the reasoner's proof tree for `individual rdf:type class`,
    /// e.g. why Broccoli was classified an `eo:Foil`. Requires
    /// [`ExplanationEngine::new_with_proofs`]; returns `None` when the
    /// typing does not hold or was asserted rather than inferred.
    pub fn proof_of_type(&self, individual_local: &str, class_iri: &str) -> Option<String> {
        let ind = self.graph.lookup_iri(&FoodKg::iri(individual_local))?;
        let ty = self.graph.lookup_iri(feo_rdf::vocab::rdf::TYPE)?;
        let class = self.graph.lookup_iri(class_iri)?;
        if !self.graph.contains_ids(ind, ty, class) {
            return None;
        }
        let node = feo_owl::proof(&self.inference, [ind, ty, class]);
        Some(node.render(&self.graph))
    }

    /// Adds a reference population (enables case-based and statistical
    /// explanations).
    pub fn with_population(mut self, population: Population) -> Self {
        population.to_rdf(&mut self.graph);
        self.inference = Self::reasoner(self.track_proofs).materialize(&mut self.graph);
        self.population = Some(population);
        self
    }

    /// Adds recommender output (enables trace-based explanations and the
    /// recommendation deltas in counterfactuals).
    pub fn with_recommendations(mut self, set: RecommendationSet) -> Self {
        self.recommendations = Some(set);
        self
    }

    pub fn inference(&self) -> &InferenceResult {
        &self.inference
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    pub fn kg(&self) -> &FoodKg {
        &self.kg
    }

    pub fn user(&self) -> &UserProfile {
        &self.user
    }

    pub fn context(&self) -> &SystemContext {
        &self.ctx
    }

    /// Answers a question with the matching explanation type.
    pub fn explain(&mut self, question: &Question) -> Result<Explanation, EngineError> {
        match question {
            Question::WhyEat { food } => self.contextual(question, food),
            Question::WhyEatOver { .. } => self.contrastive(question),
            Question::WhatIf { hypothesis } => self.counterfactual(question, hypothesis),
            Question::WhatSteps { food } => self.trace_based(question, food),
            Question::WhatOtherUsers { food } => self.case_based(question, food),
            Question::WhyGenerally { food } => {
                self.knowledge_based(question, food, EVERYDAY_RECORD, ExplanationType::Everyday)
            }
            Question::WhatLiterature { food } => self.knowledge_based(
                question,
                food,
                SCIENTIFIC_RECORD,
                ExplanationType::Scientific,
            ),
            Question::WhatIfEatenDaily { food } => self.simulation(question, food),
            Question::WhatEvidenceForDiet { diet } => self.statistical(question, diet),
        }
    }

    fn require_recipe(&self, food: &str) -> Result<(), EngineError> {
        if self.kg.recipe(food).is_none() && self.kg.ingredient(food).is_none() {
            return Err(EngineError::UnknownEntity(food.to_string()));
        }
        Ok(())
    }

    /// Asserts the question and re-closes the graph (the reasoner is a
    /// monotone fixpoint, so re-running on the extended graph is exactly
    /// the paper's "export with inferred axioms" over the new state).
    fn assert_and_close(&mut self, question: &Question) {
        assert_question(question, &mut self.graph);
        let inference = Self::reasoner(self.track_proofs).materialize(&mut self.graph);
        if self.track_proofs {
            // Accumulate derivations across closes (earlier runs' records
            // remain valid because inference is monotone).
            let mut merged = std::mem::take(&mut self.inference.derivations);
            merged.extend(inference.derivations.clone());
            self.inference = inference;
            self.inference.derivations = merged;
        } else {
            self.inference = inference;
        }
    }

    // ---- CQ1: contextual ---------------------------------------------

    fn contextual(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        self.require_recipe(food)?;
        self.assert_and_close(question);
        let q = queries::contextual_query(question);
        let table = query(&mut self.graph, &q)?.expect_solutions();

        let mut statements = Vec::new();
        for row in table.local_rows() {
            let (characteristic, class) = (&row[0], &row[1]);
            statements.push(self.contextual_sentence(food, characteristic, class));
        }
        let answer = if statements.is_empty() {
            format!(
                "No external context currently supports {}.",
                humanize(food)
            )
        } else {
            statements.join(" ")
        };
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Contextual,
            bindings: table,
            statements,
            answer,
        })
    }

    /// Renders one contextual statement, tracing the characteristic back
    /// through the recipe's ingredients the way the paper's example
    /// answer does ("uses the ingredient Cauliflower, which is available
    /// in the current season").
    fn contextual_sentence(&self, food: &str, characteristic: &str, class: &str) -> String {
        let food_h = humanize(food);
        match class {
            "SeasonCharacteristic" => {
                // Which ingredient carries the season?
                let season = Season::ALL
                    .iter()
                    .find(|s| s.name() == characteristic)
                    .copied();
                let carrier = self.kg.recipe(food).and_then(|r| {
                    r.ingredients.iter().find(|i| {
                        self.kg
                            .ingredient(i)
                            .zip(season)
                            .map(|(ing, s)| ing.seasons.contains(&s))
                            .unwrap_or(false)
                    })
                });
                match carrier {
                    Some(ing) => format!(
                        "{food_h} uses the ingredient {}, which is available in the current season ({characteristic}).",
                        humanize(ing)
                    ),
                    None => format!(
                        "{food_h} is available in the current season ({characteristic})."
                    ),
                }
            }
            "LocationCharacteristic" => {
                let carrier = self.kg.recipe(food).and_then(|r| {
                    r.ingredients.iter().find(|i| {
                        self.kg
                            .ingredient(i)
                            .map(|ing| ing.regions.iter().any(|reg| reg == characteristic))
                            .unwrap_or(false)
                    })
                });
                match carrier {
                    Some(ing) => format!(
                        "{food_h} uses the ingredient {}, which is available in your region ({characteristic}).",
                        humanize(ing)
                    ),
                    None => format!("{food_h} is available in your region ({characteristic})."),
                }
            }
            "BudgetCharacteristic" => {
                format!("{food_h} fits your budget ({}).", humanize(characteristic))
            }
            "TimeCharacteristic" => format!(
                "{food_h} suits the current time ({}).",
                humanize(characteristic)
            ),
            other => format!(
                "{food_h} matches your context through {} ({other}).",
                humanize(characteristic)
            ),
        }
    }

    // ---- CQ2: contrastive ----------------------------------------------

    fn contrastive(&mut self, question: &Question) -> Result<Explanation, EngineError> {
        let Question::WhyEatOver {
            preferred,
            alternative,
        } = question
        else {
            unreachable!("dispatch guarantees the shape");
        };
        self.require_recipe(preferred)?;
        self.require_recipe(alternative)?;
        self.assert_and_close(question);
        let q = queries::contrastive_query(question);
        let table = query(&mut self.graph, &q)?.expect_solutions();

        let mut fact_parts: Vec<String> = Vec::new();
        let mut foil_parts: Vec<String> = Vec::new();
        for row in table.local_rows() {
            let (fact_type, fact, foil_type, foil) = (&row[0], &row[1], &row[2], &row[3]);
            // Parameter-typed rows are the question parameters themselves
            // (self-characteristics from preference seeds); their polarity
            // already surfaces through the Liked/Disliked rows.
            if fact_type != "Parameter" {
                let f = self.fact_clause(preferred, fact, fact_type);
                if !fact_parts.contains(&f) {
                    fact_parts.push(f);
                }
            }
            if foil_type != "Parameter" {
                let o = self.foil_clause(alternative, foil, foil_type);
                if !foil_parts.contains(&o) {
                    foil_parts.push(o);
                }
            }
        }
        let mut statements = fact_parts.clone();
        statements.extend(foil_parts.iter().cloned());
        let answer = if fact_parts.is_empty() && foil_parts.is_empty() {
            format!(
                "No decisive facts or foils distinguish {} from {}.",
                humanize(preferred),
                humanize(alternative)
            )
        } else {
            format!(
                "{} is better than {} because {}.",
                humanize(preferred),
                humanize(alternative),
                fact_parts
                    .iter()
                    .chain(foil_parts.iter())
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(", and ")
            )
        };
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Contrastive,
            bindings: table,
            statements,
            answer,
        })
    }

    fn fact_clause(&self, preferred: &str, fact: &str, fact_type: &str) -> String {
        match fact_type {
            "SeasonCharacteristic" => {
                format!("{} is currently in season ({fact})", humanize(preferred))
            }
            "LocationCharacteristic" => format!(
                "{} is available in your region ({fact})",
                humanize(preferred)
            ),
            "LikedFoodCharacteristic" => format!("you like {}", humanize(fact)),
            "NutritionalGoalCharacteristic" => format!(
                "{} advances your goal ({})",
                humanize(preferred),
                humanize(fact)
            ),
            "BudgetCharacteristic" => {
                format!("{} fits your budget", humanize(preferred))
            }
            _ => format!(
                "{} is supported by {} ({})",
                humanize(preferred),
                humanize(fact),
                humanize(fact_type)
            ),
        }
    }

    fn foil_clause(&self, alternative: &str, foil: &str, foil_type: &str) -> String {
        match foil_type {
            "AllergicFoodCharacteristic" => format!(
                "you are allergic to {} in {}",
                humanize(foil),
                humanize(alternative)
            ),
            "DislikedFoodCharacteristic" => format!("you dislike {}", humanize(foil)),
            "SeasonCharacteristic" => format!(
                "{} depends on {}, which is out of season",
                humanize(alternative),
                humanize(foil)
            ),
            "DietCharacteristic" | "Diet" => format!(
                "{} conflicts with your {} diet",
                humanize(alternative),
                humanize(foil)
            ),
            "BudgetCharacteristic" => {
                format!("{} exceeds your budget", humanize(alternative))
            }
            _ => format!(
                "{} is opposed by {} ({})",
                humanize(alternative),
                humanize(foil),
                humanize(foil_type)
            ),
        }
    }

    // ---- CQ3: counterfactual ---------------------------------------------

    fn counterfactual(
        &mut self,
        question: &Question,
        hypothesis: &Hypothesis,
    ) -> Result<Explanation, EngineError> {
        // Counterfactuals reason over a hypothetical world: clone the
        // graph, apply the hypothesis, re-close, query the clone.
        let mut world = self.graph.clone();
        apply_hypothesis(hypothesis, &self.user, &mut world);
        assert_question(question, &mut world);
        Reasoner::new().materialize(&mut world);

        let subject_iri = match hypothesis {
            Hypothesis::Pregnant => feo::PREGNANCY_STATE.to_string(),
            Hypothesis::FollowedDiet(d) => FoodKg::iri(d),
            Hypothesis::AllergicTo(i) => FoodKg::iri(i),
        };
        let q = queries::counterfactual_query(&subject_iri);
        let table = query(&mut world, &q)?.expect_solutions();

        let mut forbidden: Vec<String> = Vec::new();
        let mut suggested: Vec<String> = Vec::new();
        for row in table.local_rows() {
            let (property, base, inherited) = (&row[0], &row[1], &row[2]);
            match property.as_str() {
                "forbids" => {
                    let item = humanize(base);
                    if !forbidden.contains(&item) {
                        forbidden.push(item);
                    }
                }
                "recommends" => {
                    let item = if inherited.is_empty() {
                        humanize(base)
                    } else {
                        humanize(inherited)
                    };
                    if !suggested.contains(&item) {
                        suggested.push(item);
                    }
                }
                _ => {}
            }
        }

        let mut statements = Vec::new();
        let mut sentences = Vec::new();
        if !forbidden.is_empty() {
            let s = format!(
                "If {}, you would be forbidden from eating {}.",
                hypothesis.describe(),
                forbidden.join(", ")
            );
            statements.push(s.clone());
            sentences.push(s);
        }
        if !suggested.is_empty() {
            let s = format!("You would be suggested to eat {}.", suggested.join(", "));
            statements.push(s.clone());
            sentences.push(s);
        }
        if sentences.is_empty() {
            sentences.push(format!(
                "If {}, your recommendations would not change.",
                hypothesis.describe()
            ));
        }
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Counterfactual,
            bindings: table,
            statements,
            answer: sentences.join(" "),
        })
    }

    // ---- trace-based -------------------------------------------------------

    fn trace_based(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        let set = self
            .recommendations
            .as_ref()
            .ok_or(EngineError::MissingRecommendations)?;
        let mut statements: Vec<String> = Vec::new();
        if let Some(rec) = set.get(food) {
            statements.push(format!(
                "{} was ranked with score {:.2}.",
                humanize(food),
                rec.score
            ));
            statements.extend(rec.trace.iter().map(TraceStep::to_string));
        } else if let Some(step) = set.elimination(food) {
            statements.push(step.to_string());
        } else {
            return Err(EngineError::UnknownEntity(food.to_string()));
        }
        let answer = format!(
            "Steps that led to the recommendation of {}: {}",
            humanize(food),
            statements.join("; ")
        );
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::TraceBased,
            bindings: SolutionTable::default(),
            statements,
            answer,
        })
    }

    // ---- case-based ---------------------------------------------------------

    fn case_based(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        if self.population.is_none() {
            return Err(EngineError::MissingPopulation);
        }
        self.require_recipe(food)?;
        let q = queries::case_based_query(&FoodKg::iri(&self.user.id), &FoodKg::iri(food));
        let table = query(&mut self.graph, &q)?.expect_solutions();
        let supporters: i64 = table
            .rows
            .first()
            .and_then(|r| r[0].as_ref())
            .and_then(|t| t.as_literal())
            .and_then(|l| l.as_integer())
            .unwrap_or(0);
        let statements = vec![format!(
            "{supporters} users who share your diet or goals also like {}.",
            humanize(food)
        )];
        let answer = statements[0].clone();
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::CaseBased,
            bindings: table,
            statements,
            answer,
        })
    }

    // ---- everyday & scientific -------------------------------------------

    fn knowledge_based(
        &mut self,
        question: &Question,
        food: &str,
        record_class: &str,
        explanation_type: ExplanationType,
    ) -> Result<Explanation, EngineError> {
        self.require_recipe(food)?;
        let q = queries::knowledge_record_query(&FoodKg::iri(food), record_class);
        let table = query(&mut self.graph, &q)?.expect_solutions();
        let mut statements = Vec::new();
        for row in table.local_rows() {
            let (about, text, source) = (&row[1], &row[2], &row[3]);
            let s = if source.is_empty() {
                format!("{} ({}).", text.trim_end_matches('.'), humanize(about))
            } else {
                format!("{} [{}]", text, source)
            };
            if !statements.contains(&s) {
                statements.push(s);
            }
        }
        let answer = if statements.is_empty() {
            format!("No recorded evidence mentions {}.", humanize(food))
        } else {
            statements.join(" ")
        };
        Ok(Explanation {
            question: question.clone(),
            explanation_type,
            bindings: table,
            statements,
            answer,
        })
    }

    // ---- simulation-based ---------------------------------------------------

    fn simulation(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        let recipe = self
            .kg
            .recipe(food)
            .ok_or_else(|| EngineError::UnknownEntity(food.to_string()))?;
        let weekly = recipe.calories as i64 * 7;
        let nutrients = self.kg.recipe_nutrients(recipe);
        let categories = self.kg.recipe_categories(recipe);
        let mut statements = vec![format!(
            "Eating {} every day adds about {} kcal per week ({} kcal per serving).",
            humanize(food),
            weekly,
            recipe.calories
        )];
        if !nutrients.is_empty() {
            statements.push(format!(
                "You would consistently get {}.",
                nutrients
                    .iter()
                    .map(|n| humanize(n))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let missing: Vec<&str> = ["Protein", "Fiber", "VitaminC"]
            .into_iter()
            .filter(|n| !nutrients.iter().any(|have| have == n))
            .collect();
        if !missing.is_empty() {
            statements.push(format!(
                "A single-dish diet would lack {} — add variety.",
                missing.join(", ")
            ));
        }
        if categories.iter().any(|c| c == "HighCarb") && recipe.calories > 400 {
            statements.push(
                "Daily intake of a calorie-dense, high-carb dish risks exceeding energy needs."
                    .to_string(),
            );
        }
        let answer = statements.join(" ");
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::SimulationBased,
            bindings: SolutionTable::default(),
            statements,
            answer,
        })
    }

    // ---- statistical ----------------------------------------------------------

    fn statistical(&mut self, question: &Question, diet: &str) -> Result<Explanation, EngineError> {
        if self.population.is_none() {
            return Err(EngineError::MissingPopulation);
        }
        if self.kg.diet(diet).is_none() {
            return Err(EngineError::UnknownEntity(diet.to_string()));
        }
        let q = queries::statistical_query(&FoodKg::iri(diet));
        let table = query(&mut self.graph, &q)?.expect_solutions();
        let get = |row: &Vec<Option<feo_rdf::Term>>, i: usize| -> i64 {
            row.get(i)
                .and_then(|c| c.as_ref())
                .and_then(|t| t.as_literal())
                .and_then(|l| l.as_integer())
                .unwrap_or(0)
        };
        let (total, succeeded) = table
            .rows
            .first()
            .map(|r| (get(r, 0), get(r, 1)))
            .unwrap_or((0, 0));
        let statements = vec![format!(
            "Of {total} users following the {} diet, {succeeded} achieved a nutritional goal.",
            humanize(diet)
        )];
        let answer = statements[0].clone();
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Statistical,
            bindings: table,
            statements,
            answer,
        })
    }
}

