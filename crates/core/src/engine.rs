//! The explanation engine — the paper's pipeline end to end.
//!
//! The engine is split along the snapshot + ledger architecture:
//!
//! - [`EngineBase`] assembles the reasoning graph (TBoxes + FoodKG +
//!   user + system context + knowledge records), compiles the OWL rule
//!   set once, materializes the closure once, and seals the result as
//!   epoch 0 of an append-only [`Ledger`]. Committing a session delta
//!   ([`EngineBase::commit`]) appends an immutable layer — with its own
//!   intern spill, its per-commit closure, and a chained
//!   tamper-evidence hash — instead of destructively absorbing it, so
//!   every historical epoch stays addressable:
//!   [`EngineBase::at_epoch`] / [`EngineBase::explain_as_of`] reproduce
//!   old answers byte-identically, and named branches
//!   ([`EngineBase::branch_create`]) fork counterfactual worlds from
//!   any epoch without copying the base closure.
//! - [`Session`] answers questions against a borrowed epoch view.
//!   Question individuals are asserted into a per-session [`Overlay`]
//!   and closed incrementally with the precompiled rules — committed
//!   layers are never touched, so concurrent sessions cannot observe
//!   each other.
//! - [`ExplanationEngine`] is the original single-owner façade: it wraps
//!   an [`EngineBase`] and commits each session's delta as a new epoch,
//!   preserving the accumulate-across-questions behaviour (and proof
//!   trees) of earlier versions while using the incremental closure
//!   underneath.
//!
//! Each `explain` call asserts the question individual, re-closes the
//! view, evaluates the explanation type's SPARQL template, and renders
//! the answer — the exact §IV reasoning-then-querying workflow.

use feo_foodkg::{FoodKg, Season, SystemContext, UserProfile};
use feo_ontology::ns::feo;
use feo_owl::{
    CompiledRules, InferenceResult, MaterializeOptions, Reasoner, ReasonerError, ReasonerOptions,
};
use feo_rdf::disk::OpenOptions as StoreOpenOptions;
use feo_rdf::governor::{Budget, Exhausted, Guard};
use feo_rdf::ledger::{diff_views, BaseStore, BranchChain, EpochId, Ledger, LedgerView};
use feo_rdf::pool::map_chunks;
use feo_rdf::{
    DiskStore, GraphView, IdTriple, Overlay, Parallelism, Segment, StoreError, Term, WalRecord,
};

use feo_recommender::{RecommendationSet, TraceStep};
use feo_sparql::{
    execute, execute_prepared, parse_query, plan_query, Planner, QueryOptions, QueryResult,
    SolutionTable, SparqlError,
};
use std::path::Path;
use std::sync::Arc;

use crate::cache::{PlanCache, PlanCacheStats, PlanKey};
use crate::ecosystem::{apply_hypothesis, assemble, assert_question};
use crate::explanation::{humanize, Explanation};
use crate::knowledge::{records_to_rdf, Population, EVERYDAY_RECORD, SCIENTIFIC_RECORD};
use crate::queries;
use crate::question::{ExplanationType, Hypothesis, Question};

/// Errors raised by the explanation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The assembled ontology is inconsistent.
    Inconsistent(Vec<String>),
    /// A SPARQL template failed (indicates an engine bug, surfaced rather
    /// than swallowed).
    Sparql(String),
    /// The question references an entity the KG does not know.
    UnknownEntity(String),
    /// Trace-based explanation requested without recommender output.
    MissingRecommendations,
    /// Case-based/statistical explanation requested without a reference
    /// population.
    MissingPopulation,
    /// An execution budget tripped while reasoning or querying (see
    /// [`feo_rdf::governor`]). Catch this to degrade gracefully — or use
    /// [`EngineBase::explain_with_budget`], which does it for you.
    Exhausted(Exhausted),
    /// A time-travel call named an epoch past the ledger head.
    UnknownEpoch(u64),
    /// A branch operation named a branch that was never created.
    UnknownBranch(String),
    /// `branch_create` was given a name already in use (or `"main"`).
    DuplicateBranch(String),
    /// The persistent store failed: I/O, corruption, or an incompatible
    /// on-disk format version (see [`feo_rdf::StoreError`]).
    Store(StoreError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Inconsistent(details) => {
                write!(f, "ontology inconsistent: {}", details.join("; "))
            }
            EngineError::Sparql(e) => write!(f, "competency query failed: {e}"),
            EngineError::UnknownEntity(e) => write!(f, "unknown entity: {e}"),
            EngineError::MissingRecommendations => {
                write!(f, "trace-based explanations need recommender output")
            }
            EngineError::MissingPopulation => {
                write!(
                    f,
                    "case-based/statistical explanations need a reference population"
                )
            }
            EngineError::Exhausted(e) => write!(f, "explanation stopped early: {e}"),
            EngineError::UnknownEpoch(n) => write!(f, "unknown epoch: {n} is past the ledger head"),
            EngineError::UnknownBranch(name) => write!(f, "unknown branch: {name}"),
            EngineError::DuplicateBranch(name) => {
                write!(f, "branch name already in use: {name}")
            }
            EngineError::Store(e) => write!(f, "persistent store: {e}"),
        }
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

impl std::error::Error for EngineError {}

/// Options accepted by the unified explanation entry points
/// ([`EngineBase::explain`] / [`Session::explain`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExplainOptions<'a> {
    /// Execution governor checked by incremental closes and SPARQL
    /// evaluation; `None` runs unguarded.
    pub guard: Option<&'a Guard>,
    /// SPARQL planner used for the competency queries. The default
    /// cost-based planner also routes through the base's snapshot-keyed
    /// plan cache.
    pub planner: Planner,
    /// Worker count for the session's incremental closes and query
    /// evaluation — and, in [`EngineBase::explain_batch`], for fanning
    /// the questions themselves across threads. A throughput knob only:
    /// results are identical at every setting.
    pub parallelism: Parallelism,
}

impl<'a> ExplainOptions<'a> {
    /// Options with only a guard set.
    pub fn guarded(guard: &'a Guard) -> Self {
        ExplainOptions {
            guard: Some(guard),
            planner: Planner::default(),
            parallelism: Parallelism::default(),
        }
    }
}

impl From<SparqlError> for EngineError {
    fn from(e: SparqlError) -> Self {
        match e {
            SparqlError::Exhausted(exhausted) => EngineError::Exhausted(exhausted),
            other => EngineError::Sparql(other.to_string()),
        }
    }
}

impl From<Exhausted> for EngineError {
    fn from(e: Exhausted) -> Self {
        EngineError::Exhausted(e)
    }
}

impl From<ReasonerError> for EngineError {
    fn from(e: ReasonerError) -> Self {
        EngineError::Exhausted(*e.exhausted())
    }
}

/// What a budgeted explanation run could not finish, and why.
///
/// Returned inside [`BudgetedOutcome`] when the shared budget trips
/// partway through a batch: `completed` lists the explanation types that
/// were fully answered before the trip, `skipped` the ones that were not.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// The resource that tripped, with spent/limit figures.
    pub exhausted: Exhausted,
    /// Explanation types answered before the budget ran out.
    pub completed: Vec<ExplanationType>,
    /// Explanation types skipped (the one in flight when the budget
    /// tripped, plus everything after it).
    pub skipped: Vec<ExplanationType>,
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = |ts: &[ExplanationType]| -> String {
            if ts.is_empty() {
                "none".to_string()
            } else {
                ts.iter().map(|t| t.label()).collect::<Vec<_>>().join(", ")
            }
        };
        write!(
            f,
            "{}; completed: {}; skipped: {}",
            self.exhausted,
            names(&self.completed),
            names(&self.skipped)
        )
    }
}

/// Result of [`EngineBase::explain_with_budget`]: every explanation that
/// finished within the budget, plus a [`DegradationReport`] when the
/// budget tripped before the batch completed.
#[derive(Debug)]
pub struct BudgetedOutcome {
    pub explanations: Vec<Explanation>,
    /// `None` when every question was answered within the budget.
    pub degradation: Option<DegradationReport>,
}

impl BudgetedOutcome {
    /// True when every requested explanation completed.
    pub fn is_complete(&self) -> bool {
        self.degradation.is_none()
    }
}

/// One line of [`EngineBase::history`]: what a commit added and the
/// chained hash sealing it.
#[derive(Debug, Clone)]
pub struct CommitInfo {
    pub epoch: EpochId,
    /// Provenance label recorded at commit time (`"base"` for epoch 0).
    pub label: String,
    /// Triples this epoch added (the whole closed base for epoch 0).
    pub triples: usize,
    /// Dictionary terms this epoch added.
    pub terms: usize,
    /// How many of the added triples the per-commit closure derived.
    pub inferred: usize,
    /// Chained tamper-evidence hash at this epoch.
    pub hash: u64,
}

/// One line of [`EngineBase::branch_list`].
#[derive(Debug, Clone)]
pub struct BranchInfo {
    pub name: String,
    /// Main-chain epoch the branch forked from.
    pub fork: EpochId,
    /// Commits the branch has made since forking.
    pub commits: usize,
    /// The branch's head epoch (fork + its own commits).
    pub head: EpochId,
    /// Hash of the branch's newest layer (`None` before any commit).
    pub head_hash: Option<u64>,
}

/// Content-level difference between two branch heads, as rendered
/// triples (each view renders through its own dictionary, so diverged
/// id spaces compare correctly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchDiff {
    pub only_in_a: Vec<String>,
    pub only_in_b: Vec<String>,
}

impl BranchDiff {
    /// True when both heads hold exactly the same triples.
    pub fn is_empty(&self) -> bool {
        self.only_in_a.is_empty() && self.only_in_b.is_empty()
    }
}

struct NamedBranch {
    name: String,
    /// Stable non-zero plan-cache chain id (creation order + 1):
    /// partitions this branch's cached plans from the main chain and
    /// from every other branch.
    cache_chain: u64,
    chain: BranchChain,
}

/// Per-commit provenance kept alongside the ledger layers (entry `k`
/// describes epoch `k + 1`).
struct CommitNote {
    label: String,
    inferred: usize,
}

/// The shared, materialized snapshot of the reasoning world — the
/// anchor of an append-only epoch [`Ledger`].
///
/// Built once per (KG, user, context) triple: the graph is assembled,
/// the rule set compiled from the TBox, and the closure materialized as
/// epoch 0. Reads take `&self` — [`EngineBase::explain`] spins up a
/// throwaway [`Session`] per question, so one base behind an `Arc`
/// serves any number of threads concurrently. Commits take `&mut self`
/// and append immutable layers; old epochs stay addressable through
/// [`EngineBase::at_epoch`] and named branches.
pub struct EngineBase {
    kg: FoodKg,
    user: UserProfile,
    ctx: SystemContext,
    /// Epoch 0 (the closed base) plus every committed delta layer.
    ledger: Ledger,
    /// Provenance for each committed layer, parallel to `ledger.layers()`.
    commit_log: Vec<CommitNote>,
    /// Named counterfactual worlds forked from main-chain epochs.
    branches: Vec<NamedBranch>,
    rules: CompiledRules,
    /// Closure statistics and derivations aggregated across the base
    /// and every main-chain commit (branch closures stay branch-local).
    inference: InferenceResult,
    population: Option<Population>,
    recommendations: Option<RecommendationSet>,
    track_proofs: bool,
    /// Parsed queries and their cost-based plans, keyed by
    /// `(EpochId, query text)` (see [`crate::cache`]).
    plan_cache: PlanCache,
    /// Attached persistent store, when the base was opened from or
    /// saved to disk. Commits append WAL records here; a failed append
    /// detaches the store and surfaces as an inference warning rather
    /// than poisoning the in-memory chain.
    store: Option<DiskStore>,
}

impl EngineBase {
    /// Assembles and materializes the reasoning graph.
    pub fn new(kg: FoodKg, user: UserProfile, ctx: SystemContext) -> Result<Self, EngineError> {
        Self::build(kg, user, ctx, false)
    }

    /// Like [`EngineBase::new`], but the reasoner tracks derivations so
    /// [`EngineBase::proof_of_type`] can render Pellet-style proof trees
    /// for inferred classifications.
    pub fn new_with_proofs(
        kg: FoodKg,
        user: UserProfile,
        ctx: SystemContext,
    ) -> Result<Self, EngineError> {
        Self::build(kg, user, ctx, true)
    }

    fn build(
        kg: FoodKg,
        user: UserProfile,
        ctx: SystemContext,
        track_proofs: bool,
    ) -> Result<Self, EngineError> {
        let mut graph = assemble(&kg, &user, &ctx);
        records_to_rdf(&mut graph);
        let reasoner = Self::reasoner(track_proofs);
        // Compile once; sessions only ever add ABox triples, so the rule
        // set stays valid for every incremental close that follows.
        let rules = reasoner.compile(&mut graph);
        // Unguarded materialization cannot trip; keep whatever closure
        // completed if that ever changes.
        let inference = reasoner
            .materialize(&mut graph, &MaterializeOptions::with_rules(&rules))
            .unwrap_or_else(|e| e.into_partial());
        if !inference.is_consistent() {
            return Err(EngineError::Inconsistent(
                inference
                    .inconsistencies
                    .iter()
                    .map(|i| i.detail.clone())
                    .collect(),
            ));
        }
        Ok(EngineBase {
            kg,
            user,
            ctx,
            ledger: Ledger::new(graph),
            commit_log: Vec::new(),
            branches: Vec::new(),
            rules,
            inference,
            population: None,
            recommendations: None,
            track_proofs,
            plan_cache: PlanCache::default(),
            store: None,
        })
    }

    fn reasoner(track_proofs: bool) -> Reasoner {
        Reasoner::with_options(ReasonerOptions {
            track_derivations: track_proofs,
            ..Default::default()
        })
    }

    /// Adds a reference population (enables case-based and statistical
    /// explanations). The population ABox is closed incrementally — it
    /// is written into an overlay, `materialize_delta` derives its
    /// consequences against the already-closed head, and the delta is
    /// committed as a new epoch — rather than re-running the full
    /// fixpoint. Order-insensitive with
    /// [`EngineBase::with_recommendations`].
    pub fn with_population(mut self, population: Population) -> Self {
        self.commit_with("population", |overlay| population.to_rdf(overlay));
        self.population = Some(population);
        self
    }

    /// Adds recommender output (enables trace-based explanations).
    /// Order-insensitive with [`EngineBase::with_population`].
    pub fn with_recommendations(mut self, set: RecommendationSet) -> Self {
        self.recommendations = Some(set);
        self
    }

    /// Commits a closed session delta as a new epoch on the main chain
    /// and returns its [`EpochId`]. The delta follows the
    /// [`Overlay::into_delta`] contract: spill terms in overlay-id
    /// order (which the ledger layer preserves verbatim, so the delta's
    /// id triples and any derivation records stay valid), triples in
    /// SPO order. `inference` is the per-commit closure that produced
    /// the delta — it is recorded alongside the layer, never recomputed
    /// on replay.
    pub fn commit(
        &mut self,
        spill: Vec<Term>,
        delta: Vec<IdTriple>,
        inference: InferenceResult,
    ) -> EpochId {
        self.commit_labeled("session", spill, delta, inference)
    }

    /// [`EngineBase::commit`] with a provenance label for
    /// [`EngineBase::history`].
    pub fn commit_labeled(
        &mut self,
        label: &str,
        spill: Vec<Term>,
        delta: Vec<IdTriple>,
        inference: InferenceResult,
    ) -> EpochId {
        // Write-ahead: persist the delta before the in-memory commit so
        // a crash after this point replays it on reopen. A failed append
        // detaches the store (the in-memory chain stays authoritative)
        // and surfaces as a warning instead of an error — callers of
        // `commit` hold closed session results that must not be lost.
        if let Some(store) = self.store.take() {
            let rec = WalRecord {
                label: label.to_string(),
                inferred: inference.added as u64,
                terms: spill.clone(),
                triples: delta
                    .iter()
                    .map(|t| {
                        [
                            t[0].index() as u32,
                            t[1].index() as u32,
                            t[2].index() as u32,
                        ]
                    })
                    .collect(),
            };
            match store.append_delta(&rec) {
                Ok(()) => self.store = Some(store),
                Err(e) => self
                    .inference
                    .warnings
                    .push(format!("store detached: WAL append failed: {e}")),
            }
        }
        let epoch = self.ledger.commit(spill, delta);
        self.commit_log.push(CommitNote {
            label: label.to_string(),
            inferred: inference.added,
        });
        self.inference.added += inference.added;
        self.inference.warnings.extend(inference.warnings);
        self.inference
            .inconsistencies
            .extend(inference.inconsistencies);
        self.inference.derivations.extend(inference.derivations);
        // Old epochs' cached plans stay valid (their statistics are
        // frozen with their layers); only the head key moves.
        self.plan_cache.advance_head(epoch.0);
        epoch
    }

    /// Runs `write` against a fresh overlay on the head view, closes
    /// the delta incrementally with the precompiled rules, and commits
    /// the result as a new epoch. The one-stop commit entry point used
    /// by [`EngineBase::with_population`], branch materialization, and
    /// tests.
    pub fn commit_with<F>(&mut self, label: &str, write: F) -> EpochId
    where
        F: for<'v> FnOnce(&mut Overlay<LedgerView<'v>>),
    {
        let (spill, delta, inference) = {
            let mut overlay = Overlay::new(self.ledger.head_view());
            write(&mut overlay);
            let inference = Self::reasoner(self.track_proofs)
                .materialize_delta(&mut overlay, &MaterializeOptions::with_rules(&self.rules))
                .unwrap_or_else(|e| e.into_partial());
            let (spill, delta) = overlay.into_delta();
            (spill, delta, inference)
        };
        self.commit_labeled(label, spill, delta, inference)
    }

    /// Deprecated forerunner of [`EngineBase::commit`]: same delta
    /// contract, but the epoch id was discarded and historical epochs
    /// were unreachable.
    #[deprecated(
        note = "use `commit` — deltas now append to the epoch ledger and return an \
                         `EpochId`; old epochs stay addressable via `at_epoch`"
    )]
    pub fn absorb(&mut self, spill: Vec<Term>, delta: Vec<IdTriple>, inference: InferenceResult) {
        let _ = self.commit(spill, delta, inference);
    }

    /// Hit/miss counters and head epoch of the epoch-keyed plan cache
    /// shared by this base's sessions.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// The newest committed epoch on the main chain.
    pub fn head(&self) -> EpochId {
        self.ledger.head()
    }

    /// The underlying epoch ledger — layers, hashes, and raw views.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The commit chain, oldest first: epoch 0 (the sealed base) plus
    /// one line per committed layer.
    pub fn history(&self) -> Vec<CommitInfo> {
        let base = self.ledger.base();
        let mut out = vec![CommitInfo {
            epoch: EpochId(0),
            label: "base".to_string(),
            triples: base.len(),
            terms: base.term_count(),
            inferred: self
                .inference
                .added
                .saturating_sub(self.commit_log.iter().map(|n| n.inferred).sum::<usize>()),
            hash: self.ledger.hash_at(EpochId(0)).unwrap_or_default(),
        }];
        for (i, (layer, note)) in self
            .ledger
            .layers()
            .iter()
            .zip(&self.commit_log)
            .enumerate()
        {
            out.push(CommitInfo {
                epoch: EpochId(i as u64 + 1),
                label: note.label.clone(),
                triples: layer.len(),
                terms: layer.term_len(),
                inferred: note.inferred,
                hash: layer.hash(),
            });
        }
        out
    }

    /// Opens a question-answering session over the head epoch. The
    /// session writes only into its private overlay; any number of
    /// sessions can run concurrently over one base.
    pub fn session(&self) -> Session<'_> {
        let epoch = self.ledger.head();
        Session {
            base: self,
            epoch,
            cache_key: Some(PlanKey::main(epoch.0)),
            overlay: Overlay::new(self.ledger.head_view()),
            inference: InferenceResult::default(),
            guard: None,
            planner: Planner::default(),
            parallelism: Parallelism::default(),
        }
    }

    /// Opens a session pinned at a historical epoch — the view stacks
    /// exactly the first `epoch` layers, so answers reproduce what the
    /// engine knew then, byte for byte. `None` past the head.
    ///
    /// Structured side-channels that never lived in the graph
    /// (recommender traces, the population's presence flag) are not
    /// versioned: graph-backed answers are epoch-exact, trace-based
    /// ones reflect the current recommender output.
    pub fn at_epoch(&self, epoch: EpochId) -> Option<Session<'_>> {
        let view = self.ledger.view(epoch)?;
        Some(Session {
            base: self,
            epoch,
            cache_key: Some(PlanKey::main(epoch.0)),
            overlay: Overlay::new(view),
            inference: InferenceResult::default(),
            guard: None,
            planner: Planner::default(),
            parallelism: Parallelism::default(),
        })
    }

    /// Answers `question` exactly as the engine would have at `epoch`:
    /// the session view stacks only the layers committed up to then,
    /// and plans come from the per-epoch cache partition, so later
    /// commits cannot perturb the answer.
    pub fn explain_as_of(
        &self,
        epoch: EpochId,
        question: &Question,
        opts: &ExplainOptions<'_>,
    ) -> Result<Explanation, EngineError> {
        self.at_epoch(epoch)
            .ok_or(EngineError::UnknownEpoch(epoch.0))?
            .explain(question, opts)
    }

    /// Runs a SPARQL query over a historical epoch's view.
    pub fn query_as_of(&self, epoch: EpochId, sparql: &str) -> Result<QueryResult, EngineError> {
        self.at_epoch(epoch)
            .ok_or(EngineError::UnknownEpoch(epoch.0))?
            .query(sparql)
    }

    // ---- persistent store --------------------------------------------

    /// Saves the main chain into `dir` as a persistent store — the
    /// sealed epoch-0 base as a dictionary-encoded, memory-mappable
    /// segment, every committed layer as one WAL record — and attaches
    /// the store so later commits append to the WAL. Reopen with
    /// [`EngineBase::open`]; fold the WAL back into the segment with
    /// [`EngineBase::compact`]. An existing store in `dir` is
    /// superseded atomically (MANIFEST rename).
    pub fn save_to(&mut self, dir: &Path) -> Result<(), EngineError> {
        let records: Vec<WalRecord> = self
            .ledger
            .layers()
            .iter()
            .zip(&self.commit_log)
            .map(|(layer, note)| WalRecord {
                label: note.label.clone(),
                inferred: note.inferred as u64,
                terms: layer.spill_terms().to_vec(),
                triples: layer.spo_raw().to_vec(),
            })
            .collect();
        let base = self.ledger.base();
        let base_inferred = self
            .inference
            .added
            .saturating_sub(self.commit_log.iter().map(|n| n.inferred).sum::<usize>())
            as u64;
        let store = DiskStore::save(dir, base, base.stats(), base_inferred, &records)?;
        self.store = Some(store);
        Ok(())
    }

    /// Opens a store written by [`EngineBase::save_to`]: the segment is
    /// memory-mapped as the epoch-0 base — no re-assembly, no
    /// re-materialization — and each WAL record replays through
    /// [`Ledger::commit`], reconstructing the same chain (same epochs,
    /// same term ids, same layer hashes), so answers are byte-identical
    /// to the engine that saved it.
    ///
    /// `kg`, `user`, and `ctx` supply the structured side-channels that
    /// never lived in the graph (recipe metadata, the user id, the
    /// season); they must match what the store was built from. Traits
    /// that are not persisted must be re-attached explicitly:
    /// [`EngineBase::mark_population`] for the population flag,
    /// [`EngineBase::with_recommendations`] for recommender output.
    /// Derivations are likewise not persisted, so
    /// [`EngineBase::proof_of_type`] cannot explain typings inferred
    /// before the save. A torn WAL tail is repaired during open and
    /// reported as an inference warning.
    pub fn open(
        dir: &Path,
        kg: FoodKg,
        user: UserProfile,
        ctx: SystemContext,
    ) -> Result<Self, EngineError> {
        let opened = DiskStore::open(dir, StoreOpenOptions::default())?;
        let mut inference = InferenceResult {
            added: opened.segment.base_inferred() as usize,
            converged: true,
            ..Default::default()
        };
        if let Some(e) = &opened.recovered {
            inference.warnings.push(format!("wal recovered: {e}"));
        }
        let mut ledger = Ledger::from_base(BaseStore::Disk(opened.segment.clone()));
        let mut commit_log = Vec::new();
        for rec in &opened.records {
            ledger.commit(rec.terms.clone(), rec.id_triples());
            commit_log.push(CommitNote {
                label: rec.label.clone(),
                inferred: rec.inferred as usize,
            });
            inference.added += rec.inferred as usize;
        }
        // Recompile the rule set from the persisted TBox. The segment
        // dictionary already holds the reasoner's vocabulary (it was
        // interned before the save), so the compile pass normally spills
        // nothing; if it ever does, the spill is committed — and
        // WAL-logged — as its own layer so ids stay aligned on disk.
        let (rules, spill, delta) = {
            let mut overlay = Overlay::new(ledger.head_view());
            let rules = Self::reasoner(false).compile(&mut overlay);
            let (spill, delta) = overlay.into_delta();
            (rules, spill, delta)
        };
        let plan_cache = PlanCache::default();
        plan_cache.advance_head(ledger.head().0);
        let mut engine = EngineBase {
            kg,
            user,
            ctx,
            ledger,
            commit_log,
            branches: Vec::new(),
            rules,
            inference,
            population: None,
            recommendations: None,
            track_proofs: false,
            plan_cache,
            store: Some(opened.store),
        };
        if !spill.is_empty() || !delta.is_empty() {
            engine.commit_labeled("vocab", spill, delta, InferenceResult::default());
        }
        Ok(engine)
    }

    /// Folds every committed layer into a fresh base segment with an
    /// empty WAL — log-structured compaction for the attached store.
    /// The MANIFEST rename publishes the new segment/WAL pair
    /// atomically, so a crash mid-compaction leaves the old pair
    /// intact. Afterwards the in-memory chain re-anchors on the new
    /// segment: history collapses to a single epoch 0, and branches and
    /// cached plans (both keyed by the old chain's epochs) are dropped.
    /// Term ids are preserved by the flatten, so accumulated
    /// derivations stay valid.
    pub fn compact(&mut self) -> Result<(), EngineError> {
        let Some(store) = self.store.as_mut() else {
            return Err(EngineError::Store(StoreError::Corrupt {
                what: "compact without an attached store (open or save_to first)".to_string(),
            }));
        };
        let stats = self
            .ledger
            .layers()
            .iter()
            .fold(self.ledger.base().stats().clone(), |acc, layer| {
                acc.merged_with(layer.stats())
            });
        store.compact(
            &self.ledger.head_view(),
            &stats,
            self.inference.added as u64,
        )?;
        let segment = Segment::open(&store.segment_path(), true)?;
        self.ledger = Ledger::from_base(BaseStore::Disk(Arc::new(segment)));
        self.commit_log.clear();
        self.branches.clear();
        self.plan_cache = PlanCache::default();
        Ok(())
    }

    /// Flags that a reference population is present without committing
    /// anything — for warm-opened stores whose population layer was
    /// already replayed from the WAL. (Committing it again through
    /// [`EngineBase::with_population`] would append a duplicate layer
    /// and shift every later epoch.)
    pub fn mark_population(&mut self, population: Population) {
        self.population = Some(population);
    }

    /// The attached persistent store, when the base was opened from or
    /// saved to disk.
    pub fn store(&self) -> Option<&DiskStore> {
        self.store.as_ref()
    }

    // ---- named branches ----------------------------------------------

    fn branch(&self, name: &str) -> Option<&NamedBranch> {
        self.branches.iter().find(|b| b.name == name)
    }

    /// Forks a named branch at `from`. The branch shares the base and
    /// the forked prefix by reference — nothing is copied; it diverges
    /// only through its own commits ([`EngineBase::branch_commit_with`]
    /// / [`EngineBase::branch_apply`]).
    pub fn branch_create(&mut self, name: &str, from: EpochId) -> Result<EpochId, EngineError> {
        if name == "main" || self.branch(name).is_some() {
            return Err(EngineError::DuplicateBranch(name.to_string()));
        }
        let chain = self
            .ledger
            .fork(from)
            .ok_or(EngineError::UnknownEpoch(from.0))?;
        self.branches.push(NamedBranch {
            name: name.to_string(),
            cache_chain: self.branches.len() as u64 + 1,
            chain,
        });
        Ok(from)
    }

    /// Runs `write` against an overlay on the branch's head view,
    /// closes it incrementally, and commits the delta onto the branch's
    /// own chain. The main chain and every other branch are untouched.
    pub fn branch_commit_with<F>(&mut self, name: &str, write: F) -> Result<EpochId, EngineError>
    where
        F: for<'v> FnOnce(&mut Overlay<LedgerView<'v>>),
    {
        let track = self.track_proofs;
        let rules = &self.rules;
        let ledger = &self.ledger;
        let branch = self
            .branches
            .iter_mut()
            .find(|b| b.name == name)
            .ok_or_else(|| EngineError::UnknownBranch(name.to_string()))?;
        let (spill, delta) = {
            let mut overlay = Overlay::new(ledger.branch_view(&branch.chain));
            write(&mut overlay);
            Self::reasoner(track)
                .materialize_delta(&mut overlay, &MaterializeOptions::with_rules(rules))
                .map(|_| ())
                .unwrap_or_else(|e| {
                    let _ = e.into_partial();
                });
            overlay.into_delta()
        };
        Ok(ledger.commit_branch(&mut branch.chain, spill, delta))
    }

    /// Applies a hypothesis as a commit on the named branch — the
    /// branch-world form of a counterfactual session: the hypothesis
    /// ABox is closed incrementally against the branch head and the
    /// result appended to the branch chain.
    pub fn branch_apply(
        &mut self,
        name: &str,
        hypothesis: &Hypothesis,
    ) -> Result<EpochId, EngineError> {
        let user = self.user.clone();
        self.branch_commit_with(name, |overlay| {
            apply_hypothesis(hypothesis, &user, overlay);
        })
    }

    /// Opens a session over the named branch's head view. Branch
    /// sessions share the base's plan cache through their own key
    /// partition — `(branch id, branch epoch, query)` — so replaying a
    /// question template on a branch reuses its cached plan instead of
    /// re-planning every request, without ever colliding with the main
    /// epoch of the same number.
    pub fn branch_session(&self, name: &str) -> Option<Session<'_>> {
        let branch = self.branch(name)?;
        Some(Session {
            base: self,
            epoch: branch.chain.head(),
            cache_key: Some(PlanKey::branch(branch.cache_chain, branch.chain.head().0)),
            overlay: Overlay::new(self.ledger.branch_view(&branch.chain)),
            inference: InferenceResult::default(),
            guard: None,
            planner: Planner::default(),
            parallelism: Parallelism::default(),
        })
    }

    /// Answers a question in a throwaway session over a branch head.
    pub fn explain_on_branch(
        &self,
        name: &str,
        question: &Question,
        opts: &ExplainOptions<'_>,
    ) -> Result<Explanation, EngineError> {
        self.branch_session(name)
            .ok_or_else(|| EngineError::UnknownBranch(name.to_string()))?
            .explain(question, opts)
    }

    /// All branches, in creation order.
    pub fn branch_list(&self) -> Vec<BranchInfo> {
        self.branches
            .iter()
            .map(|b| BranchInfo {
                name: b.name.clone(),
                fork: b.chain.fork_epoch(),
                commits: b.chain.layers().len(),
                head: b.chain.head(),
                head_hash: b.chain.head_hash(),
            })
            .collect()
    }

    fn diff_view<'s>(&'s self, name: &str) -> Result<LedgerView<'s>, EngineError> {
        if name == "main" {
            return Ok(self.ledger.head_view());
        }
        self.branch(name)
            .map(|b| self.ledger.branch_view(&b.chain))
            .ok_or_else(|| EngineError::UnknownBranch(name.to_string()))
    }

    /// Content-level difference between two branch heads (`"main"`
    /// names the main chain): triples only in `a` and triples only in
    /// `b`. The shared base and common prefix cancel out — only
    /// diverged layers contribute.
    pub fn branch_diff(&self, a: &str, b: &str) -> Result<BranchDiff, EngineError> {
        let va = self.diff_view(a)?;
        let vb = self.diff_view(b)?;
        let (only_in_a, only_in_b) = diff_views(&va, &vb);
        Ok(BranchDiff {
            only_in_a,
            only_in_b,
        })
    }

    /// Answers a question in a fresh throwaway session. Takes `&self`,
    /// so explanations can be produced from many threads over one
    /// `Arc<EngineBase>` — and no question can leak state into the next.
    ///
    /// [`ExplainOptions`] carries the execution guard (a trip surfaces
    /// as [`EngineError::Exhausted`] instead of unbounded work) and the
    /// SPARQL planner choice.
    pub fn explain<'s>(
        &'s self,
        question: &Question,
        opts: &ExplainOptions<'s>,
    ) -> Result<Explanation, EngineError> {
        self.session().explain(question, opts)
    }

    /// Deprecated form of [`EngineBase::explain`] with a guard.
    #[deprecated(note = "use `explain(question, &ExplainOptions::guarded(guard))`")]
    pub fn explain_guarded(
        &self,
        question: &Question,
        guard: &Guard,
    ) -> Result<Explanation, EngineError> {
        self.explain(question, &ExplainOptions::guarded(guard))
    }

    /// Answers a batch of questions under one shared [`Budget`],
    /// degrading gracefully when it trips.
    ///
    /// One [`Guard`] meters the whole batch — reasoning and querying for
    /// every question draw from the same deadline and budgets. When a
    /// budget trips mid-batch the call still succeeds: the outcome
    /// carries every explanation completed before the trip plus a
    /// [`DegradationReport`] naming the tripped resource and the skipped
    /// explanation types. Non-budget errors (unknown entity, missing
    /// population, engine bugs) abort the batch as a real `Err`.
    pub fn explain_with_budget(
        &self,
        questions: &[Question],
        budget: &Budget,
    ) -> Result<BudgetedOutcome, EngineError> {
        let guard = budget.start();
        let mut explanations = Vec::new();
        let mut completed = Vec::new();
        for (i, question) in questions.iter().enumerate() {
            match self.explain(question, &ExplainOptions::guarded(&guard)) {
                Ok(explanation) => {
                    completed.push(explanation.explanation_type);
                    explanations.push(explanation);
                }
                Err(EngineError::Exhausted(exhausted)) => {
                    let skipped = questions[i..]
                        .iter()
                        .map(Question::explanation_type)
                        .collect();
                    return Ok(BudgetedOutcome {
                        explanations,
                        degradation: Some(DegradationReport {
                            exhausted,
                            completed,
                            skipped,
                        }),
                    });
                }
                Err(other) => return Err(other),
            }
        }
        Ok(BudgetedOutcome {
            explanations,
            degradation: None,
        })
    }

    /// Answers a batch of questions concurrently — one throwaway
    /// [`Session`] per question, all reading this shared snapshot.
    ///
    /// Questions are partitioned contiguously across the worker pool
    /// ([`ExplainOptions::parallelism`], with the `FEO_THREADS` override
    /// honoured by [`Parallelism::Auto`]); each worker answers its slice
    /// in input order and the slices are merged back in input order, so
    /// the result vector is byte-identical to calling
    /// [`EngineBase::explain`] in a loop. Batch-level parallelism
    /// replaces intra-question parallelism: with more than one worker
    /// active, each session closes and queries sequentially rather than
    /// oversubscribing the machine with nested pools.
    ///
    /// A guard in `opts` meters the whole batch. Questions that trip (or
    /// start after the trip) report [`EngineError::Exhausted`] in their
    /// own slot instead of aborting the batch — per-question errors like
    /// [`EngineError::UnknownEntity`] likewise stay in their slot. For
    /// the aggregate completed/skipped view, see
    /// [`EngineBase::explain_batch_with_budget`].
    pub fn explain_batch(
        &self,
        questions: &[Question],
        opts: &ExplainOptions<'_>,
    ) -> Vec<Result<Explanation, EngineError>> {
        let workers = opts.parallelism.workers();
        let per_question = ExplainOptions {
            parallelism: if workers > 1 {
                Parallelism::Off
            } else {
                opts.parallelism
            },
            ..*opts
        };
        map_chunks(workers, 1, questions, |_, chunk| {
            chunk
                .iter()
                .map(|q| self.explain(q, &per_question))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Parallel counterpart of [`EngineBase::explain_with_budget`]: the
    /// batch fans out across the pool under one shared [`Budget`], and
    /// the outcome aggregates what finished before the budget tripped.
    ///
    /// Unlike the sequential form, workers race the shared budget — so
    /// *which* questions land in `completed` versus `skipped` after a
    /// trip depends on scheduling. The guarantees that do hold at every
    /// worker count: every returned explanation is complete and correct,
    /// `completed` ∪ `skipped` covers the batch exactly once, and a run
    /// whose budget never trips is byte-identical to the sequential
    /// path. Non-budget errors abort with `Err` as before.
    pub fn explain_batch_with_budget(
        &self,
        questions: &[Question],
        budget: &Budget,
        parallelism: Parallelism,
    ) -> Result<BudgetedOutcome, EngineError> {
        let guard = budget.start();
        let opts = ExplainOptions {
            guard: Some(&guard),
            planner: Planner::default(),
            parallelism,
        };
        let results = self.explain_batch(questions, &opts);
        let mut explanations = Vec::new();
        let mut completed = Vec::new();
        let mut skipped = Vec::new();
        let mut exhausted = None;
        for (question, result) in questions.iter().zip(results) {
            match result {
                Ok(explanation) => {
                    completed.push(explanation.explanation_type);
                    explanations.push(explanation);
                }
                Err(EngineError::Exhausted(e)) => {
                    skipped.push(question.explanation_type());
                    exhausted.get_or_insert(e);
                }
                Err(other) => return Err(other),
            }
        }
        Ok(BudgetedOutcome {
            explanations,
            degradation: exhausted.map(|exhausted| DegradationReport {
                exhausted,
                completed,
                skipped,
            }),
        })
    }

    /// Renders the reasoner's proof tree for `individual rdf:type class`
    /// over the head closure. Requires [`EngineBase::new_with_proofs`];
    /// returns `None` when the typing does not hold or was asserted
    /// rather than inferred.
    pub fn proof_of_type(&self, individual_local: &str, class_iri: &str) -> Option<String> {
        let view = self.ledger.head_view();
        let ind = view.lookup_iri(&FoodKg::iri(individual_local))?;
        let ty = view.lookup_iri(feo_rdf::vocab::rdf::TYPE)?;
        let class = view.lookup_iri(class_iri)?;
        if !view.contains_ids(ind, ty, class) {
            return None;
        }
        let node = feo_owl::proof(&self.inference, [ind, ty, class]);
        Some(node.render(&view))
    }

    pub fn inference(&self) -> &InferenceResult {
        &self.inference
    }

    /// The sealed epoch-0 base (TBox + curated ABox + recipe export,
    /// fully closed at build time): an in-memory [`feo_rdf::Graph`] for
    /// a freshly built engine, a memory-mapped [`Segment`] for one
    /// opened from disk. Later commits live in ledger layers stacked on
    /// top — see [`EngineBase::ledger`] for the full head view.
    pub fn graph(&self) -> &BaseStore {
        self.ledger.base()
    }

    /// The rule set compiled from the base TBox, reused by every
    /// incremental close.
    pub fn rules(&self) -> &CompiledRules {
        &self.rules
    }

    pub fn kg(&self) -> &FoodKg {
        &self.kg
    }

    pub fn user(&self) -> &UserProfile {
        &self.user
    }

    pub fn context(&self) -> &SystemContext {
        &self.ctx
    }
}

/// A per-question view over a shared [`EngineBase`], pinned at one
/// epoch of its ledger (the head for [`EngineBase::session`], any
/// historical epoch for [`EngineBase::at_epoch`], a branch head for
/// [`EngineBase::branch_session`]).
///
/// Question individuals (and everything the reasoner derives from them)
/// land in the session's [`Overlay`]; SPARQL templates evaluate over the
/// stacked epoch view + delta. Dropping the session discards the delta.
pub struct Session<'a> {
    base: &'a EngineBase,
    /// The ledger epoch this session's view is pinned at.
    epoch: EpochId,
    /// Plan-cache partition key — the chain (main or a named branch)
    /// and epoch this session's view is pinned at. `None` disables
    /// caching for this session.
    cache_key: Option<PlanKey>,
    overlay: Overlay<LedgerView<'a>>,
    /// Closure stats and derivations accumulated by this session's
    /// incremental closes (disjoint from the base's own inference).
    inference: InferenceResult,
    /// Execution governor checked by incremental closes and SPARQL
    /// evaluation; `None` on the legacy unguarded path.
    guard: Option<&'a Guard>,
    /// SPARQL planner used by this session's competency queries.
    planner: Planner,
    /// Worker count for this session's incremental closes and query
    /// evaluation.
    parallelism: Parallelism,
}

impl<'a> Session<'a> {
    /// The base this session reads through.
    pub fn base(&self) -> &'a EngineBase {
        self.base
    }

    /// The ledger epoch this session's view is pinned at.
    pub fn epoch(&self) -> EpochId {
        self.epoch
    }

    /// Inference accumulated by this session's incremental closes.
    pub fn inference(&self) -> &InferenceResult {
        &self.inference
    }

    /// Number of triples in the session delta.
    pub fn delta_len(&self) -> usize {
        self.overlay.delta_len()
    }

    /// Decomposes the session into its overlay and inference — used by
    /// [`ExplanationEngine`] to commit the delta as a ledger epoch.
    pub fn into_parts(self) -> (Overlay<LedgerView<'a>>, InferenceResult) {
        (self.overlay, self.inference)
    }

    /// Deprecated form of [`Session::explain`] with a guard.
    #[deprecated(note = "use `explain(question, &ExplainOptions::guarded(guard))`")]
    pub fn explain_guarded(
        &mut self,
        question: &Question,
        guard: &'a Guard,
    ) -> Result<Explanation, EngineError> {
        self.explain(question, &ExplainOptions::guarded(guard))
    }

    /// Evaluates a competency query over `view`, under the session guard
    /// when one is installed. With the cost-based planner the parsed
    /// query and its plan come from the base's chain+epoch-keyed cache —
    /// plans are computed against this session's pinned epoch view,
    /// whose statistics the per-session delta is far too small to flip.
    /// Branch sessions hit their own cache partition (see [`PlanKey`]).
    fn run_query<V: GraphView + Sync>(&self, view: V, q: &str) -> Result<QueryResult, EngineError> {
        let opts = QueryOptions {
            guard: self.guard,
            planner: self.planner,
            parallelism: self.parallelism,
            explain: false,
            force_join: None,
        };
        if self.planner == Planner::CostBased {
            if let Some(key) = self.cache_key {
                let (parsed, plan) =
                    self.base
                        .plan_cache
                        .get_or_insert(q, key, self.overlay.base())?;
                return Ok(execute_prepared(view, &parsed, &plan, &opts)?);
            }
            let parsed = parse_query(q)?;
            let plan = plan_query(self.overlay.base(), &parsed);
            return Ok(execute_prepared(view, &parsed, &plan, &opts)?);
        }
        let parsed = parse_query(q)?;
        Ok(execute(view, &parsed, &opts)?)
    }

    /// Runs an arbitrary SPARQL query over this session's epoch view
    /// plus its private delta — the entry point behind
    /// `feo query --as-of`.
    pub fn query(&self, sparql: &str) -> Result<QueryResult, EngineError> {
        self.run_query(&self.overlay, sparql)
    }

    /// Like [`Session::query`], but under the guard, planner, and
    /// parallelism carried by `opts` (which stick for the rest of this
    /// session, exactly as with [`Session::explain`]). This is the
    /// request-scoped entry point the HTTP service uses: the guard
    /// carries the request's clamped [`Budget`] and its disconnect
    /// [`feo_rdf::CancelFlag`], so an abandoned or over-budget query
    /// stops with a typed [`EngineError::Exhausted`] instead of
    /// burning the worker pool.
    pub fn query_opts(
        &mut self,
        sparql: &str,
        opts: &ExplainOptions<'a>,
    ) -> Result<QueryResult, EngineError> {
        self.guard = opts.guard;
        self.planner = opts.planner;
        self.parallelism = opts.parallelism;
        self.run_query(&self.overlay, sparql)
    }

    /// Answers a question with the matching explanation type, under the
    /// guard and planner carried by [`ExplainOptions`] (which stick for
    /// the rest of this session).
    pub fn explain(
        &mut self,
        question: &Question,
        opts: &ExplainOptions<'a>,
    ) -> Result<Explanation, EngineError> {
        self.guard = opts.guard;
        self.planner = opts.planner;
        self.parallelism = opts.parallelism;
        match question {
            Question::WhyEat { food } => self.contextual(question, food),
            Question::WhyEatOver { .. } => self.contrastive(question),
            Question::WhatIf { hypothesis } => self.counterfactual(question, hypothesis),
            Question::WhatSteps { food } => self.trace_based(question, food),
            Question::WhatOtherUsers { food } => self.case_based(question, food),
            Question::WhyGenerally { food } => {
                self.knowledge_based(question, food, EVERYDAY_RECORD, ExplanationType::Everyday)
            }
            Question::WhatLiterature { food } => self.knowledge_based(
                question,
                food,
                SCIENTIFIC_RECORD,
                ExplanationType::Scientific,
            ),
            Question::WhatIfEatenDaily { food } => self.simulation(question, food),
            Question::WhatEvidenceForDiet { diet } => self.statistical(question, diet),
        }
    }

    fn require_recipe(&self, food: &str) -> Result<(), EngineError> {
        if self.base.kg.recipe(food).is_none() && self.base.kg.ingredient(food).is_none() {
            return Err(EngineError::UnknownEntity(food.to_string()));
        }
        Ok(())
    }

    /// Asserts the question into the overlay and re-closes incrementally:
    /// the precompiled rules run semi-naïvely from the delta, which is
    /// equivalent to the paper's full "export with inferred axioms" over
    /// the extended graph because the base is already closed and the
    /// question triples are pure ABox.
    fn assert_and_close(&mut self, question: &Question) -> Result<(), EngineError> {
        assert_question(question, &mut self.overlay);
        let reasoner = EngineBase::reasoner(self.base.track_proofs);
        let opts = MaterializeOptions {
            guard: self.guard,
            rules: Some(&self.base.rules),
            parallelism: self.parallelism,
        };
        let (inference, tripped) = match reasoner.materialize_delta(&mut self.overlay, &opts) {
            Ok(inference) => (inference, None),
            // Keep the partial closure's statistics: the derived triples
            // are already in the overlay (sound but incomplete), and the
            // degradation report should account for them.
            Err(ReasonerError::Exhausted { exhausted, partial }) => (*partial, Some(exhausted)),
        };
        self.inference.added += inference.added;
        self.inference.rounds += inference.rounds;
        self.inference.warnings.extend(inference.warnings);
        self.inference
            .inconsistencies
            .extend(inference.inconsistencies);
        self.inference.derivations.extend(inference.derivations);
        match tripped {
            Some(exhausted) => Err(EngineError::Exhausted(exhausted)),
            None => Ok(()),
        }
    }

    // ---- CQ1: contextual ---------------------------------------------

    fn contextual(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        self.require_recipe(food)?;
        self.assert_and_close(question)?;
        let q = queries::contextual_query(question);
        let table = self.run_query(&self.overlay, &q)?.expect_solutions();

        let mut statements = Vec::new();
        for row in table.local_rows() {
            let (characteristic, class) = (&row[0], &row[1]);
            statements.push(self.contextual_sentence(food, characteristic, class));
        }
        let answer = if statements.is_empty() {
            format!("No external context currently supports {}.", humanize(food))
        } else {
            statements.join(" ")
        };
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Contextual,
            bindings: table,
            statements,
            answer,
        })
    }

    /// Renders one contextual statement, tracing the characteristic back
    /// through the recipe's ingredients the way the paper's example
    /// answer does ("uses the ingredient Cauliflower, which is available
    /// in the current season").
    fn contextual_sentence(&self, food: &str, characteristic: &str, class: &str) -> String {
        let kg = &self.base.kg;
        let food_h = humanize(food);
        match class {
            "SeasonCharacteristic" => {
                // Which ingredient carries the season?
                let season = Season::ALL
                    .iter()
                    .find(|s| s.name() == characteristic)
                    .copied();
                let carrier = kg.recipe(food).and_then(|r| {
                    r.ingredients.iter().find(|i| {
                        kg.ingredient(i)
                            .zip(season)
                            .map(|(ing, s)| ing.seasons.contains(&s))
                            .unwrap_or(false)
                    })
                });
                match carrier {
                    Some(ing) => format!(
                        "{food_h} uses the ingredient {}, which is available in the current season ({characteristic}).",
                        humanize(ing)
                    ),
                    None => format!(
                        "{food_h} is available in the current season ({characteristic})."
                    ),
                }
            }
            "LocationCharacteristic" => {
                let carrier = kg.recipe(food).and_then(|r| {
                    r.ingredients.iter().find(|i| {
                        kg.ingredient(i)
                            .map(|ing| ing.regions.iter().any(|reg| reg == characteristic))
                            .unwrap_or(false)
                    })
                });
                match carrier {
                    Some(ing) => format!(
                        "{food_h} uses the ingredient {}, which is available in your region ({characteristic}).",
                        humanize(ing)
                    ),
                    None => format!("{food_h} is available in your region ({characteristic})."),
                }
            }
            "BudgetCharacteristic" => {
                format!("{food_h} fits your budget ({}).", humanize(characteristic))
            }
            "TimeCharacteristic" => format!(
                "{food_h} suits the current time ({}).",
                humanize(characteristic)
            ),
            other => format!(
                "{food_h} matches your context through {} ({other}).",
                humanize(characteristic)
            ),
        }
    }

    // ---- CQ2: contrastive ----------------------------------------------

    fn contrastive(&mut self, question: &Question) -> Result<Explanation, EngineError> {
        let Question::WhyEatOver {
            preferred,
            alternative,
        } = question
        else {
            unreachable!("dispatch guarantees the shape");
        };
        self.require_recipe(preferred)?;
        self.require_recipe(alternative)?;
        self.assert_and_close(question)?;
        let q = queries::contrastive_query(question);
        let table = self.run_query(&self.overlay, &q)?.expect_solutions();

        let mut fact_parts: Vec<String> = Vec::new();
        let mut foil_parts: Vec<String> = Vec::new();
        for row in table.local_rows() {
            let (fact_type, fact, foil_type, foil) = (&row[0], &row[1], &row[2], &row[3]);
            // Parameter-typed rows are the question parameters themselves
            // (self-characteristics from preference seeds); their polarity
            // already surfaces through the Liked/Disliked rows.
            if fact_type != "Parameter" {
                let f = self.fact_clause(preferred, fact, fact_type);
                if !fact_parts.contains(&f) {
                    fact_parts.push(f);
                }
            }
            if foil_type != "Parameter" {
                let o = self.foil_clause(alternative, foil, foil_type);
                if !foil_parts.contains(&o) {
                    foil_parts.push(o);
                }
            }
        }
        let mut statements = fact_parts.clone();
        statements.extend(foil_parts.iter().cloned());
        let answer = if fact_parts.is_empty() && foil_parts.is_empty() {
            format!(
                "No decisive facts or foils distinguish {} from {}.",
                humanize(preferred),
                humanize(alternative)
            )
        } else {
            format!(
                "{} is better than {} because {}.",
                humanize(preferred),
                humanize(alternative),
                fact_parts
                    .iter()
                    .chain(foil_parts.iter())
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(", and ")
            )
        };
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Contrastive,
            bindings: table,
            statements,
            answer,
        })
    }

    fn fact_clause(&self, preferred: &str, fact: &str, fact_type: &str) -> String {
        match fact_type {
            "SeasonCharacteristic" => {
                format!("{} is currently in season ({fact})", humanize(preferred))
            }
            "LocationCharacteristic" => format!(
                "{} is available in your region ({fact})",
                humanize(preferred)
            ),
            "LikedFoodCharacteristic" => format!("you like {}", humanize(fact)),
            "NutritionalGoalCharacteristic" => format!(
                "{} advances your goal ({})",
                humanize(preferred),
                humanize(fact)
            ),
            "BudgetCharacteristic" => {
                format!("{} fits your budget", humanize(preferred))
            }
            _ => format!(
                "{} is supported by {} ({})",
                humanize(preferred),
                humanize(fact),
                humanize(fact_type)
            ),
        }
    }

    fn foil_clause(&self, alternative: &str, foil: &str, foil_type: &str) -> String {
        match foil_type {
            "AllergicFoodCharacteristic" => format!(
                "you are allergic to {} in {}",
                humanize(foil),
                humanize(alternative)
            ),
            "DislikedFoodCharacteristic" => format!("you dislike {}", humanize(foil)),
            "SeasonCharacteristic" => format!(
                "{} depends on {}, which is out of season",
                humanize(alternative),
                humanize(foil)
            ),
            "DietCharacteristic" | "Diet" => format!(
                "{} conflicts with your {} diet",
                humanize(alternative),
                humanize(foil)
            ),
            "BudgetCharacteristic" => {
                format!("{} exceeds your budget", humanize(alternative))
            }
            _ => format!(
                "{} is opposed by {} ({})",
                humanize(alternative),
                humanize(foil),
                humanize(foil_type)
            ),
        }
    }

    // ---- CQ3: counterfactual ---------------------------------------------

    fn counterfactual(
        &mut self,
        question: &Question,
        hypothesis: &Hypothesis,
    ) -> Result<Explanation, EngineError> {
        // Counterfactuals reason over a hypothetical world: a throwaway
        // overlay on this session's epoch view (the view is a stack of
        // references — no triples are copied). The hypothesis is pure
        // ABox, so the precompiled rules close it incrementally; the
        // world is discarded when this call returns. For a *persistent*
        // what-if world, use [`EngineBase::branch_create`] +
        // [`EngineBase::branch_apply`] instead.
        let mut world = Overlay::new(self.overlay.base().clone());
        apply_hypothesis(hypothesis, &self.base.user, &mut world);
        assert_question(question, &mut world);
        Reasoner::new().materialize_delta(
            &mut world,
            &MaterializeOptions {
                guard: self.guard,
                rules: Some(&self.base.rules),
                parallelism: self.parallelism,
            },
        )?;

        let subject_iri = match hypothesis {
            Hypothesis::Pregnant => feo::PREGNANCY_STATE.to_string(),
            Hypothesis::FollowedDiet(d) => FoodKg::iri(d),
            Hypothesis::AllergicTo(i) => FoodKg::iri(i),
        };
        let q = queries::counterfactual_query(&subject_iri);
        let table = self.run_query(&world, &q)?.expect_solutions();

        let mut forbidden: Vec<String> = Vec::new();
        let mut suggested: Vec<String> = Vec::new();
        for row in table.local_rows() {
            let (property, base, inherited) = (&row[0], &row[1], &row[2]);
            match property.as_str() {
                "forbids" => {
                    let item = humanize(base);
                    if !forbidden.contains(&item) {
                        forbidden.push(item);
                    }
                }
                "recommends" => {
                    let item = if inherited.is_empty() {
                        humanize(base)
                    } else {
                        humanize(inherited)
                    };
                    if !suggested.contains(&item) {
                        suggested.push(item);
                    }
                }
                _ => {}
            }
        }

        let mut statements = Vec::new();
        let mut sentences = Vec::new();
        if !forbidden.is_empty() {
            let s = format!(
                "If {}, you would be forbidden from eating {}.",
                hypothesis.describe(),
                forbidden.join(", ")
            );
            statements.push(s.clone());
            sentences.push(s);
        }
        if !suggested.is_empty() {
            let s = format!("You would be suggested to eat {}.", suggested.join(", "));
            statements.push(s.clone());
            sentences.push(s);
        }
        if sentences.is_empty() {
            sentences.push(format!(
                "If {}, your recommendations would not change.",
                hypothesis.describe()
            ));
        }
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Counterfactual,
            bindings: table,
            statements,
            answer: sentences.join(" "),
        })
    }

    // ---- trace-based -------------------------------------------------------

    fn trace_based(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        let set = self
            .base
            .recommendations
            .as_ref()
            .ok_or(EngineError::MissingRecommendations)?;
        let mut statements: Vec<String> = Vec::new();
        if let Some(rec) = set.get(food) {
            statements.push(format!(
                "{} was ranked with score {:.2}.",
                humanize(food),
                rec.score
            ));
            statements.extend(rec.trace.iter().map(TraceStep::to_string));
        } else if let Some(step) = set.elimination(food) {
            statements.push(step.to_string());
        } else {
            return Err(EngineError::UnknownEntity(food.to_string()));
        }
        let answer = format!(
            "Steps that led to the recommendation of {}: {}",
            humanize(food),
            statements.join("; ")
        );
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::TraceBased,
            bindings: SolutionTable::default(),
            statements,
            answer,
        })
    }

    // ---- case-based ---------------------------------------------------------

    fn case_based(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        if self.base.population.is_none() {
            return Err(EngineError::MissingPopulation);
        }
        self.require_recipe(food)?;
        let q = queries::case_based_query(&FoodKg::iri(&self.base.user.id), &FoodKg::iri(food));
        let table = self.run_query(&self.overlay, &q)?.expect_solutions();
        let supporters: i64 = table
            .rows
            .first()
            .and_then(|r| r[0].as_ref())
            .and_then(|t| t.as_literal())
            .and_then(|l| l.as_integer())
            .unwrap_or(0);
        let statements = vec![format!(
            "{supporters} users who share your diet or goals also like {}.",
            humanize(food)
        )];
        let answer = statements[0].clone();
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::CaseBased,
            bindings: table,
            statements,
            answer,
        })
    }

    // ---- everyday & scientific -------------------------------------------

    fn knowledge_based(
        &mut self,
        question: &Question,
        food: &str,
        record_class: &str,
        explanation_type: ExplanationType,
    ) -> Result<Explanation, EngineError> {
        self.require_recipe(food)?;
        let q = queries::knowledge_record_query(&FoodKg::iri(food), record_class);
        let table = self.run_query(&self.overlay, &q)?.expect_solutions();
        let mut statements = Vec::new();
        for row in table.local_rows() {
            let (about, text, source) = (&row[1], &row[2], &row[3]);
            let s = if source.is_empty() {
                format!("{} ({}).", text.trim_end_matches('.'), humanize(about))
            } else {
                format!("{} [{}]", text, source)
            };
            if !statements.contains(&s) {
                statements.push(s);
            }
        }
        let answer = if statements.is_empty() {
            format!("No recorded evidence mentions {}.", humanize(food))
        } else {
            statements.join(" ")
        };
        Ok(Explanation {
            question: question.clone(),
            explanation_type,
            bindings: table,
            statements,
            answer,
        })
    }

    // ---- simulation-based ---------------------------------------------------

    fn simulation(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        let kg = &self.base.kg;
        let recipe = kg
            .recipe(food)
            .ok_or_else(|| EngineError::UnknownEntity(food.to_string()))?;
        let weekly = recipe.calories as i64 * 7;
        let nutrients = kg.recipe_nutrients(recipe);
        let categories = kg.recipe_categories(recipe);
        let mut statements = vec![format!(
            "Eating {} every day adds about {} kcal per week ({} kcal per serving).",
            humanize(food),
            weekly,
            recipe.calories
        )];
        if !nutrients.is_empty() {
            statements.push(format!(
                "You would consistently get {}.",
                nutrients
                    .iter()
                    .map(|n| humanize(n))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let missing: Vec<&str> = ["Protein", "Fiber", "VitaminC"]
            .into_iter()
            .filter(|n| !nutrients.iter().any(|have| have == n))
            .collect();
        if !missing.is_empty() {
            statements.push(format!(
                "A single-dish diet would lack {} — add variety.",
                missing.join(", ")
            ));
        }
        if categories.iter().any(|c| c == "HighCarb") && recipe.calories > 400 {
            statements.push(
                "Daily intake of a calorie-dense, high-carb dish risks exceeding energy needs."
                    .to_string(),
            );
        }
        let answer = statements.join(" ");
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::SimulationBased,
            bindings: SolutionTable::default(),
            statements,
            answer,
        })
    }

    // ---- statistical ----------------------------------------------------------

    fn statistical(&mut self, question: &Question, diet: &str) -> Result<Explanation, EngineError> {
        if self.base.population.is_none() {
            return Err(EngineError::MissingPopulation);
        }
        if self.base.kg.diet(diet).is_none() {
            return Err(EngineError::UnknownEntity(diet.to_string()));
        }
        let q = queries::statistical_query(&FoodKg::iri(diet));
        let table = self.run_query(&self.overlay, &q)?.expect_solutions();
        let get = |row: &Vec<Option<feo_rdf::Term>>, i: usize| -> i64 {
            row.get(i)
                .and_then(|c| c.as_ref())
                .and_then(|t| t.as_literal())
                .and_then(|l| l.as_integer())
                .unwrap_or(0)
        };
        let (total, succeeded) = table
            .rows
            .first()
            .map(|r| (get(r, 0), get(r, 1)))
            .unwrap_or((0, 0));
        let statements = vec![format!(
            "Of {total} users following the {} diet, {succeeded} achieved a nutritional goal.",
            humanize(diet)
        )];
        let answer = statements[0].clone();
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Statistical,
            bindings: table,
            statements,
            answer,
        })
    }
}

/// The FEO explanation engine — single-owner façade over [`EngineBase`].
///
/// Each [`ExplanationEngine::explain`] call runs a [`Session`] and then
/// commits the session's delta into the owned base, so question
/// individuals and their inferred classifications accumulate exactly as
/// in earlier versions (and [`ExplanationEngine::proof_of_type`] can
/// explain typings derived while answering). For isolated or concurrent
/// question answering use [`EngineBase`] directly.
pub struct ExplanationEngine {
    base: EngineBase,
}

impl ExplanationEngine {
    /// Assembles and materializes the reasoning graph.
    pub fn new(kg: FoodKg, user: UserProfile, ctx: SystemContext) -> Result<Self, EngineError> {
        EngineBase::new(kg, user, ctx).map(|base| ExplanationEngine { base })
    }

    /// Like [`ExplanationEngine::new`], but the reasoner tracks
    /// derivations so [`ExplanationEngine::proof_of_type`] can render
    /// Pellet-style proof trees for inferred classifications.
    pub fn new_with_proofs(
        kg: FoodKg,
        user: UserProfile,
        ctx: SystemContext,
    ) -> Result<Self, EngineError> {
        EngineBase::new_with_proofs(kg, user, ctx).map(|base| ExplanationEngine { base })
    }

    /// Adds a reference population (enables case-based and statistical
    /// explanations).
    pub fn with_population(mut self, population: Population) -> Self {
        self.base = self.base.with_population(population);
        self
    }

    /// Adds recommender output (enables trace-based explanations and the
    /// recommendation deltas in counterfactuals).
    pub fn with_recommendations(mut self, set: RecommendationSet) -> Self {
        self.base = self.base.with_recommendations(set);
        self
    }

    /// Answers a question, then commits the session's delta (question
    /// triples, derived classifications, derivations) as a new epoch on
    /// the base's ledger.
    pub fn explain(&mut self, question: &Question) -> Result<Explanation, EngineError> {
        let mut session = self.base.session();
        let result = session.explain(question, &ExplainOptions::default());
        let (overlay, inference) = session.into_parts();
        let (spill, delta) = overlay.into_delta();
        self.base.commit_labeled("explain", spill, delta, inference);
        result
    }

    /// Renders the reasoner's proof tree for `individual rdf:type class`,
    /// e.g. why Broccoli was classified an `eo:Foil`. Requires
    /// [`ExplanationEngine::new_with_proofs`]; returns `None` when the
    /// typing does not hold or was asserted rather than inferred.
    pub fn proof_of_type(&self, individual_local: &str, class_iri: &str) -> Option<String> {
        self.base.proof_of_type(individual_local, class_iri)
    }

    /// The shared base — e.g. to wrap it in an `Arc` for concurrent
    /// sessions after the stateful phase is over.
    pub fn into_base(self) -> EngineBase {
        self.base
    }

    pub fn base(&self) -> &EngineBase {
        &self.base
    }

    pub fn inference(&self) -> &InferenceResult {
        self.base.inference()
    }

    pub fn graph(&self) -> &BaseStore {
        self.base.graph()
    }

    pub fn kg(&self) -> &FoodKg {
        self.base.kg()
    }

    pub fn user(&self) -> &UserProfile {
        self.base.user()
    }

    pub fn context(&self) -> &SystemContext {
        self.base.context()
    }
}
