//! The explanation engine — the paper's pipeline end to end.
//!
//! The engine is split along the snapshot + overlay architecture:
//!
//! - [`EngineBase`] assembles the reasoning graph (TBoxes + FoodKG +
//!   user + system context + knowledge records), compiles the OWL rule
//!   set once, and materializes the closure once. It is immutable after
//!   construction and can be shared behind an `Arc` across threads.
//! - [`Session`] answers questions against a borrowed base. Question
//!   individuals are asserted into a per-session [`Overlay`] and closed
//!   incrementally with the precompiled rules — the base graph is never
//!   touched, so concurrent sessions cannot observe each other.
//! - [`ExplanationEngine`] is the original single-owner façade: it wraps
//!   an [`EngineBase`] and commits each session's delta back into the
//!   base, preserving the accumulate-across-questions behaviour (and
//!   proof trees) of earlier versions while using the incremental
//!   closure underneath.
//!
//! Each `explain` call asserts the question individual, re-closes the
//! view, evaluates the explanation type's SPARQL template, and renders
//! the answer — the exact §IV reasoning-then-querying workflow.

use feo_foodkg::{FoodKg, Season, SystemContext, UserProfile};
use feo_ontology::ns::feo;
use feo_owl::{
    CompiledRules, InferenceResult, MaterializeOptions, Reasoner, ReasonerError, ReasonerOptions,
};
use feo_rdf::governor::{Budget, Exhausted, Guard};
use feo_rdf::pool::map_chunks;
use feo_rdf::{Graph, GraphView, IdTriple, Overlay, Parallelism, Term};
use feo_recommender::{RecommendationSet, TraceStep};
use feo_sparql::{
    execute, execute_prepared, parse_query, Planner, QueryOptions, QueryResult, SolutionTable,
    SparqlError,
};

use crate::cache::{PlanCache, PlanCacheStats};
use crate::ecosystem::{apply_hypothesis, assemble, assert_question};
use crate::explanation::{humanize, Explanation};
use crate::knowledge::{records_to_rdf, Population, EVERYDAY_RECORD, SCIENTIFIC_RECORD};
use crate::queries;
use crate::question::{ExplanationType, Hypothesis, Question};

/// Errors raised by the explanation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The assembled ontology is inconsistent.
    Inconsistent(Vec<String>),
    /// A SPARQL template failed (indicates an engine bug, surfaced rather
    /// than swallowed).
    Sparql(String),
    /// The question references an entity the KG does not know.
    UnknownEntity(String),
    /// Trace-based explanation requested without recommender output.
    MissingRecommendations,
    /// Case-based/statistical explanation requested without a reference
    /// population.
    MissingPopulation,
    /// An execution budget tripped while reasoning or querying (see
    /// [`feo_rdf::governor`]). Catch this to degrade gracefully — or use
    /// [`EngineBase::explain_with_budget`], which does it for you.
    Exhausted(Exhausted),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Inconsistent(details) => {
                write!(f, "ontology inconsistent: {}", details.join("; "))
            }
            EngineError::Sparql(e) => write!(f, "competency query failed: {e}"),
            EngineError::UnknownEntity(e) => write!(f, "unknown entity: {e}"),
            EngineError::MissingRecommendations => {
                write!(f, "trace-based explanations need recommender output")
            }
            EngineError::MissingPopulation => {
                write!(
                    f,
                    "case-based/statistical explanations need a reference population"
                )
            }
            EngineError::Exhausted(e) => write!(f, "explanation stopped early: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Options accepted by the unified explanation entry points
/// ([`EngineBase::explain`] / [`Session::explain`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExplainOptions<'a> {
    /// Execution governor checked by incremental closes and SPARQL
    /// evaluation; `None` runs unguarded.
    pub guard: Option<&'a Guard>,
    /// SPARQL planner used for the competency queries. The default
    /// cost-based planner also routes through the base's snapshot-keyed
    /// plan cache.
    pub planner: Planner,
    /// Worker count for the session's incremental closes and query
    /// evaluation — and, in [`EngineBase::explain_batch`], for fanning
    /// the questions themselves across threads. A throughput knob only:
    /// results are identical at every setting.
    pub parallelism: Parallelism,
}

impl<'a> ExplainOptions<'a> {
    /// Options with only a guard set.
    pub fn guarded(guard: &'a Guard) -> Self {
        ExplainOptions {
            guard: Some(guard),
            planner: Planner::default(),
            parallelism: Parallelism::default(),
        }
    }
}

impl From<SparqlError> for EngineError {
    fn from(e: SparqlError) -> Self {
        match e {
            SparqlError::Exhausted(exhausted) => EngineError::Exhausted(exhausted),
            other => EngineError::Sparql(other.to_string()),
        }
    }
}

impl From<Exhausted> for EngineError {
    fn from(e: Exhausted) -> Self {
        EngineError::Exhausted(e)
    }
}

impl From<ReasonerError> for EngineError {
    fn from(e: ReasonerError) -> Self {
        EngineError::Exhausted(*e.exhausted())
    }
}

/// What a budgeted explanation run could not finish, and why.
///
/// Returned inside [`BudgetedOutcome`] when the shared budget trips
/// partway through a batch: `completed` lists the explanation types that
/// were fully answered before the trip, `skipped` the ones that were not.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// The resource that tripped, with spent/limit figures.
    pub exhausted: Exhausted,
    /// Explanation types answered before the budget ran out.
    pub completed: Vec<ExplanationType>,
    /// Explanation types skipped (the one in flight when the budget
    /// tripped, plus everything after it).
    pub skipped: Vec<ExplanationType>,
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = |ts: &[ExplanationType]| -> String {
            if ts.is_empty() {
                "none".to_string()
            } else {
                ts.iter().map(|t| t.label()).collect::<Vec<_>>().join(", ")
            }
        };
        write!(
            f,
            "{}; completed: {}; skipped: {}",
            self.exhausted,
            names(&self.completed),
            names(&self.skipped)
        )
    }
}

/// Result of [`EngineBase::explain_with_budget`]: every explanation that
/// finished within the budget, plus a [`DegradationReport`] when the
/// budget tripped before the batch completed.
#[derive(Debug)]
pub struct BudgetedOutcome {
    pub explanations: Vec<Explanation>,
    /// `None` when every question was answered within the budget.
    pub degradation: Option<DegradationReport>,
}

impl BudgetedOutcome {
    /// True when every requested explanation completed.
    pub fn is_complete(&self) -> bool {
        self.degradation.is_none()
    }
}

/// The shared, materialized snapshot of the reasoning world.
///
/// Built once per (KG, user, context) triple: the graph is assembled,
/// the rule set compiled from the TBox, and the closure materialized.
/// After that the base is read-only — [`EngineBase::explain`] takes
/// `&self` and spins up a throwaway [`Session`] per question, so one
/// base behind an `Arc` serves any number of threads concurrently.
pub struct EngineBase {
    kg: FoodKg,
    user: UserProfile,
    ctx: SystemContext,
    graph: Graph,
    rules: CompiledRules,
    inference: InferenceResult,
    population: Option<Population>,
    recommendations: Option<RecommendationSet>,
    track_proofs: bool,
    /// Parsed queries and their cost-based plans, keyed by query text and
    /// the base's snapshot epoch (see [`crate::cache`]).
    plan_cache: PlanCache,
}

impl EngineBase {
    /// Assembles and materializes the reasoning graph.
    pub fn new(kg: FoodKg, user: UserProfile, ctx: SystemContext) -> Result<Self, EngineError> {
        Self::build(kg, user, ctx, false)
    }

    /// Like [`EngineBase::new`], but the reasoner tracks derivations so
    /// [`EngineBase::proof_of_type`] can render Pellet-style proof trees
    /// for inferred classifications.
    pub fn new_with_proofs(
        kg: FoodKg,
        user: UserProfile,
        ctx: SystemContext,
    ) -> Result<Self, EngineError> {
        Self::build(kg, user, ctx, true)
    }

    fn build(
        kg: FoodKg,
        user: UserProfile,
        ctx: SystemContext,
        track_proofs: bool,
    ) -> Result<Self, EngineError> {
        let mut graph = assemble(&kg, &user, &ctx);
        records_to_rdf(&mut graph);
        let reasoner = Self::reasoner(track_proofs);
        // Compile once; sessions only ever add ABox triples, so the rule
        // set stays valid for every incremental close that follows.
        let rules = reasoner.compile(&mut graph);
        // Unguarded materialization cannot trip; keep whatever closure
        // completed if that ever changes.
        let inference = reasoner
            .materialize(&mut graph, &MaterializeOptions::with_rules(&rules))
            .unwrap_or_else(|e| e.into_partial());
        if !inference.is_consistent() {
            return Err(EngineError::Inconsistent(
                inference
                    .inconsistencies
                    .iter()
                    .map(|i| i.detail.clone())
                    .collect(),
            ));
        }
        Ok(EngineBase {
            kg,
            user,
            ctx,
            graph,
            rules,
            inference,
            population: None,
            recommendations: None,
            track_proofs,
            plan_cache: PlanCache::default(),
        })
    }

    fn reasoner(track_proofs: bool) -> Reasoner {
        Reasoner::with_options(ReasonerOptions {
            track_derivations: track_proofs,
            ..Default::default()
        })
    }

    /// Adds a reference population (enables case-based and statistical
    /// explanations). The population ABox is closed incrementally — it
    /// is written into an overlay, `materialize_delta` derives its
    /// consequences against the already-closed base, and the delta is
    /// merged back — rather than re-running the full fixpoint.
    /// Order-insensitive with [`EngineBase::with_recommendations`].
    pub fn with_population(mut self, population: Population) -> Self {
        let reasoner = Self::reasoner(self.track_proofs);
        let mut overlay = Overlay::new(&self.graph);
        population.to_rdf(&mut overlay);
        let inference = reasoner
            .materialize_delta(&mut overlay, &MaterializeOptions::with_rules(&self.rules))
            .unwrap_or_else(|e| e.into_partial());
        let (spill, delta) = overlay.into_delta();
        self.absorb(spill, delta, inference);
        self.population = Some(population);
        self
    }

    /// Adds recommender output (enables trace-based explanations).
    /// Order-insensitive with [`EngineBase::with_population`].
    pub fn with_recommendations(mut self, set: RecommendationSet) -> Self {
        self.recommendations = Some(set);
        self
    }

    /// Merges an overlay delta into the base graph. Spill terms are
    /// interned in overlay-id order, which re-creates the same dense
    /// ids in the base dictionary — so the delta's id triples and any
    /// derivation records stay valid verbatim.
    fn absorb(&mut self, spill: Vec<Term>, delta: Vec<IdTriple>, inference: InferenceResult) {
        let before = self.graph.term_count();
        let spilled = spill.len();
        for term in &spill {
            self.graph.intern(term);
        }
        debug_assert_eq!(self.graph.term_count(), before + spilled);
        for [s, p, o] in delta {
            self.graph.insert_ids(s, p, o);
        }
        self.inference.added += inference.added;
        self.inference.warnings.extend(inference.warnings);
        self.inference
            .inconsistencies
            .extend(inference.inconsistencies);
        self.inference.derivations.extend(inference.derivations);
        // The snapshot changed: statistics that justified cached join
        // orders are stale, so every cached plan is invalidated at once.
        self.plan_cache.invalidate();
    }

    /// Hit/miss counters and current epoch of the snapshot-keyed plan
    /// cache shared by this base's sessions.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Opens a question-answering session over this base. The session
    /// writes only into its private overlay; any number of sessions can
    /// run concurrently over one base.
    pub fn session(&self) -> Session<'_> {
        Session {
            base: self,
            overlay: Overlay::new(&self.graph),
            inference: InferenceResult::default(),
            guard: None,
            planner: Planner::default(),
            parallelism: Parallelism::default(),
        }
    }

    /// Answers a question in a fresh throwaway session. Takes `&self`,
    /// so explanations can be produced from many threads over one
    /// `Arc<EngineBase>` — and no question can leak state into the next.
    ///
    /// [`ExplainOptions`] carries the execution guard (a trip surfaces
    /// as [`EngineError::Exhausted`] instead of unbounded work) and the
    /// SPARQL planner choice.
    pub fn explain<'s>(
        &'s self,
        question: &Question,
        opts: &ExplainOptions<'s>,
    ) -> Result<Explanation, EngineError> {
        self.session().explain(question, opts)
    }

    /// Deprecated form of [`EngineBase::explain`] with a guard.
    #[deprecated(note = "use `explain(question, &ExplainOptions::guarded(guard))`")]
    pub fn explain_guarded(
        &self,
        question: &Question,
        guard: &Guard,
    ) -> Result<Explanation, EngineError> {
        self.explain(question, &ExplainOptions::guarded(guard))
    }

    /// Answers a batch of questions under one shared [`Budget`],
    /// degrading gracefully when it trips.
    ///
    /// One [`Guard`] meters the whole batch — reasoning and querying for
    /// every question draw from the same deadline and budgets. When a
    /// budget trips mid-batch the call still succeeds: the outcome
    /// carries every explanation completed before the trip plus a
    /// [`DegradationReport`] naming the tripped resource and the skipped
    /// explanation types. Non-budget errors (unknown entity, missing
    /// population, engine bugs) abort the batch as a real `Err`.
    pub fn explain_with_budget(
        &self,
        questions: &[Question],
        budget: &Budget,
    ) -> Result<BudgetedOutcome, EngineError> {
        let guard = budget.start();
        let mut explanations = Vec::new();
        let mut completed = Vec::new();
        for (i, question) in questions.iter().enumerate() {
            match self.explain(question, &ExplainOptions::guarded(&guard)) {
                Ok(explanation) => {
                    completed.push(explanation.explanation_type);
                    explanations.push(explanation);
                }
                Err(EngineError::Exhausted(exhausted)) => {
                    let skipped = questions[i..]
                        .iter()
                        .map(Question::explanation_type)
                        .collect();
                    return Ok(BudgetedOutcome {
                        explanations,
                        degradation: Some(DegradationReport {
                            exhausted,
                            completed,
                            skipped,
                        }),
                    });
                }
                Err(other) => return Err(other),
            }
        }
        Ok(BudgetedOutcome {
            explanations,
            degradation: None,
        })
    }

    /// Answers a batch of questions concurrently — one throwaway
    /// [`Session`] per question, all reading this shared snapshot.
    ///
    /// Questions are partitioned contiguously across the worker pool
    /// ([`ExplainOptions::parallelism`], with the `FEO_THREADS` override
    /// honoured by [`Parallelism::Auto`]); each worker answers its slice
    /// in input order and the slices are merged back in input order, so
    /// the result vector is byte-identical to calling
    /// [`EngineBase::explain`] in a loop. Batch-level parallelism
    /// replaces intra-question parallelism: with more than one worker
    /// active, each session closes and queries sequentially rather than
    /// oversubscribing the machine with nested pools.
    ///
    /// A guard in `opts` meters the whole batch. Questions that trip (or
    /// start after the trip) report [`EngineError::Exhausted`] in their
    /// own slot instead of aborting the batch — per-question errors like
    /// [`EngineError::UnknownEntity`] likewise stay in their slot. For
    /// the aggregate completed/skipped view, see
    /// [`EngineBase::explain_batch_with_budget`].
    pub fn explain_batch(
        &self,
        questions: &[Question],
        opts: &ExplainOptions<'_>,
    ) -> Vec<Result<Explanation, EngineError>> {
        let workers = opts.parallelism.workers();
        let per_question = ExplainOptions {
            parallelism: if workers > 1 {
                Parallelism::Off
            } else {
                opts.parallelism
            },
            ..*opts
        };
        map_chunks(workers, 1, questions, |_, chunk| {
            chunk
                .iter()
                .map(|q| self.explain(q, &per_question))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Parallel counterpart of [`EngineBase::explain_with_budget`]: the
    /// batch fans out across the pool under one shared [`Budget`], and
    /// the outcome aggregates what finished before the budget tripped.
    ///
    /// Unlike the sequential form, workers race the shared budget — so
    /// *which* questions land in `completed` versus `skipped` after a
    /// trip depends on scheduling. The guarantees that do hold at every
    /// worker count: every returned explanation is complete and correct,
    /// `completed` ∪ `skipped` covers the batch exactly once, and a run
    /// whose budget never trips is byte-identical to the sequential
    /// path. Non-budget errors abort with `Err` as before.
    pub fn explain_batch_with_budget(
        &self,
        questions: &[Question],
        budget: &Budget,
        parallelism: Parallelism,
    ) -> Result<BudgetedOutcome, EngineError> {
        let guard = budget.start();
        let opts = ExplainOptions {
            guard: Some(&guard),
            planner: Planner::default(),
            parallelism,
        };
        let results = self.explain_batch(questions, &opts);
        let mut explanations = Vec::new();
        let mut completed = Vec::new();
        let mut skipped = Vec::new();
        let mut exhausted = None;
        for (question, result) in questions.iter().zip(results) {
            match result {
                Ok(explanation) => {
                    completed.push(explanation.explanation_type);
                    explanations.push(explanation);
                }
                Err(EngineError::Exhausted(e)) => {
                    skipped.push(question.explanation_type());
                    exhausted.get_or_insert(e);
                }
                Err(other) => return Err(other),
            }
        }
        Ok(BudgetedOutcome {
            explanations,
            degradation: exhausted.map(|exhausted| DegradationReport {
                exhausted,
                completed,
                skipped,
            }),
        })
    }

    /// Renders the reasoner's proof tree for `individual rdf:type class`
    /// over the base closure. Requires [`EngineBase::new_with_proofs`];
    /// returns `None` when the typing does not hold or was asserted
    /// rather than inferred.
    pub fn proof_of_type(&self, individual_local: &str, class_iri: &str) -> Option<String> {
        let ind = self.graph.lookup_iri(&FoodKg::iri(individual_local))?;
        let ty = self.graph.lookup_iri(feo_rdf::vocab::rdf::TYPE)?;
        let class = self.graph.lookup_iri(class_iri)?;
        if !self.graph.contains_ids(ind, ty, class) {
            return None;
        }
        let node = feo_owl::proof(&self.inference, [ind, ty, class]);
        Some(node.render(&self.graph))
    }

    pub fn inference(&self) -> &InferenceResult {
        &self.inference
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The rule set compiled from the base TBox, reused by every
    /// incremental close.
    pub fn rules(&self) -> &CompiledRules {
        &self.rules
    }

    pub fn kg(&self) -> &FoodKg {
        &self.kg
    }

    pub fn user(&self) -> &UserProfile {
        &self.user
    }

    pub fn context(&self) -> &SystemContext {
        &self.ctx
    }
}

/// A per-question view over a shared [`EngineBase`].
///
/// Question individuals (and everything the reasoner derives from them)
/// land in the session's [`Overlay`]; SPARQL templates evaluate over the
/// unioned base + delta view. Dropping the session discards the delta.
pub struct Session<'a> {
    base: &'a EngineBase,
    overlay: Overlay<&'a Graph>,
    /// Closure stats and derivations accumulated by this session's
    /// incremental closes (disjoint from the base's own inference).
    inference: InferenceResult,
    /// Execution governor checked by incremental closes and SPARQL
    /// evaluation; `None` on the legacy unguarded path.
    guard: Option<&'a Guard>,
    /// SPARQL planner used by this session's competency queries.
    planner: Planner,
    /// Worker count for this session's incremental closes and query
    /// evaluation.
    parallelism: Parallelism,
}

impl<'a> Session<'a> {
    /// The base this session reads through.
    pub fn base(&self) -> &'a EngineBase {
        self.base
    }

    /// Inference accumulated by this session's incremental closes.
    pub fn inference(&self) -> &InferenceResult {
        &self.inference
    }

    /// Number of triples in the session delta.
    pub fn delta_len(&self) -> usize {
        self.overlay.delta_len()
    }

    /// Decomposes the session into its overlay and inference — used by
    /// [`ExplanationEngine`] to commit the delta into an owned base.
    pub fn into_parts(self) -> (Overlay<&'a Graph>, InferenceResult) {
        (self.overlay, self.inference)
    }

    /// Deprecated form of [`Session::explain`] with a guard.
    #[deprecated(note = "use `explain(question, &ExplainOptions::guarded(guard))`")]
    pub fn explain_guarded(
        &mut self,
        question: &Question,
        guard: &'a Guard,
    ) -> Result<Explanation, EngineError> {
        self.explain(question, &ExplainOptions::guarded(guard))
    }

    /// Evaluates a competency query over `view`, under the session guard
    /// when one is installed. With the cost-based planner the parsed
    /// query and its plan come from the base's snapshot-keyed cache —
    /// plans are computed against the shared base snapshot, whose
    /// statistics the per-session delta is far too small to flip.
    fn run_query<V: GraphView + Sync>(&self, view: V, q: &str) -> Result<QueryResult, EngineError> {
        let opts = QueryOptions {
            guard: self.guard,
            planner: self.planner,
            parallelism: self.parallelism,
            explain: false,
        };
        if self.planner == Planner::CostBased {
            let (parsed, plan) = self.base.plan_cache.get_or_insert(q, self.base.graph())?;
            return Ok(execute_prepared(view, &parsed, &plan, &opts)?);
        }
        let parsed = parse_query(q)?;
        Ok(execute(view, &parsed, &opts)?)
    }

    /// Answers a question with the matching explanation type, under the
    /// guard and planner carried by [`ExplainOptions`] (which stick for
    /// the rest of this session).
    pub fn explain(
        &mut self,
        question: &Question,
        opts: &ExplainOptions<'a>,
    ) -> Result<Explanation, EngineError> {
        self.guard = opts.guard;
        self.planner = opts.planner;
        self.parallelism = opts.parallelism;
        match question {
            Question::WhyEat { food } => self.contextual(question, food),
            Question::WhyEatOver { .. } => self.contrastive(question),
            Question::WhatIf { hypothesis } => self.counterfactual(question, hypothesis),
            Question::WhatSteps { food } => self.trace_based(question, food),
            Question::WhatOtherUsers { food } => self.case_based(question, food),
            Question::WhyGenerally { food } => {
                self.knowledge_based(question, food, EVERYDAY_RECORD, ExplanationType::Everyday)
            }
            Question::WhatLiterature { food } => self.knowledge_based(
                question,
                food,
                SCIENTIFIC_RECORD,
                ExplanationType::Scientific,
            ),
            Question::WhatIfEatenDaily { food } => self.simulation(question, food),
            Question::WhatEvidenceForDiet { diet } => self.statistical(question, diet),
        }
    }

    fn require_recipe(&self, food: &str) -> Result<(), EngineError> {
        if self.base.kg.recipe(food).is_none() && self.base.kg.ingredient(food).is_none() {
            return Err(EngineError::UnknownEntity(food.to_string()));
        }
        Ok(())
    }

    /// Asserts the question into the overlay and re-closes incrementally:
    /// the precompiled rules run semi-naïvely from the delta, which is
    /// equivalent to the paper's full "export with inferred axioms" over
    /// the extended graph because the base is already closed and the
    /// question triples are pure ABox.
    fn assert_and_close(&mut self, question: &Question) -> Result<(), EngineError> {
        assert_question(question, &mut self.overlay);
        let reasoner = EngineBase::reasoner(self.base.track_proofs);
        let opts = MaterializeOptions {
            guard: self.guard,
            rules: Some(&self.base.rules),
            parallelism: self.parallelism,
        };
        let (inference, tripped) = match reasoner.materialize_delta(&mut self.overlay, &opts) {
            Ok(inference) => (inference, None),
            // Keep the partial closure's statistics: the derived triples
            // are already in the overlay (sound but incomplete), and the
            // degradation report should account for them.
            Err(ReasonerError::Exhausted { exhausted, partial }) => (*partial, Some(exhausted)),
        };
        self.inference.added += inference.added;
        self.inference.rounds += inference.rounds;
        self.inference.warnings.extend(inference.warnings);
        self.inference
            .inconsistencies
            .extend(inference.inconsistencies);
        self.inference.derivations.extend(inference.derivations);
        match tripped {
            Some(exhausted) => Err(EngineError::Exhausted(exhausted)),
            None => Ok(()),
        }
    }

    // ---- CQ1: contextual ---------------------------------------------

    fn contextual(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        self.require_recipe(food)?;
        self.assert_and_close(question)?;
        let q = queries::contextual_query(question);
        let table = self.run_query(&self.overlay, &q)?.expect_solutions();

        let mut statements = Vec::new();
        for row in table.local_rows() {
            let (characteristic, class) = (&row[0], &row[1]);
            statements.push(self.contextual_sentence(food, characteristic, class));
        }
        let answer = if statements.is_empty() {
            format!("No external context currently supports {}.", humanize(food))
        } else {
            statements.join(" ")
        };
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Contextual,
            bindings: table,
            statements,
            answer,
        })
    }

    /// Renders one contextual statement, tracing the characteristic back
    /// through the recipe's ingredients the way the paper's example
    /// answer does ("uses the ingredient Cauliflower, which is available
    /// in the current season").
    fn contextual_sentence(&self, food: &str, characteristic: &str, class: &str) -> String {
        let kg = &self.base.kg;
        let food_h = humanize(food);
        match class {
            "SeasonCharacteristic" => {
                // Which ingredient carries the season?
                let season = Season::ALL
                    .iter()
                    .find(|s| s.name() == characteristic)
                    .copied();
                let carrier = kg.recipe(food).and_then(|r| {
                    r.ingredients.iter().find(|i| {
                        kg.ingredient(i)
                            .zip(season)
                            .map(|(ing, s)| ing.seasons.contains(&s))
                            .unwrap_or(false)
                    })
                });
                match carrier {
                    Some(ing) => format!(
                        "{food_h} uses the ingredient {}, which is available in the current season ({characteristic}).",
                        humanize(ing)
                    ),
                    None => format!(
                        "{food_h} is available in the current season ({characteristic})."
                    ),
                }
            }
            "LocationCharacteristic" => {
                let carrier = kg.recipe(food).and_then(|r| {
                    r.ingredients.iter().find(|i| {
                        kg.ingredient(i)
                            .map(|ing| ing.regions.iter().any(|reg| reg == characteristic))
                            .unwrap_or(false)
                    })
                });
                match carrier {
                    Some(ing) => format!(
                        "{food_h} uses the ingredient {}, which is available in your region ({characteristic}).",
                        humanize(ing)
                    ),
                    None => format!("{food_h} is available in your region ({characteristic})."),
                }
            }
            "BudgetCharacteristic" => {
                format!("{food_h} fits your budget ({}).", humanize(characteristic))
            }
            "TimeCharacteristic" => format!(
                "{food_h} suits the current time ({}).",
                humanize(characteristic)
            ),
            other => format!(
                "{food_h} matches your context through {} ({other}).",
                humanize(characteristic)
            ),
        }
    }

    // ---- CQ2: contrastive ----------------------------------------------

    fn contrastive(&mut self, question: &Question) -> Result<Explanation, EngineError> {
        let Question::WhyEatOver {
            preferred,
            alternative,
        } = question
        else {
            unreachable!("dispatch guarantees the shape");
        };
        self.require_recipe(preferred)?;
        self.require_recipe(alternative)?;
        self.assert_and_close(question)?;
        let q = queries::contrastive_query(question);
        let table = self.run_query(&self.overlay, &q)?.expect_solutions();

        let mut fact_parts: Vec<String> = Vec::new();
        let mut foil_parts: Vec<String> = Vec::new();
        for row in table.local_rows() {
            let (fact_type, fact, foil_type, foil) = (&row[0], &row[1], &row[2], &row[3]);
            // Parameter-typed rows are the question parameters themselves
            // (self-characteristics from preference seeds); their polarity
            // already surfaces through the Liked/Disliked rows.
            if fact_type != "Parameter" {
                let f = self.fact_clause(preferred, fact, fact_type);
                if !fact_parts.contains(&f) {
                    fact_parts.push(f);
                }
            }
            if foil_type != "Parameter" {
                let o = self.foil_clause(alternative, foil, foil_type);
                if !foil_parts.contains(&o) {
                    foil_parts.push(o);
                }
            }
        }
        let mut statements = fact_parts.clone();
        statements.extend(foil_parts.iter().cloned());
        let answer = if fact_parts.is_empty() && foil_parts.is_empty() {
            format!(
                "No decisive facts or foils distinguish {} from {}.",
                humanize(preferred),
                humanize(alternative)
            )
        } else {
            format!(
                "{} is better than {} because {}.",
                humanize(preferred),
                humanize(alternative),
                fact_parts
                    .iter()
                    .chain(foil_parts.iter())
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(", and ")
            )
        };
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Contrastive,
            bindings: table,
            statements,
            answer,
        })
    }

    fn fact_clause(&self, preferred: &str, fact: &str, fact_type: &str) -> String {
        match fact_type {
            "SeasonCharacteristic" => {
                format!("{} is currently in season ({fact})", humanize(preferred))
            }
            "LocationCharacteristic" => format!(
                "{} is available in your region ({fact})",
                humanize(preferred)
            ),
            "LikedFoodCharacteristic" => format!("you like {}", humanize(fact)),
            "NutritionalGoalCharacteristic" => format!(
                "{} advances your goal ({})",
                humanize(preferred),
                humanize(fact)
            ),
            "BudgetCharacteristic" => {
                format!("{} fits your budget", humanize(preferred))
            }
            _ => format!(
                "{} is supported by {} ({})",
                humanize(preferred),
                humanize(fact),
                humanize(fact_type)
            ),
        }
    }

    fn foil_clause(&self, alternative: &str, foil: &str, foil_type: &str) -> String {
        match foil_type {
            "AllergicFoodCharacteristic" => format!(
                "you are allergic to {} in {}",
                humanize(foil),
                humanize(alternative)
            ),
            "DislikedFoodCharacteristic" => format!("you dislike {}", humanize(foil)),
            "SeasonCharacteristic" => format!(
                "{} depends on {}, which is out of season",
                humanize(alternative),
                humanize(foil)
            ),
            "DietCharacteristic" | "Diet" => format!(
                "{} conflicts with your {} diet",
                humanize(alternative),
                humanize(foil)
            ),
            "BudgetCharacteristic" => {
                format!("{} exceeds your budget", humanize(alternative))
            }
            _ => format!(
                "{} is opposed by {} ({})",
                humanize(alternative),
                humanize(foil),
                humanize(foil_type)
            ),
        }
    }

    // ---- CQ3: counterfactual ---------------------------------------------

    fn counterfactual(
        &mut self,
        question: &Question,
        hypothesis: &Hypothesis,
    ) -> Result<Explanation, EngineError> {
        // Counterfactuals reason over a hypothetical world: a throwaway
        // overlay on the shared base (no clone). The hypothesis is pure
        // ABox, so the precompiled rules close it incrementally; the
        // world is discarded when this call returns.
        let mut world = Overlay::new(self.base.graph());
        apply_hypothesis(hypothesis, &self.base.user, &mut world);
        assert_question(question, &mut world);
        Reasoner::new().materialize_delta(
            &mut world,
            &MaterializeOptions {
                guard: self.guard,
                rules: Some(&self.base.rules),
                parallelism: self.parallelism,
            },
        )?;

        let subject_iri = match hypothesis {
            Hypothesis::Pregnant => feo::PREGNANCY_STATE.to_string(),
            Hypothesis::FollowedDiet(d) => FoodKg::iri(d),
            Hypothesis::AllergicTo(i) => FoodKg::iri(i),
        };
        let q = queries::counterfactual_query(&subject_iri);
        let table = self.run_query(&world, &q)?.expect_solutions();

        let mut forbidden: Vec<String> = Vec::new();
        let mut suggested: Vec<String> = Vec::new();
        for row in table.local_rows() {
            let (property, base, inherited) = (&row[0], &row[1], &row[2]);
            match property.as_str() {
                "forbids" => {
                    let item = humanize(base);
                    if !forbidden.contains(&item) {
                        forbidden.push(item);
                    }
                }
                "recommends" => {
                    let item = if inherited.is_empty() {
                        humanize(base)
                    } else {
                        humanize(inherited)
                    };
                    if !suggested.contains(&item) {
                        suggested.push(item);
                    }
                }
                _ => {}
            }
        }

        let mut statements = Vec::new();
        let mut sentences = Vec::new();
        if !forbidden.is_empty() {
            let s = format!(
                "If {}, you would be forbidden from eating {}.",
                hypothesis.describe(),
                forbidden.join(", ")
            );
            statements.push(s.clone());
            sentences.push(s);
        }
        if !suggested.is_empty() {
            let s = format!("You would be suggested to eat {}.", suggested.join(", "));
            statements.push(s.clone());
            sentences.push(s);
        }
        if sentences.is_empty() {
            sentences.push(format!(
                "If {}, your recommendations would not change.",
                hypothesis.describe()
            ));
        }
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Counterfactual,
            bindings: table,
            statements,
            answer: sentences.join(" "),
        })
    }

    // ---- trace-based -------------------------------------------------------

    fn trace_based(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        let set = self
            .base
            .recommendations
            .as_ref()
            .ok_or(EngineError::MissingRecommendations)?;
        let mut statements: Vec<String> = Vec::new();
        if let Some(rec) = set.get(food) {
            statements.push(format!(
                "{} was ranked with score {:.2}.",
                humanize(food),
                rec.score
            ));
            statements.extend(rec.trace.iter().map(TraceStep::to_string));
        } else if let Some(step) = set.elimination(food) {
            statements.push(step.to_string());
        } else {
            return Err(EngineError::UnknownEntity(food.to_string()));
        }
        let answer = format!(
            "Steps that led to the recommendation of {}: {}",
            humanize(food),
            statements.join("; ")
        );
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::TraceBased,
            bindings: SolutionTable::default(),
            statements,
            answer,
        })
    }

    // ---- case-based ---------------------------------------------------------

    fn case_based(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        if self.base.population.is_none() {
            return Err(EngineError::MissingPopulation);
        }
        self.require_recipe(food)?;
        let q = queries::case_based_query(&FoodKg::iri(&self.base.user.id), &FoodKg::iri(food));
        let table = self.run_query(&self.overlay, &q)?.expect_solutions();
        let supporters: i64 = table
            .rows
            .first()
            .and_then(|r| r[0].as_ref())
            .and_then(|t| t.as_literal())
            .and_then(|l| l.as_integer())
            .unwrap_or(0);
        let statements = vec![format!(
            "{supporters} users who share your diet or goals also like {}.",
            humanize(food)
        )];
        let answer = statements[0].clone();
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::CaseBased,
            bindings: table,
            statements,
            answer,
        })
    }

    // ---- everyday & scientific -------------------------------------------

    fn knowledge_based(
        &mut self,
        question: &Question,
        food: &str,
        record_class: &str,
        explanation_type: ExplanationType,
    ) -> Result<Explanation, EngineError> {
        self.require_recipe(food)?;
        let q = queries::knowledge_record_query(&FoodKg::iri(food), record_class);
        let table = self.run_query(&self.overlay, &q)?.expect_solutions();
        let mut statements = Vec::new();
        for row in table.local_rows() {
            let (about, text, source) = (&row[1], &row[2], &row[3]);
            let s = if source.is_empty() {
                format!("{} ({}).", text.trim_end_matches('.'), humanize(about))
            } else {
                format!("{} [{}]", text, source)
            };
            if !statements.contains(&s) {
                statements.push(s);
            }
        }
        let answer = if statements.is_empty() {
            format!("No recorded evidence mentions {}.", humanize(food))
        } else {
            statements.join(" ")
        };
        Ok(Explanation {
            question: question.clone(),
            explanation_type,
            bindings: table,
            statements,
            answer,
        })
    }

    // ---- simulation-based ---------------------------------------------------

    fn simulation(&mut self, question: &Question, food: &str) -> Result<Explanation, EngineError> {
        let kg = &self.base.kg;
        let recipe = kg
            .recipe(food)
            .ok_or_else(|| EngineError::UnknownEntity(food.to_string()))?;
        let weekly = recipe.calories as i64 * 7;
        let nutrients = kg.recipe_nutrients(recipe);
        let categories = kg.recipe_categories(recipe);
        let mut statements = vec![format!(
            "Eating {} every day adds about {} kcal per week ({} kcal per serving).",
            humanize(food),
            weekly,
            recipe.calories
        )];
        if !nutrients.is_empty() {
            statements.push(format!(
                "You would consistently get {}.",
                nutrients
                    .iter()
                    .map(|n| humanize(n))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let missing: Vec<&str> = ["Protein", "Fiber", "VitaminC"]
            .into_iter()
            .filter(|n| !nutrients.iter().any(|have| have == n))
            .collect();
        if !missing.is_empty() {
            statements.push(format!(
                "A single-dish diet would lack {} — add variety.",
                missing.join(", ")
            ));
        }
        if categories.iter().any(|c| c == "HighCarb") && recipe.calories > 400 {
            statements.push(
                "Daily intake of a calorie-dense, high-carb dish risks exceeding energy needs."
                    .to_string(),
            );
        }
        let answer = statements.join(" ");
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::SimulationBased,
            bindings: SolutionTable::default(),
            statements,
            answer,
        })
    }

    // ---- statistical ----------------------------------------------------------

    fn statistical(&mut self, question: &Question, diet: &str) -> Result<Explanation, EngineError> {
        if self.base.population.is_none() {
            return Err(EngineError::MissingPopulation);
        }
        if self.base.kg.diet(diet).is_none() {
            return Err(EngineError::UnknownEntity(diet.to_string()));
        }
        let q = queries::statistical_query(&FoodKg::iri(diet));
        let table = self.run_query(&self.overlay, &q)?.expect_solutions();
        let get = |row: &Vec<Option<feo_rdf::Term>>, i: usize| -> i64 {
            row.get(i)
                .and_then(|c| c.as_ref())
                .and_then(|t| t.as_literal())
                .and_then(|l| l.as_integer())
                .unwrap_or(0)
        };
        let (total, succeeded) = table
            .rows
            .first()
            .map(|r| (get(r, 0), get(r, 1)))
            .unwrap_or((0, 0));
        let statements = vec![format!(
            "Of {total} users following the {} diet, {succeeded} achieved a nutritional goal.",
            humanize(diet)
        )];
        let answer = statements[0].clone();
        Ok(Explanation {
            question: question.clone(),
            explanation_type: ExplanationType::Statistical,
            bindings: table,
            statements,
            answer,
        })
    }
}

/// The FEO explanation engine — single-owner façade over [`EngineBase`].
///
/// Each [`ExplanationEngine::explain`] call runs a [`Session`] and then
/// commits the session's delta into the owned base, so question
/// individuals and their inferred classifications accumulate exactly as
/// in earlier versions (and [`ExplanationEngine::proof_of_type`] can
/// explain typings derived while answering). For isolated or concurrent
/// question answering use [`EngineBase`] directly.
pub struct ExplanationEngine {
    base: EngineBase,
}

impl ExplanationEngine {
    /// Assembles and materializes the reasoning graph.
    pub fn new(kg: FoodKg, user: UserProfile, ctx: SystemContext) -> Result<Self, EngineError> {
        EngineBase::new(kg, user, ctx).map(|base| ExplanationEngine { base })
    }

    /// Like [`ExplanationEngine::new`], but the reasoner tracks
    /// derivations so [`ExplanationEngine::proof_of_type`] can render
    /// Pellet-style proof trees for inferred classifications.
    pub fn new_with_proofs(
        kg: FoodKg,
        user: UserProfile,
        ctx: SystemContext,
    ) -> Result<Self, EngineError> {
        EngineBase::new_with_proofs(kg, user, ctx).map(|base| ExplanationEngine { base })
    }

    /// Adds a reference population (enables case-based and statistical
    /// explanations).
    pub fn with_population(mut self, population: Population) -> Self {
        self.base = self.base.with_population(population);
        self
    }

    /// Adds recommender output (enables trace-based explanations and the
    /// recommendation deltas in counterfactuals).
    pub fn with_recommendations(mut self, set: RecommendationSet) -> Self {
        self.base = self.base.with_recommendations(set);
        self
    }

    /// Answers a question, then folds the session's delta (question
    /// triples, derived classifications, derivations) into the base.
    pub fn explain(&mut self, question: &Question) -> Result<Explanation, EngineError> {
        let mut session = self.base.session();
        let result = session.explain(question, &ExplainOptions::default());
        let (overlay, inference) = session.into_parts();
        let (spill, delta) = overlay.into_delta();
        self.base.absorb(spill, delta, inference);
        result
    }

    /// Renders the reasoner's proof tree for `individual rdf:type class`,
    /// e.g. why Broccoli was classified an `eo:Foil`. Requires
    /// [`ExplanationEngine::new_with_proofs`]; returns `None` when the
    /// typing does not hold or was asserted rather than inferred.
    pub fn proof_of_type(&self, individual_local: &str, class_iri: &str) -> Option<String> {
        self.base.proof_of_type(individual_local, class_iri)
    }

    /// The shared base — e.g. to wrap it in an `Arc` for concurrent
    /// sessions after the stateful phase is over.
    pub fn into_base(self) -> EngineBase {
        self.base
    }

    pub fn base(&self) -> &EngineBase {
        &self.base
    }

    pub fn inference(&self) -> &InferenceResult {
        self.base.inference()
    }

    pub fn graph(&self) -> &Graph {
        self.base.graph()
    }

    pub fn kg(&self) -> &FoodKg {
        self.base.kg()
    }

    pub fn user(&self) -> &UserProfile {
        self.base.user()
    }

    pub fn context(&self) -> &SystemContext {
        self.base.context()
    }
}
