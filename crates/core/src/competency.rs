//! The competency-question harness: runs CQ1–CQ3 against the paper's
//! scenarios and checks the results against the paper's printed tables.
//! Used by the integration tests, the benches, and the `reproduce`
//! binary that regenerates the listings for EXPERIMENTS.md.

use feo_sparql::SolutionTable;

use crate::engine::EngineError;
use crate::scenarios::{scenario_a, scenario_b, scenario_c, Scenario};

/// Expected vs. measured outcome of one competency question.
#[derive(Debug, Clone)]
pub struct CqOutcome {
    pub scenario: Scenario,
    /// The paper's expected result rows (variable → local-name value).
    pub expected_rows: Vec<Vec<(&'static str, &'static str)>>,
    /// The produced bindings table.
    pub bindings: SolutionTable,
    /// The rendered answer.
    pub answer: String,
    /// Whether every expected row was found.
    pub expected_found: bool,
    /// Rows produced beyond the expected ones (KG-richness artifacts are
    /// reported, not hidden).
    pub extra_rows: usize,
}

fn check(
    scenario: Scenario,
    expected_rows: Vec<Vec<(&'static str, &'static str)>>,
) -> Result<CqOutcome, EngineError> {
    let mut engine = scenario.engine()?;
    let explanation = engine.explain(&scenario.question)?;
    let bindings = explanation.bindings.clone();

    let expected_found = expected_rows.iter().all(|row| {
        bindings.rows.iter().enumerate().any(|(i, _)| {
            row.iter().all(|(var, value)| {
                bindings
                    .var_index(var)
                    .and_then(|col| bindings.rows[i].get(col))
                    .and_then(|c| c.as_ref())
                    .map(|t| match t {
                        feo_rdf::Term::Iri(iri) => iri.local_name() == *value,
                        feo_rdf::Term::Literal(l) => l.lexical_form() == *value,
                        feo_rdf::Term::BlankNode(_) => false,
                    })
                    .unwrap_or(false)
            })
        })
    });
    let extra_rows = bindings.len().saturating_sub(expected_rows.len());
    Ok(CqOutcome {
        scenario,
        expected_rows,
        bindings,
        answer: explanation.answer,
        expected_found,
        extra_rows,
    })
}

/// CQ1 (Listing 1): expected single row (feo:Autumn,
/// feo:SeasonCharacteristic).
pub fn cq1() -> Result<CqOutcome, EngineError> {
    check(
        scenario_a(),
        vec![vec![
            ("characteristic", "Autumn"),
            ("classes", "SeasonCharacteristic"),
        ]],
    )
}

/// CQ2 (Listing 2): expected single row (SeasonCharacteristic, Autumn,
/// AllergicFoodCharacteristic, Broccoli).
pub fn cq2() -> Result<CqOutcome, EngineError> {
    check(
        scenario_b(),
        vec![vec![
            ("factType", "SeasonCharacteristic"),
            ("factA", "Autumn"),
            ("foilType", "AllergicFoodCharacteristic"),
            ("foilB", "Broccoli"),
        ]],
    )
}

/// CQ3 (Listing 3): expected rows (recommends, Spinach, SpinachFrittata)
/// and (forbids, Sushi, —).
pub fn cq3() -> Result<CqOutcome, EngineError> {
    check(
        scenario_c(),
        vec![
            vec![
                ("property", "recommends"),
                ("baseFood", "Spinach"),
                ("inheritedFood", "SpinachFrittata"),
            ],
            vec![("property", "forbids"), ("baseFood", "Sushi")],
        ],
    )
}

/// All three competency questions in paper order.
pub fn all() -> Result<Vec<CqOutcome>, EngineError> {
    Ok(vec![cq1()?, cq2()?, cq3()?])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cq1_reproduces_listing_one() {
        let o = cq1().expect("cq1 runs");
        assert!(o.expected_found, "bindings:\n{}", o.bindings);
        assert_eq!(
            o.bindings.len(),
            1,
            "paper shows exactly one row; got:\n{}",
            o.bindings
        );
        assert!(
            o.answer.contains("Cauliflower"),
            "answer should mention the carrier ingredient: {}",
            o.answer
        );
        assert!(o.answer.contains("current season"));
    }

    #[test]
    fn cq2_reproduces_listing_two() {
        let o = cq2().expect("cq2 runs");
        assert!(o.expected_found, "bindings:\n{}", o.bindings);
        assert_eq!(
            o.bindings.len(),
            1,
            "paper shows exactly one row; got:\n{}",
            o.bindings
        );
        assert!(o.answer.contains("in season"), "{}", o.answer);
        assert!(o.answer.contains("allergic"), "{}", o.answer);
    }

    #[test]
    fn cq3_reproduces_listing_three() {
        let o = cq3().expect("cq3 runs");
        assert!(o.expected_found, "bindings:\n{}", o.bindings);
        assert!(
            o.answer.contains("forbidden from eating Sushi"),
            "{}",
            o.answer
        );
        assert!(o.answer.contains("Spinach Frittata"), "{}", o.answer);
    }
}
