//! Fact/foil classification — the paper's Figure 3 semantics.
//!
//! A characteristic of a question parameter lands in one of four cells
//! depending on its polarity (supports vs. opposes the parameter) and its
//! ecosystem status (present vs. absent):
//!
//! | | present | absent |
//! |---|---|---|
//! | **supports** | Fact | Foil |
//! | **opposes** | Foil | neither |
//!
//! The classification itself is carried out by the OWL reasoner through
//! the `eo:Fact` / `eo:Foil` equivalent-class definitions; this module
//! provides the typed read-out plus a self-contained reproduction of the
//! full 2×2 matrix used by tests and the `reproduce` binary.

use feo_ontology::ns::{eo, feo};
use feo_owl::Reasoner;
use feo_rdf::vocab::rdf;
use feo_rdf::{Graph, TermId};

/// Where a characteristic lands in the Figure 3 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    Fact,
    Foil,
    /// The blue box of Figure 3: neither fact nor foil.
    Neither,
    /// Classified as both (possible when an individual carries several
    /// polarity relations, e.g. a liked-but-allergenic ingredient).
    Both,
}

impl std::fmt::Display for Classification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Classification::Fact => "Fact",
            Classification::Foil => "Foil",
            Classification::Neither => "neither",
            Classification::Both => "Fact+Foil",
        })
    }
}

/// Reads the reasoner's classification of an individual out of a
/// materialized graph.
pub fn classify(g: &Graph, individual: TermId) -> Classification {
    let ty = g.lookup_iri(rdf::TYPE);
    let fact = g.lookup_iri(eo::FACT);
    let foil = g.lookup_iri(eo::FOIL);
    let is_fact =
        matches!((ty, fact), (Some(ty), Some(fact)) if g.contains_ids(individual, ty, fact));
    let is_foil =
        matches!((ty, foil), (Some(ty), Some(foil)) if g.contains_ids(individual, ty, foil));
    match (is_fact, is_foil) {
        (true, true) => Classification::Both,
        (true, false) => Classification::Fact,
        (false, true) => Classification::Foil,
        (false, false) => Classification::Neither,
    }
}

/// One cell of the reproduced Figure 3 matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    pub polarity: &'static str,
    pub ecosystem: &'static str,
    pub classification: Classification,
}

/// Builds a minimal world with one characteristic per matrix cell, runs
/// the reasoner, and reads back the classifications — regenerating
/// Figure 3 from the live ontology rather than from assumptions.
pub fn figure3_matrix() -> Vec<MatrixCell> {
    let mut g = feo_ontology::schema::tbox_graph();
    let param = "https://example.org/fig3#Param";
    g.insert_iris(
        "https://example.org/fig3#q",
        feo::HAS_PRIMARY_PARAMETER,
        param,
    );

    let cases = [
        (
            "SupportsPresent",
            feo::IS_SUPPORTIVE_CHARACTERISTIC_OF,
            feo::PRESENT_IN,
            "supports",
            "present",
        ),
        (
            "SupportsAbsent",
            feo::IS_SUPPORTIVE_CHARACTERISTIC_OF,
            feo::ABSENT_FROM,
            "supports",
            "absent",
        ),
        (
            "OpposesPresent",
            feo::IS_OPPOSING_CHARACTERISTIC_OF,
            feo::PRESENT_IN,
            "opposes",
            "present",
        ),
        (
            "OpposesAbsent",
            feo::IS_OPPOSING_CHARACTERISTIC_OF,
            feo::ABSENT_FROM,
            "opposes",
            "absent",
        ),
    ];
    for (name, polarity_prop, presence_prop, _, _) in &cases {
        let iri = format!("https://example.org/fig3#{name}");
        g.insert_iris(&iri, polarity_prop, param);
        g.insert_iris(&iri, presence_prop, feo::CURRENT_ECOSYSTEM);
    }
    let _ = Reasoner::new().materialize(&mut g, &Default::default());

    cases
        .iter()
        .map(|(name, _, _, polarity, ecosystem)| {
            let id = g
                .lookup_iri(&format!("https://example.org/fig3#{name}"))
                .expect("inserted above");
            MatrixCell {
                polarity,
                ecosystem,
                classification: classify(&g, id),
            }
        })
        .collect()
}

/// Renders the matrix as the Figure 3 table.
pub fn render_figure3(cells: &[MatrixCell]) -> String {
    let get = |p: &str, e: &str| {
        cells
            .iter()
            .find(|c| c.polarity == p && c.ecosystem == e)
            .map(|c| c.classification.to_string())
            .unwrap_or_default()
    };
    format!(
        "                 | present in eco | absent from eco |\n\
         is supported by | {:<14} | {:<15} |\n\
         is opposed by   | {:<14} | {:<15} |\n",
        get("supports", "present"),
        get("supports", "absent"),
        get("opposes", "present"),
        get("opposes", "absent"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_matrix_matches_paper() {
        let cells = figure3_matrix();
        let get = |p: &str, e: &str| {
            cells
                .iter()
                .find(|c| c.polarity == p && c.ecosystem == e)
                .unwrap()
                .classification
        };
        assert_eq!(
            get("supports", "present"),
            Classification::Fact,
            "green box"
        );
        assert_eq!(get("supports", "absent"), Classification::Foil, "red box 1");
        assert_eq!(get("opposes", "present"), Classification::Foil, "red box 2");
        assert_eq!(
            get("opposes", "absent"),
            Classification::Neither,
            "blue box"
        );
    }

    #[test]
    fn render_contains_all_cells() {
        let text = render_figure3(&figure3_matrix());
        assert!(text.contains("Fact"));
        assert!(text.contains("Foil"));
        assert!(text.contains("neither"));
    }

    #[test]
    fn classify_reads_both() {
        let mut g = feo_ontology::schema::tbox_graph();
        let param = "https://example.org/x#P";
        g.insert_iris("https://example.org/x#q", feo::HAS_PRIMARY_PARAMETER, param);
        let c = "https://example.org/x#c";
        g.insert_iris(c, feo::IS_SUPPORTIVE_CHARACTERISTIC_OF, param);
        g.insert_iris(c, feo::IS_OPPOSING_CHARACTERISTIC_OF, param);
        g.insert_iris(c, feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let id = g.lookup_iri(c).unwrap();
        assert_eq!(classify(&g, id), Classification::Both);
    }
}
