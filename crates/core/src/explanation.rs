//! The explanation value produced by the engine: the raw SPARQL bindings
//! (the paper's listing result tables), structured statements, and the
//! rendered natural-language answer (the paper's "Possible Answer"
//! texts).

use std::fmt;

use feo_sparql::SolutionTable;

use crate::question::{ExplanationType, Question};

/// A generated explanation.
#[derive(Debug, Clone)]
pub struct Explanation {
    pub question: Question,
    pub explanation_type: ExplanationType,
    /// The competency-query result table (empty for explanation types
    /// that are computed outside SPARQL, e.g. trace-based).
    pub bindings: SolutionTable,
    /// One structured statement per piece of supporting evidence.
    pub statements: Vec<String>,
    /// The rendered natural-language answer.
    pub answer: String,
}

impl Explanation {
    /// True when the explanation carries any evidence.
    pub fn is_informative(&self) -> bool {
        !self.statements.is_empty() || !self.bindings.is_empty()
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Question: {}", self.question.text())?;
        writeln!(f, "Type:     {}", self.explanation_type)?;
        if !self.bindings.is_empty() {
            writeln!(f, "{}", self.bindings)?;
        }
        writeln!(f, "Answer:   {}", self.answer)
    }
}

/// Splits a CamelCase local name into words ("ButternutSquashSoup" →
/// "Butternut Squash Soup").
pub fn humanize(id: &str) -> String {
    let mut out = String::with_capacity(id.len() + 4);
    for (i, c) in id.chars().enumerate() {
        if c.is_uppercase() && i > 0 {
            out.push(' ');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn humanize_splits_camel_case() {
        assert_eq!(humanize("ButternutSquashSoup"), "Butternut Squash Soup");
        assert_eq!(humanize("Sushi"), "Sushi");
        assert_eq!(humanize(""), "");
    }

    #[test]
    fn display_includes_question_and_answer() {
        let e = Explanation {
            question: Question::WhyEat {
                food: "Sushi".into(),
            },
            explanation_type: ExplanationType::Contextual,
            bindings: SolutionTable::default(),
            statements: vec!["s".into()],
            answer: "Because.".into(),
        };
        let text = e.to_string();
        assert!(text.contains("Why should I eat Sushi?"));
        assert!(text.contains("Because."));
        assert!(e.is_informative());
    }
}
