//! Ecosystem assembly: builds the reasoning graph the explanation
//! pipeline runs over.
//!
//! The paper's pipeline (§IV) assembles TBoxes + FoodKG ABox + the user
//! and system context, runs the reasoner, and exports the inferred graph.
//! This module performs the assembly step, including the *polarity
//! seeding* the paper describes as organizing properties into supportive
//! and opposing categories (§III-B):
//!
//! - characteristics matching the environment are asserted
//!   `feo:presentIn feo:CurrentEcosystem` (current season/region, the
//!   user's liked/disliked/allergic foods, diet, goals, pregnancy);
//!   contradicting seasons/regions are asserted `feo:absentFrom`;
//! - user-profile polarity is seeded as a reflexive polarity edge
//!   (`x feo:isSupportiveCharacteristicOf x` for likes,
//!   `x feo:isOpposingCharacteristicOf x` for dislikes and allergens);
//!   the FEO property chains then propagate the polarity to every dish
//!   the characteristic reaches, and the `eo:Fact`/`eo:Foil`
//!   equivalences classify the results — so everything downstream of the
//!   seeds is genuine OWL inference, exactly as in the paper.

use feo_foodkg::{kg_to_rdf, user_to_rdf, FoodKg, SystemContext, UserProfile};
use feo_ontology::ns::{feo, food};
use feo_ontology::schema::load_tboxes;
use feo_owl::{InferenceResult, Reasoner};
use feo_rdf::{Graph, GraphStore};

/// Assembles the un-materialized reasoning graph for one (KG, user,
/// context) triple.
pub fn assemble(kg: &FoodKg, user: &UserProfile, ctx: &SystemContext) -> Graph {
    let mut g = Graph::new();
    load_tboxes(&mut g);
    kg_to_rdf(kg, &mut g);
    user_to_rdf(user, &mut g);
    feo_foodkg::context_to_rdf(ctx, &mut g);
    seed_user_polarity(user, &mut g);
    seed_budget(user, kg, &mut g);
    g
}

/// Assembles and materializes in one step, returning the inference stats.
pub fn assemble_materialized(
    kg: &FoodKg,
    user: &UserProfile,
    ctx: &SystemContext,
) -> (Graph, InferenceResult) {
    let mut g = assemble(kg, user, ctx);
    let result = Reasoner::new()
        .materialize(&mut g, &Default::default())
        .unwrap_or_else(|e| e.into_partial());
    (g, result)
}

/// Seeds presence and polarity for the user-profile characteristics.
pub fn seed_user_polarity(user: &UserProfile, g: &mut Graph) {
    for liked in &user.likes {
        let iri = FoodKg::iri(liked);
        g.insert_iris(&iri, feo::IS_SUPPORTIVE_CHARACTERISTIC_OF, &iri);
        g.insert_iris(&iri, feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
    }
    for disliked in &user.dislikes {
        let iri = FoodKg::iri(disliked);
        g.insert_iris(&iri, feo::IS_OPPOSING_CHARACTERISTIC_OF, &iri);
        g.insert_iris(&iri, feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
    }
    for allergen in &user.allergies {
        let iri = FoodKg::iri(allergen);
        g.insert_iris(&iri, feo::IS_OPPOSING_CHARACTERISTIC_OF, &iri);
        g.insert_iris(&iri, feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
    }
    if let Some(diet) = &user.diet {
        // The diet's feo:forbids edges are already in the KG ABox; its
        // presence makes the forbidden dishes' oppositions ecosystem-real.
        g.insert_iris(&FoodKg::iri(diet), feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
    }
    for goal in &user.goals {
        g.insert_iris(&FoodKg::iri(goal), feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
    }
    if user.pregnant {
        g.insert_iris(
            feo::PREGNANCY_STATE,
            feo::PRESENT_IN,
            feo::CURRENT_ECOSYSTEM,
        );
    }
}

/// Seeds the user's budget tier as an ecosystem characteristic: the tier
/// individual is present, supports every affordable dish, and opposes
/// dishes above budget (so over-budget alternatives surface as foils).
pub fn seed_budget(user: &UserProfile, kg: &FoodKg, g: &mut Graph) {
    use feo_rdf::vocab::rdf;
    let Some(tier) = user.budget_tier else { return };
    let tier_iri = feo::budget_tier_iri(tier);
    g.insert_iris(&tier_iri, rdf::TYPE, feo::BUDGET);
    g.insert_iris(&tier_iri, feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
    for recipe in &kg.recipes {
        let recipe_iri = FoodKg::iri(&recipe.id);
        if recipe.price_tier <= tier {
            g.insert_iris(&tier_iri, feo::IS_SUPPORTIVE_CHARACTERISTIC_OF, &recipe_iri);
        } else {
            g.insert_iris(&tier_iri, feo::IS_OPPOSING_CHARACTERISTIC_OF, &recipe_iri);
        }
    }
}

/// Applies a hypothesis to a (cloned) graph for counterfactual reasoning.
pub fn apply_hypothesis(
    hypothesis: &crate::question::Hypothesis,
    user: &UserProfile,
    g: &mut impl GraphStore,
) {
    use crate::question::Hypothesis;
    let user_iri = FoodKg::iri(&user.id);
    match hypothesis {
        Hypothesis::Pregnant => {
            g.insert_iris(&user_iri, feo::HAS_CHARACTERISTIC, feo::PREGNANCY_STATE);
            g.insert_iris(
                feo::PREGNANCY_STATE,
                feo::PRESENT_IN,
                feo::CURRENT_ECOSYSTEM,
            );
        }
        Hypothesis::FollowedDiet(diet) => {
            let diet_iri = FoodKg::iri(diet);
            g.insert_iris(&user_iri, food::FOLLOWS_DIET, &diet_iri);
            g.insert_iris(&diet_iri, feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
        }
        Hypothesis::AllergicTo(ingredient) => {
            let iri = FoodKg::iri(ingredient);
            g.insert_iris(&user_iri, food::ALLERGIC_TO, &iri);
            g.insert_iris(&iri, feo::IS_OPPOSING_CHARACTERISTIC_OF, &iri);
            g.insert_iris(&iri, feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
            // An allergy forbids the allergen itself; the FEO forbids
            // chain then reaches every dish containing it, so the
            // Listing-3 query reports the dish-level changes.
            g.insert_iris(&iri, feo::FORBIDS, &iri);
        }
    }
}

/// Registers a question individual with its parameters in the graph.
/// Returns the question IRI.
pub fn assert_question(question: &crate::question::Question, g: &mut impl GraphStore) -> String {
    use crate::question::Question;
    use feo_rdf::vocab::rdf;
    let q_iri = question.iri();
    g.insert_iris(&q_iri, rdf::TYPE, feo::QUESTION);
    match question {
        Question::WhyEat { food }
        | Question::WhatOtherUsers { food }
        | Question::WhyGenerally { food }
        | Question::WhatLiterature { food }
        | Question::WhatIfEatenDaily { food }
        | Question::WhatSteps { food } => {
            g.insert_iris(&q_iri, feo::HAS_PARAMETER, &FoodKg::iri(food));
        }
        Question::WhyEatOver {
            preferred,
            alternative,
        } => {
            g.insert_iris(&q_iri, feo::HAS_PRIMARY_PARAMETER, &FoodKg::iri(preferred));
            g.insert_iris(
                &q_iri,
                feo::HAS_SECONDARY_PARAMETER,
                &FoodKg::iri(alternative),
            );
        }
        Question::WhatEvidenceForDiet { diet } => {
            g.insert_iris(&q_iri, feo::HAS_PARAMETER, &FoodKg::iri(diet));
        }
        Question::WhatIf { .. } => {
            // Counterfactual questions parameterize the hypothesis, not a
            // food; the hypothesis subject is linked for provenance.
            g.insert_iris(&q_iri, feo::HAS_PARAMETER, feo::PREGNANCY_STATE);
        }
    }
    q_iri
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_foodkg::{curated, Season};
    use feo_rdf::vocab::rdf;

    fn scenario_b() -> (FoodKg, UserProfile, SystemContext) {
        let kg = curated();
        let user = UserProfile::new("alice")
            .likes(&["BroccoliCheddarSoup"])
            .allergies(&["Broccoli"]);
        let ctx = SystemContext::new(Season::Autumn);
        (kg, user, ctx)
    }

    #[test]
    fn assembly_is_consistent() {
        let (kg, user, ctx) = scenario_b();
        let (g, result) = assemble_materialized(&kg, &user, &ctx);
        assert!(result.is_consistent(), "{:?}", result.inconsistencies);
        assert!(result.warnings.is_empty(), "{:?}", result.warnings);
        assert!(g.len() > 1000, "materialized graph size: {}", g.len());
    }

    #[test]
    fn allergen_becomes_opposing_and_present() {
        let (kg, user, ctx) = scenario_b();
        let (g, _) = assemble_materialized(&kg, &user, &ctx);
        let broccoli = g.lookup_iri(&FoodKg::iri("Broccoli")).unwrap();
        let soup = g.lookup_iri(&FoodKg::iri("BroccoliCheddarSoup")).unwrap();
        let opposing = g.lookup_iri(feo::IS_OPPOSING_CHARACTERISTIC_OF).unwrap();
        assert!(
            g.contains_ids(broccoli, opposing, soup),
            "opposition must propagate from the allergen to the dish"
        );
        let ty = g.lookup_iri(rdf::TYPE).unwrap();
        let allergic = g.lookup_iri(feo::ALLERGIC_FOOD).unwrap();
        assert!(g.contains_ids(broccoli, ty, allergic));
    }

    #[test]
    fn question_assertion_types_parameters() {
        let (kg, user, ctx) = scenario_b();
        let mut g = assemble(&kg, &user, &ctx);
        let q = crate::question::Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        };
        assert_question(&q, &mut g);
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let ty = g.lookup_iri(rdf::TYPE).unwrap();
        let param = g.lookup_iri(feo::PARAMETER).unwrap();
        let squash = g.lookup_iri(&FoodKg::iri("ButternutSquashSoup")).unwrap();
        let broc = g.lookup_iri(&FoodKg::iri("BroccoliCheddarSoup")).unwrap();
        assert!(
            g.contains_ids(squash, ty, param),
            "range axiom types parameter A"
        );
        assert!(
            g.contains_ids(broc, ty, param),
            "subproperty + range types parameter B"
        );
    }

    #[test]
    fn fact_and_foil_emerge_in_scenario_b() {
        let (kg, user, ctx) = scenario_b();
        let mut g = assemble(&kg, &user, &ctx);
        let q = crate::question::Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        };
        assert_question(&q, &mut g);
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let ty = g.lookup_iri(rdf::TYPE).unwrap();
        let fact = g.lookup_iri(feo_ontology::ns::eo::FACT).unwrap();
        let foil = g.lookup_iri(feo_ontology::ns::eo::FOIL).unwrap();
        let autumn = g.lookup_iri(feo::AUTUMN).unwrap();
        let broccoli = g.lookup_iri(&FoodKg::iri("Broccoli")).unwrap();
        assert!(g.contains_ids(autumn, ty, fact), "Autumn is the fact");
        assert!(g.contains_ids(broccoli, ty, foil), "Broccoli is the foil");
        assert!(!g.contains_ids(broccoli, ty, fact));
    }

    #[test]
    fn pregnancy_hypothesis_applies() {
        let (kg, user, ctx) = scenario_b();
        let mut g = assemble(&kg, &user, &ctx);
        apply_hypothesis(&crate::question::Hypothesis::Pregnant, &user, &mut g);
        Reasoner::new()
            .materialize(&mut g, &Default::default())
            .expect("materialize");
        let preg = g.lookup_iri(feo::PREGNANCY_STATE).unwrap();
        let forbids = g.lookup_iri(feo::FORBIDS).unwrap();
        let sushi = g.lookup_iri(&FoodKg::iri("Sushi")).unwrap();
        assert!(g.contains_ids(preg, forbids, sushi));
    }
}
