//! Snapshot-keyed SPARQL plan cache.
//!
//! The engine answers every question by instantiating a handful of
//! SPARQL templates, so the same query text recurs across sessions over
//! one [`crate::EngineBase`]. Parsing and cost-based planning are pure
//! functions of (query text, graph statistics), and the base graph is
//! immutable between commits — so both can be cached on the base and
//! shared by every session.
//!
//! Entries are keyed by query text and stamped with the base's *snapshot
//! epoch*. Committing a session delta into the base
//! ([`crate::EngineBase`]'s absorb) bumps the epoch, which invalidates
//! every cached plan at once: the statistics that justified the old join
//! orders no longer describe the graph.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use feo_rdf::GraphView;
use feo_sparql::ast::Query;
use feo_sparql::{parse_query, plan_query, Plan, SparqlError};

/// Hit/miss counters and current state of a [`crate::EngineBase`]'s plan
/// cache — exposed so tests (and curious callers) can verify that
/// repeated questions reuse cached plans and that commits invalidate
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache without re-parsing or re-planning.
    pub hits: u64,
    /// Lookups that had to parse and plan (first sight of a query text,
    /// or its entry was stamped with an older epoch).
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Current snapshot epoch; bumped on every commit into the base.
    pub epoch: u64,
}

struct CachedPlan {
    epoch: u64,
    query: Arc<Query>,
    plan: Arc<Plan>,
}

/// Interior-mutable cache living on the shared, otherwise-immutable
/// [`crate::EngineBase`]. All operations take `&self`, so any number of
/// concurrent sessions can share one cache through an `Arc`d base.
///
/// Hits take only the read lock, so a batch of sessions replaying the
/// same question templates in parallel never serialize on the hot path;
/// the write lock is held just long enough to insert a freshly planned
/// entry.
#[derive(Default)]
pub(crate) struct PlanCache {
    entries: RwLock<HashMap<String, CachedPlan>>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Returns the parsed query and its plan, reusing a cached pair when
    /// one exists for the current epoch; otherwise parses `text`, plans
    /// it against `view`'s statistics, and caches the result.
    pub(crate) fn get_or_insert<G: GraphView>(
        &self,
        text: &str,
        view: G,
    ) -> Result<(Arc<Query>, Arc<Plan>), SparqlError> {
        let epoch = self.epoch.load(Ordering::Acquire);
        {
            // A poisoned lock only means another thread panicked while
            // holding it; the map is still structurally sound, so keep
            // serving rather than propagate the panic.
            let entries = self.entries.read().unwrap_or_else(|e| e.into_inner());
            if let Some(hit) = entries.get(text) {
                if hit.epoch == epoch {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(&hit.query), Arc::clone(&hit.plan)));
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let query = Arc::new(parse_query(text)?);
        let plan = Arc::new(plan_query(&view, &query));
        let mut entries = self.entries.write().unwrap_or_else(|e| e.into_inner());
        entries.insert(
            text.to_string(),
            CachedPlan {
                epoch,
                query: Arc::clone(&query),
                plan: Arc::clone(&plan),
            },
        );
        Ok((query, plan))
    }

    /// Bumps the snapshot epoch and drops every cached entry. Called when
    /// a session delta is committed into the base graph. Entries inserted
    /// by lookups that raced the bump carry the old epoch and are
    /// rejected at their next lookup.
    pub(crate) fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.entries
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.read().unwrap_or_else(|e| e.into_inner()).len(),
            epoch: self.epoch.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_rdf::Graph;

    fn graph() -> Graph {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g
    }

    const Q: &str = "SELECT ?s WHERE { ?s <http://e/p> ?o }";

    #[test]
    fn repeated_lookup_hits() {
        let cache = PlanCache::default();
        let g = graph();
        cache.get_or_insert(Q, &g).expect("parses");
        cache.get_or_insert(Q, &g).expect("parses");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn invalidate_bumps_epoch_and_clears() {
        let cache = PlanCache::default();
        let g = graph();
        cache.get_or_insert(Q, &g).expect("parses");
        cache.invalidate();
        let stats = cache.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.entries, 0);
        cache.get_or_insert(Q, &g).expect("parses");
        assert_eq!(cache.stats().misses, 2, "old entry must not be reused");
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = PlanCache::default();
        let g = graph();
        assert!(cache.get_or_insert("SELEKT nonsense", &g).is_err());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn distinct_texts_get_distinct_entries() {
        let cache = PlanCache::default();
        let g = graph();
        cache.get_or_insert(Q, &g).expect("parses");
        cache.get_or_insert("ASK { ?s ?p ?o }", &g).expect("parses");
        assert_eq!(cache.stats().entries, 2);
    }
}
