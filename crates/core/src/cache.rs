//! Epoch-keyed SPARQL plan cache.
//!
//! The engine answers every question by instantiating a handful of
//! SPARQL templates, so the same query text recurs across sessions over
//! one [`crate::EngineBase`]. Parsing and cost-based planning are pure
//! functions of (query text, graph statistics), and with the epoch
//! ledger every epoch's graph is immutable forever — so entries are
//! keyed by `(EpochId, query text)` and each entry is a pure function
//! of its key.
//!
//! This keying also closes the race the old design documented: entries
//! used to be stamped with an epoch read *before* planning, so a lookup
//! racing an invalidate could insert a plan computed against new
//! statistics under an old stamp. Now the caller passes the epoch and
//! the matching epoch view together; whatever interleaving occurs, an
//! entry under key `(e, q)` always holds the plan for epoch `e`'s
//! statistics. Commits invalidate nothing — the head moves to a fresh
//! key, while entries for older epochs stay retained so time-travel
//! queries keep hitting cached plans. A capacity bound evicts the
//! entries furthest from the head when the cache grows too large.
//!
//! Branches partition the key space: a [`PlanKey`] is `(chain, epoch,
//! query)`, where chain 0 is the main commit chain and each named
//! branch gets a stable non-zero id at creation. A branch epoch's
//! statistics differ from the main epoch with the same number, so
//! without the chain component the keys would collide; with it, branch
//! sessions reuse cached plans exactly like main-chain sessions —
//! which is what keeps branch-heavy multi-tenant serving from
//! re-planning every request.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use feo_rdf::GraphView;
use feo_sparql::ast::Query;
use feo_sparql::{parse_query, plan_query, Plan, SparqlError};

/// Entries retained across all epochs before eviction kicks in.
const MAX_ENTRIES: usize = 256;

/// Lock stripes: a lookup hashes its query text to one of these
/// independent shards, so concurrent sessions replaying *different*
/// templates never serialize on one lock — not even on the write path,
/// where a freshly planned entry previously blocked every reader of the
/// single map while it was inserted.
const STRIPES: usize = 16;

/// FNV-1a over the query text picks the stripe: cheap, allocation-free,
/// stable across runs, and spreads the engine's template set evenly.
fn stripe_of(text: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % STRIPES as u64) as usize
}

/// The commit chain and epoch a cached plan was computed against.
/// `chain` 0 is the main ledger chain; named branches get stable
/// non-zero ids so their epochs never collide with main epochs of the
/// same number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub chain: u64,
    pub epoch: u64,
}

impl PlanKey {
    /// A key on the main commit chain.
    pub fn main(epoch: u64) -> Self {
        PlanKey { chain: 0, epoch }
    }

    /// A key on a named branch's chain (`branch` ids start at 1).
    pub fn branch(branch: u64, epoch: u64) -> Self {
        PlanKey {
            chain: branch,
            epoch,
        }
    }
}

/// Hit/miss counters and current state of a [`crate::EngineBase`]'s plan
/// cache — exposed so tests (and curious callers) can verify that
/// repeated questions reuse cached plans and that commits re-key the
/// head without disturbing older epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache without re-parsing or re-planning.
    pub hits: u64,
    /// Lookups that had to parse and plan (first sight of a
    /// (epoch, query) pair).
    pub misses: u64,
    /// Entries currently cached, across all retained epochs.
    pub entries: usize,
    /// The head epoch last announced via [`PlanCache::advance_head`] —
    /// the ledger's newest commit.
    pub epoch: u64,
}

struct CachedPlan {
    query: Arc<Query>,
    plan: Arc<Plan>,
}

/// Interior-mutable cache living on the shared, otherwise-immutable
/// [`crate::EngineBase`]. All operations take `&self`, so any number of
/// concurrent sessions can share one cache through an `Arc`d base.
///
/// The map is sharded into [`STRIPES`] independently locked stripes
/// keyed by a hash of the query text: hits take only their stripe's
/// read lock, and an insert's write lock stalls only lookups of texts
/// that hash to the same stripe. The capacity bound applies per stripe
/// (`MAX_ENTRIES / STRIPES`), so the global bound still holds while
/// eviction decisions stay local to one lock.
#[derive(Default)]
pub(crate) struct PlanCache {
    stripes: [RwLock<HashMap<(PlanKey, String), CachedPlan>>; STRIPES],
    head: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Returns the parsed query and its plan for `key`, reusing a
    /// cached pair when one exists; otherwise parses `text`, plans it
    /// against `view`'s statistics, and caches the result under
    /// `(key, text)`.
    ///
    /// Correctness contract: `view` must be the graph view *of*
    /// `key`'s chain and epoch. The key and the statistics travel
    /// together, so a concurrent commit can never smuggle a plan for
    /// one epoch under another epoch's key.
    pub(crate) fn get_or_insert<G: GraphView>(
        &self,
        text: &str,
        key: PlanKey,
        view: G,
    ) -> Result<(Arc<Query>, Arc<Plan>), SparqlError> {
        let stripe = &self.stripes[stripe_of(text)];
        {
            // A poisoned lock only means another thread panicked while
            // holding it; the map is still structurally sound, so keep
            // serving rather than propagate the panic.
            let entries = stripe.read().unwrap_or_else(|e| e.into_inner());
            if let Some(hit) = entries.get(&(key, text.to_string())) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((Arc::clone(&hit.query), Arc::clone(&hit.plan)));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let query = Arc::new(parse_query(text)?);
        let plan = Arc::new(plan_query(&view, &query));
        let mut entries = stripe.write().unwrap_or_else(|e| e.into_inner());
        if entries.len() >= MAX_ENTRIES / STRIPES {
            Self::evict(&mut entries, self.head.load(Ordering::Acquire), key);
        }
        entries.insert(
            (key, text.to_string()),
            CachedPlan {
                query: Arc::clone(&query),
                plan: Arc::clone(&plan),
            },
        );
        Ok((query, plan))
    }

    /// Drops one stripe's entries whose epoch lies furthest from the
    /// main-chain head, sparing the key currently being inserted.
    /// Branch entries compete on their epoch number like main-chain
    /// ones — the head distance is a recency proxy either way.
    fn evict(entries: &mut HashMap<(PlanKey, String), CachedPlan>, head: u64, inserting: PlanKey) {
        let victim = entries
            .keys()
            .map(|(k, _)| *k)
            .filter(|&k| k != inserting)
            .max_by_key(|k| head.abs_diff(k.epoch));
        if let Some(victim) = victim {
            entries.retain(|(k, _), _| *k != victim);
        }
    }

    /// Announces a new head epoch after a commit. Nothing is dropped:
    /// older epochs' plans remain valid for time-travel queries and stay
    /// cached; only lookups at the new head will miss (fresh keys).
    pub(crate) fn advance_head(&self, head: u64) {
        self.head.fetch_max(head, Ordering::AcqRel);
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .stripes
                .iter()
                .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
                .sum(),
            epoch: self.head.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feo_rdf::Graph;

    fn graph() -> Graph {
        let mut g = Graph::new();
        g.insert_iris("http://e/a", "http://e/p", "http://e/b");
        g
    }

    const Q: &str = "SELECT ?s WHERE { ?s <http://e/p> ?o }";

    #[test]
    fn repeated_lookup_hits() {
        let cache = PlanCache::default();
        let g = graph();
        cache
            .get_or_insert(Q, PlanKey::main(0), &g)
            .expect("parses");
        cache
            .get_or_insert(Q, PlanKey::main(0), &g)
            .expect("parses");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn commits_retain_old_epochs() {
        let cache = PlanCache::default();
        let g = graph();
        cache
            .get_or_insert(Q, PlanKey::main(0), &g)
            .expect("parses");
        cache.advance_head(1);
        // Head lookups re-plan under the new key…
        cache
            .get_or_insert(Q, PlanKey::main(1), &g)
            .expect("parses");
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().entries, 2);
        // …but time-travel back to epoch 0 still hits.
        cache
            .get_or_insert(Q, PlanKey::main(0), &g)
            .expect("parses");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1, "epoch-0 plan must survive the commit");
        assert_eq!(stats.epoch, 1);
    }

    #[test]
    fn branch_keys_partition_from_main() {
        let cache = PlanCache::default();
        let g = graph();
        // Same epoch number, different chains: distinct entries.
        cache
            .get_or_insert(Q, PlanKey::main(3), &g)
            .expect("parses");
        cache
            .get_or_insert(Q, PlanKey::branch(1, 3), &g)
            .expect("parses");
        assert_eq!(cache.stats().entries, 2, "chains must not collide");
        // Each chain hits its own entry on replay.
        cache
            .get_or_insert(Q, PlanKey::main(3), &g)
            .expect("parses");
        cache
            .get_or_insert(Q, PlanKey::branch(1, 3), &g)
            .expect("parses");
        assert_eq!(cache.stats().hits, 2);
        // A second branch is a third partition.
        cache
            .get_or_insert(Q, PlanKey::branch(2, 3), &g)
            .expect("parses");
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = PlanCache::default();
        let g = graph();
        assert!(cache
            .get_or_insert("SELEKT nonsense", PlanKey::main(0), &g)
            .is_err());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn distinct_texts_get_distinct_entries() {
        let cache = PlanCache::default();
        let g = graph();
        cache
            .get_or_insert(Q, PlanKey::main(0), &g)
            .expect("parses");
        cache
            .get_or_insert("ASK { ?s ?p ?o }", PlanKey::main(0), &g)
            .expect("parses");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn eviction_drops_epochs_furthest_from_head() {
        let cache = PlanCache::default();
        let g = graph();
        // Fill the cache across many epochs with distinct texts.
        let mut epoch = 0u64;
        while cache.stats().entries < MAX_ENTRIES {
            cache
                .get_or_insert(
                    &format!("SELECT ?s WHERE {{ ?s ?p {epoch} }}"),
                    PlanKey::main(epoch),
                    &g,
                )
                .expect("parses");
            epoch += 1;
        }
        cache.advance_head(epoch);
        cache
            .get_or_insert(Q, PlanKey::main(epoch), &g)
            .expect("parses");
        let stats = cache.stats();
        assert!(
            stats.entries <= MAX_ENTRIES,
            "capacity bound holds: {stats:?}"
        );
        // The head insert itself survived.
        cache
            .get_or_insert(Q, PlanKey::main(epoch), &g)
            .expect("parses");
        assert!(cache.stats().hits >= 1);
    }

    /// The race the old design documented: lookups racing a commit. With
    /// `(epoch, query)` keys an entry is a pure function of its key, so
    /// hammering lookups across epochs while the head advances must
    /// never produce a cross-epoch mix-up — every returned plan equals a
    /// freshly computed plan for the same key.
    #[test]
    fn concurrent_lookups_across_epochs_never_cross_contaminate() {
        let cache = PlanCache::default();
        // Two graphs with deliberately different statistics so a plan
        // computed against the wrong view is distinguishable.
        let small = graph();
        let mut big = Graph::new();
        for i in 0..64 {
            big.insert_iris(
                &format!("http://e/s{i}"),
                "http://e/p",
                &format!("http://e/o{}", i % 4),
            );
            big.insert_iris(&format!("http://e/s{i}"), "http://e/q", "http://e/x");
        }
        let texts = [
            "SELECT ?s WHERE { ?s <http://e/p> ?o . ?s <http://e/q> ?x }",
            "SELECT ?s WHERE { ?s <http://e/q> ?x . ?s <http://e/p> ?o }",
            Q,
        ];
        let expect = |epoch: u64, text: &str| {
            let view: &Graph = if epoch.is_multiple_of(2) {
                &small
            } else {
                &big
            };
            let q = parse_query(text).expect("parses");
            format!("{:?}", plan_query(&view, &q))
        };

        std::thread::scope(|s| {
            for worker in 0..8 {
                let cache = &cache;
                let small = &small;
                let big = &big;
                let texts = &texts;
                let expect = &expect;
                s.spawn(move || {
                    for i in 0..200u64 {
                        let epoch = (worker as u64 + i) % 6;
                        let view: &Graph = if epoch.is_multiple_of(2) { small } else { big };
                        let text = texts[(i as usize + worker) % texts.len()];
                        let (_, plan) = cache
                            .get_or_insert(text, PlanKey::main(epoch), view)
                            .expect("parses");
                        assert_eq!(
                            format!("{plan:?}"),
                            expect(epoch, text),
                            "plan under key ({epoch}, {text:?}) diverged"
                        );
                        if i % 50 == 0 {
                            cache.advance_head(epoch);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
    }
}
