//! # feo-core
//!
//! The paper's primary contribution: the FEO explanation engine.
//!
//! Given a food knowledge graph, a user profile, and the system context,
//! the engine assembles the FEO ontology stack, materializes it with the
//! OWL reasoner, and answers user questions with typed explanations —
//! the three evaluated competency-question types (contextual,
//! contrastive, counterfactual; paper §V) plus the six future-work types
//! (§VI) implemented as extensions (trace-based, case-based, everyday,
//! scientific, simulation-based, statistical).
//!
//! ```
//! use feo_core::{ExplanationEngine, Question};
//! use feo_foodkg::{curated, Season, SystemContext, UserProfile};
//!
//! let user = UserProfile::new("u").allergies(&["Broccoli"]);
//! let ctx = SystemContext::new(Season::Autumn);
//! let mut engine = ExplanationEngine::new(curated(), user, ctx).unwrap();
//! let e = engine.explain(&Question::WhyEat {
//!     food: "CauliflowerPotatoCurry".into(),
//! }).unwrap();
//! assert!(e.answer.contains("current season"));
//! ```

pub mod cache;
pub mod competency;
pub mod ecosystem;
pub mod engine;
pub mod explanation;
pub mod factfoil;
pub mod json;
pub mod knowledge;
pub mod queries;
pub mod question;
pub mod scenarios;

pub use cache::{PlanCacheStats, PlanKey};
pub use engine::{
    BranchDiff, BranchInfo, BudgetedOutcome, CommitInfo, DegradationReport, EngineBase,
    EngineError, ExplainOptions, ExplanationEngine, Session,
};
pub use explanation::{humanize, Explanation};
pub use factfoil::{classify, figure3_matrix, Classification};
pub use json::ToJson;
pub use knowledge::Population;
pub use question::{ExplanationType, Hypothesis, Question};
pub use scenarios::{all_scenarios, scenario_a, scenario_b, scenario_c, Scenario};

// `ExplainOptions::parallelism`, the ledger handle types, and the
// persistent-store types surfaced by `EngineBase::{open, save_to}` are
// part of this crate's public API; re-export them so callers don't need
// a separate feo-rdf import.
pub use feo_rdf::{BaseStore, DiskStore, EpochId, Ledger, LedgerView, Parallelism, StoreError};
