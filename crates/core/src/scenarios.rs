//! The paper's three evaluation scenarios (§V-A, §V-B, §V-C), packaged
//! as ready-made (user, context, question) triples so tests, examples,
//! benches, and the `reproduce` binary all run the same setups.

use feo_foodkg::{curated, FoodKg, Season, SystemContext, UserProfile};

use crate::engine::{EngineError, ExplanationEngine};
use crate::question::{Hypothesis, Question};

/// One packaged scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: &'static str,
    /// The paper's Health Coach setup line.
    pub setup: &'static str,
    pub user: UserProfile,
    pub context: SystemContext,
    pub question: Question,
    /// The paper's "Possible Answer" text.
    pub paper_answer: &'static str,
}

impl Scenario {
    /// Builds an engine for this scenario over the curated KG.
    pub fn engine(&self) -> Result<ExplanationEngine, EngineError> {
        ExplanationEngine::new(curated(), self.user.clone(), self.context.clone())
    }

    pub fn kg(&self) -> FoodKg {
        curated()
    }
}

/// §V-A — contextual: "Why should I eat Cauliflower Potato Curry?"
pub fn scenario_a() -> Scenario {
    Scenario {
        name: "CQ1 / contextual (§V-A)",
        setup: "The system recommends Cauliflower Potato Curry.",
        user: UserProfile::new("user").region("Florida"),
        context: SystemContext::new(Season::Autumn).region("Florida"),
        question: Question::WhyEat {
            food: "CauliflowerPotatoCurry".into(),
        },
        paper_answer: "Cauliflower Potato Curry uses the ingredient Cauliflower, \
                       which is available in the current season.",
    }
}

/// §V-B — contrastive: "Why Butternut Squash Soup over Broccoli Cheddar
/// Soup?"
pub fn scenario_b() -> Scenario {
    Scenario {
        name: "CQ2 / contrastive (§V-B)",
        setup: "Our user likes Broccoli Cheddar Soup. The system recommends \
                Butternut Squash Soup.",
        user: UserProfile::new("user")
            .likes(&["BroccoliCheddarSoup"])
            .allergies(&["Broccoli"]),
        context: SystemContext::new(Season::Autumn),
        question: Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        },
        paper_answer: "Butternut Squash Soup is better than a Broccoli Cheddar Soup \
                       because Butternut Squash Soup is currently in season, and you \
                       are allergic to Broccoli Cheddar Soup.",
    }
}

/// §V-C — counterfactual: "What if I was pregnant?"
pub fn scenario_c() -> Scenario {
    Scenario {
        name: "CQ3 / counterfactual (§V-C)",
        setup: "The system recommends sushi.",
        user: UserProfile::new("user").likes(&["Sushi"]),
        context: SystemContext::new(Season::Autumn),
        question: Question::WhatIf {
            hypothesis: Hypothesis::Pregnant,
        },
        paper_answer: "If you were pregnant, you would be forbidden from eating sushi. \
                       You would be suggested to eat Spinach Frittata.",
    }
}

/// All three evaluation scenarios in paper order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![scenario_a(), scenario_b(), scenario_c()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build_engines() {
        for s in all_scenarios() {
            let engine = s.engine().expect("engine builds");
            assert!(engine.inference().is_consistent());
        }
    }

    #[test]
    fn scenario_questions_match_types() {
        use crate::question::ExplanationType;
        assert_eq!(
            scenario_a().question.explanation_type(),
            ExplanationType::Contextual
        );
        assert_eq!(
            scenario_b().question.explanation_type(),
            ExplanationType::Contrastive
        );
        assert_eq!(
            scenario_c().question.explanation_type(),
            ExplanationType::Counterfactual
        );
    }
}
