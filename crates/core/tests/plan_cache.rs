//! Plan-cache behavior at the engine level: repeated `explain` calls on
//! an unchanged epoch must reuse cached plans (hits grow, misses do
//! not), the ablation planners must bypass the cache, and committing a
//! session delta must move the head to a fresh cache partition while
//! older epochs' entries stay retained for time-travel queries.

use feo_core::{EngineBase, ExplainOptions, ExplanationEngine, Question};
use feo_foodkg::{curated, Season, SystemContext, UserProfile};
use feo_sparql::Planner;

fn base() -> EngineBase {
    let user = UserProfile::new("user")
        .likes(&["BroccoliCheddarSoup"])
        .allergies(&["Broccoli"])
        .diet("Vegetarian")
        .goals(&["HighFiberGoal"]);
    let ctx = SystemContext::new(Season::Autumn).region("Florida");
    EngineBase::new(curated(), user, ctx).unwrap()
}

fn cq1() -> Question {
    Question::WhyEat {
        food: "CauliflowerPotatoCurry".into(),
    }
}

/// The acceptance criterion: repeated `explain` on an unchanged
/// snapshot re-parses and re-plans nothing — only the counters move,
/// and only the hit counter.
#[test]
fn repeated_explain_hits_the_plan_cache() {
    let base = base();
    let question = cq1();

    base.explain(&question, &ExplainOptions::default()).unwrap();
    let first = base.plan_cache_stats();
    assert!(first.misses >= 1, "first explain must plan: {first:?}");
    assert_eq!(first.epoch, 0, "sessions never commit into the base");

    let answer = base.explain(&question, &ExplainOptions::default()).unwrap();
    let second = base.plan_cache_stats();
    assert_eq!(
        second.misses, first.misses,
        "unchanged snapshot must not re-parse or re-plan"
    );
    assert!(
        second.hits > first.hits,
        "repeat explain must be served from the cache: {second:?}"
    );
    assert_eq!(second.entries, first.entries);

    // And the cached plan answers identically.
    let fresh = base.explain(&question, &ExplainOptions::default()).unwrap();
    assert_eq!(answer.answer, fresh.answer);
}

/// Distinct questions instantiate distinct query texts: each gets its
/// own entry, and re-asking either stays all-hit.
#[test]
fn distinct_questions_get_distinct_entries() {
    let base = base();
    let q2 = Question::WhyEatOver {
        preferred: "ButternutSquashSoup".into(),
        alternative: "BroccoliCheddarSoup".into(),
    };

    base.explain(&cq1(), &ExplainOptions::default()).unwrap();
    let after_cq1 = base.plan_cache_stats();
    base.explain(&q2, &ExplainOptions::default()).unwrap();
    let after_cq2 = base.plan_cache_stats();
    assert!(
        after_cq2.entries > after_cq1.entries,
        "CQ2's query text is new: {after_cq2:?}"
    );

    let misses_settled = after_cq2.misses;
    base.explain(&cq1(), &ExplainOptions::default()).unwrap();
    base.explain(&q2, &ExplainOptions::default()).unwrap();
    assert_eq!(
        base.plan_cache_stats().misses,
        misses_settled,
        "both questions are now fully cached"
    );
}

/// The ablation planners (Off / Greedy) skip the cache entirely — their
/// whole point is measuring evaluation without compiled plans.
#[test]
fn ablation_planners_bypass_the_cache() {
    let base = base();
    for planner in [Planner::Off, Planner::Greedy] {
        base.explain(
            &cq1(),
            &ExplainOptions {
                planner,
                ..Default::default()
            },
        )
        .unwrap();
    }
    let stats = base.plan_cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        0,
        "no lookups expected: {stats:?}"
    );
    assert_eq!(stats.entries, 0);
}

/// The legacy façade commits every question's delta onto the ledger, so
/// each `explain` advances the head epoch. With epoch-keyed entries a
/// commit drops nothing: the head lookup re-plans under a fresh key
/// (the statistics changed) while earlier epochs' plans stay retained
/// for time-travel queries.
#[test]
fn facade_commit_rekeys_the_head() {
    let user = UserProfile::new("user").likes(&["BroccoliCheddarSoup"]);
    let ctx = SystemContext::new(Season::Autumn);
    let mut engine = ExplanationEngine::new(curated(), user, ctx).unwrap();
    engine.explain(&cq1()).unwrap();
    engine.explain(&cq1()).unwrap();
    let stats = engine.into_base().plan_cache_stats();
    assert!(
        stats.epoch >= 2,
        "every façade explain commits, bumping the epoch: {stats:?}"
    );
    assert!(
        stats.entries >= 2,
        "old epochs' plans stay retained for time travel: {stats:?}"
    );
    assert!(
        stats.misses >= 2,
        "post-commit repeats must re-plan against fresh statistics: {stats:?}"
    );
}
