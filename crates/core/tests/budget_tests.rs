//! Budgeted-explanation tests: `EngineBase::explain_with_budget` must
//! degrade gracefully when a budget trips — returning every completed
//! explanation plus a `DegradationReport` — while non-budget errors stay
//! real errors.

use std::time::Duration;

use feo_core::{EngineBase, EngineError, ExplainOptions, ExplanationType, Question};
use feo_foodkg::{curated, Season, SystemContext, UserProfile};
use feo_rdf::governor::{Budget, CancelFlag, Resource};

fn base() -> EngineBase {
    let user = UserProfile::new("user")
        .likes(&["BroccoliCheddarSoup"])
        .allergies(&["Broccoli"])
        .diet("Vegetarian")
        .goals(&["HighFiberGoal"]);
    let ctx = SystemContext::new(Season::Autumn).region("Florida");
    EngineBase::new(curated(), user, ctx).unwrap()
}

fn cq_questions() -> Vec<Question> {
    vec![
        Question::WhyEat {
            food: "CauliflowerPotatoCurry".into(),
        },
        Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        },
    ]
}

#[test]
fn unlimited_budget_completes_every_question() {
    let base = base();
    let outcome = base
        .explain_with_budget(&cq_questions(), &Budget::new())
        .unwrap();
    assert!(outcome.is_complete());
    assert_eq!(outcome.explanations.len(), 2);
    assert_eq!(
        outcome.explanations[0].explanation_type,
        ExplanationType::Contextual
    );
    assert_eq!(
        outcome.explanations[1].explanation_type,
        ExplanationType::Contrastive
    );
}

#[test]
fn guarded_answers_match_unguarded_with_headroom() {
    let base = base();
    let question = Question::WhyEat {
        food: "CauliflowerPotatoCurry".into(),
    };
    let plain = base.explain(&question, &ExplainOptions::default()).unwrap();
    let guard = Budget::new()
        .with_deadline(Duration::from_secs(600))
        .start();
    let guarded = base
        .explain(&question, &ExplainOptions::guarded(&guard))
        .unwrap();
    assert_eq!(plain.answer, guarded.answer);
}

#[test]
fn expired_deadline_degrades_with_report() {
    let base = base();
    let budget = Budget::new().with_deadline(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    let outcome = base.explain_with_budget(&cq_questions(), &budget).unwrap();
    assert!(!outcome.is_complete());
    assert!(outcome.explanations.is_empty());
    let report = outcome.degradation.unwrap();
    assert_eq!(report.exhausted.resource, Resource::WallClock);
    assert!(report.completed.is_empty());
    assert_eq!(
        report.skipped,
        vec![ExplanationType::Contextual, ExplanationType::Contrastive]
    );
    // The report reads as a sentence naming the tripped resource.
    let rendered = report.to_string();
    assert!(rendered.contains("wall-clock deadline"), "{rendered}");
    assert!(rendered.contains("Contrastive"), "{rendered}");
}

#[test]
fn solution_budget_trips_in_query_stage() {
    let base = base();
    let budget = Budget::new().with_max_solutions(1);
    let outcome = base.explain_with_budget(&cq_questions(), &budget).unwrap();
    let report = outcome.degradation.expect("one join row cannot suffice");
    assert_eq!(report.exhausted.resource, Resource::Solutions);
}

#[test]
fn cancellation_degrades_immediately() {
    let base = base();
    let flag = CancelFlag::new();
    flag.cancel();
    let budget = Budget::new().with_cancel(flag);
    let outcome = base.explain_with_budget(&cq_questions(), &budget).unwrap();
    let report = outcome.degradation.unwrap();
    assert_eq!(report.exhausted.resource, Resource::Cancelled);
}

#[test]
fn non_budget_errors_abort_the_batch() {
    let base = base();
    let questions = vec![Question::WhyEat {
        food: "NoSuchRecipe".into(),
    }];
    let err = base
        .explain_with_budget(&questions, &Budget::new())
        .unwrap_err();
    assert!(matches!(err, EngineError::UnknownEntity(_)), "{err:?}");
}

#[test]
fn guarded_trip_surfaces_as_typed_engine_error() {
    let base = base();
    let guard = Budget::new().with_deadline(Duration::ZERO).start();
    std::thread::sleep(Duration::from_millis(2));
    let err = base
        .explain(
            &Question::WhyEat {
                food: "CauliflowerPotatoCurry".into(),
            },
            &ExplainOptions::guarded(&guard),
        )
        .unwrap_err();
    match err {
        EngineError::Exhausted(e) => assert_eq!(e.resource, Resource::WallClock),
        other => panic!("expected Exhausted, got {other:?}"),
    }
}
