//! Engine-level tests: every explanation type of Table I produces an
//! informative, correctly-typed explanation; error paths are exercised.

use feo_core::{EngineError, ExplanationEngine, ExplanationType, Hypothesis, Population, Question};
use feo_foodkg::{curated, Season, SystemContext, UserProfile};
use feo_recommender::{HealthCoach, Recommender};

fn engine_full() -> ExplanationEngine {
    let kg = curated();
    let user = UserProfile::new("user")
        .likes(&["BroccoliCheddarSoup", "LentilSoup"])
        .allergies(&["Broccoli"])
        .diet("Vegetarian")
        .goals(&["HighFiberGoal"]);
    let ctx = SystemContext::new(Season::Autumn).region("Florida");
    let coach_kg = curated();
    let coach = HealthCoach::new(&coach_kg);
    let recs = coach.recommend(&user, &ctx, 10);
    let population = Population::generate(&kg, 150, 42);
    ExplanationEngine::new(kg, user, ctx)
        .unwrap()
        .with_population(population)
        .with_recommendations(recs)
}

#[test]
fn all_nine_types_produce_informative_explanations() {
    let mut engine = engine_full();
    let questions = vec![
        Question::WhyEat {
            food: "CauliflowerPotatoCurry".into(),
        },
        Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        },
        Question::WhatIf {
            hypothesis: Hypothesis::Pregnant,
        },
        Question::WhatOtherUsers {
            food: "LentilSoup".into(),
        },
        Question::WhyGenerally {
            food: "CauliflowerPotatoCurry".into(),
        },
        Question::WhatLiterature {
            food: "SpinachFrittata".into(),
        },
        Question::WhatIfEatenDaily {
            food: "MargheritaPizza".into(),
        },
        Question::WhatEvidenceForDiet {
            diet: "Vegetarian".into(),
        },
        Question::WhatSteps {
            food: "ButternutSquashSoup".into(),
        },
    ];
    let mut seen = Vec::new();
    for q in questions {
        let e = engine
            .explain(&q)
            .unwrap_or_else(|err| panic!("{q:?}: {err}"));
        assert_eq!(e.explanation_type, q.explanation_type());
        assert!(e.is_informative(), "{q:?} produced empty explanation");
        assert!(!e.answer.is_empty());
        seen.push(e.explanation_type);
    }
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), 9, "all nine Table I types exercised");
}

#[test]
fn trace_based_reflects_recommender_steps() {
    let mut engine = engine_full();
    let e = engine
        .explain(&Question::WhatSteps {
            food: "ButternutSquashSoup".into(),
        })
        .unwrap();
    assert!(e.answer.contains("score"));
    assert!(
        e.statements.iter().any(|s| s.contains("in season")),
        "seasonal boost should appear in the trace: {:?}",
        e.statements
    );
}

#[test]
fn trace_based_explains_eliminations_too() {
    let mut engine = engine_full();
    let e = engine
        .explain(&Question::WhatSteps {
            food: "BroccoliCheddarSoup".into(),
        })
        .unwrap();
    assert!(
        e.answer.contains("allergen Broccoli"),
        "elimination reason should surface: {}",
        e.answer
    );
}

#[test]
fn scientific_explanations_cite_sources() {
    let mut engine = engine_full();
    let e = engine
        .explain(&Question::WhatLiterature {
            food: "SpinachFrittata".into(),
        })
        .unwrap();
    assert!(
        e.statements
            .iter()
            .any(|s| s.contains('[') && s.contains("NEJM")
                || s.contains("J Nutr")
                || s.contains("Nutrients")),
        "expected a citation: {:?}",
        e.statements
    );
}

#[test]
fn everyday_explanations_have_no_citations() {
    let mut engine = engine_full();
    let e = engine
        .explain(&Question::WhyGenerally {
            food: "CauliflowerPotatoCurry".into(),
        })
        .unwrap();
    assert!(e.is_informative());
    assert!(
        e.statements.iter().all(|s| !s.contains("NEJM")),
        "everyday records should not carry study citations"
    );
}

#[test]
fn simulation_projects_weekly_calories() {
    let mut engine = engine_full();
    let e = engine
        .explain(&Question::WhatIfEatenDaily {
            food: "MargheritaPizza".into(),
        })
        .unwrap();
    // 650 kcal * 7 = 4550.
    assert!(e.answer.contains("4550"), "{}", e.answer);
}

#[test]
fn statistical_reports_population_counts() {
    let mut engine = engine_full();
    let e = engine
        .explain(&Question::WhatEvidenceForDiet {
            diet: "Vegetarian".into(),
        })
        .unwrap();
    assert!(
        e.answer.contains("users following the Vegetarian diet"),
        "{}",
        e.answer
    );
    // Total count must be positive for a 150-user population.
    let total: i64 = e
        .bindings
        .get(0, "total")
        .and_then(|t| t.as_literal())
        .and_then(|l| l.as_integer())
        .unwrap_or(0);
    assert!(total > 0);
    let succeeded: i64 = e
        .bindings
        .get(0, "succeeded")
        .and_then(|t| t.as_literal())
        .and_then(|l| l.as_integer())
        .unwrap_or(0);
    assert!(succeeded <= total);
}

#[test]
fn case_based_counts_similar_users() {
    let mut engine = engine_full();
    let e = engine
        .explain(&Question::WhatOtherUsers {
            food: "LentilSoup".into(),
        })
        .unwrap();
    assert!(
        e.answer.contains("share your diet or goals"),
        "{}",
        e.answer
    );
}

#[test]
fn counterfactual_diet_hypothesis() {
    let kg = curated();
    let user = UserProfile::new("u");
    let ctx = SystemContext::new(Season::Autumn);
    let mut engine = ExplanationEngine::new(kg, user, ctx).unwrap();
    let e = engine
        .explain(&Question::WhatIf {
            hypothesis: Hypothesis::FollowedDiet("Vegan".into()),
        })
        .unwrap();
    // Vegan forbids dairy/meat dishes: some forbidden foods must appear.
    assert!(e.answer.contains("forbidden from eating"), "{}", e.answer);
    assert!(
        e.answer.contains("Broccoli Cheddar Soup") || e.answer.contains("Beef Stew"),
        "{}",
        e.answer
    );
}

#[test]
fn counterfactual_allergy_hypothesis() {
    let kg = curated();
    let mut engine = ExplanationEngine::new(
        kg,
        UserProfile::new("u"),
        SystemContext::new(Season::Autumn),
    )
    .unwrap();
    let e = engine
        .explain(&Question::WhatIf {
            hypothesis: Hypothesis::AllergicTo("Peanuts".into()),
        })
        .unwrap();
    assert_eq!(e.explanation_type, ExplanationType::Counterfactual);
    // The forbids chain reaches the peanut dish.
    assert!(e.answer.contains("Peanut Noodles"), "{}", e.answer);
}

#[test]
fn missing_population_is_reported() {
    let kg = curated();
    let mut engine = ExplanationEngine::new(
        kg,
        UserProfile::new("u"),
        SystemContext::new(Season::Autumn),
    )
    .unwrap();
    let err = engine
        .explain(&Question::WhatOtherUsers {
            food: "Sushi".into(),
        })
        .unwrap_err();
    assert_eq!(err, EngineError::MissingPopulation);
    let err = engine
        .explain(&Question::WhatEvidenceForDiet {
            diet: "Vegan".into(),
        })
        .unwrap_err();
    assert_eq!(err, EngineError::MissingPopulation);
}

#[test]
fn missing_recommendations_is_reported() {
    let kg = curated();
    let mut engine = ExplanationEngine::new(
        kg,
        UserProfile::new("u"),
        SystemContext::new(Season::Autumn),
    )
    .unwrap();
    let err = engine
        .explain(&Question::WhatSteps {
            food: "Sushi".into(),
        })
        .unwrap_err();
    assert_eq!(err, EngineError::MissingRecommendations);
}

#[test]
fn unknown_entities_are_reported() {
    let mut engine = engine_full();
    let err = engine
        .explain(&Question::WhyEat {
            food: "MysteryMeatloaf".into(),
        })
        .unwrap_err();
    assert!(matches!(err, EngineError::UnknownEntity(e) if e == "MysteryMeatloaf"));
}

#[test]
fn repeated_questions_are_stable() {
    let mut engine = engine_full();
    let q = Question::WhyEat {
        food: "CauliflowerPotatoCurry".into(),
    };
    let a = engine.explain(&q).unwrap();
    let b = engine.explain(&q).unwrap();
    assert_eq!(a.answer, b.answer);
    assert_eq!(a.bindings.rows, b.bindings.rows);
}

#[test]
fn different_context_changes_contextual_answer() {
    let kg = curated();
    let user = UserProfile::new("u");
    let mut autumn_engine =
        ExplanationEngine::new(kg.clone(), user.clone(), SystemContext::new(Season::Autumn))
            .unwrap();
    let mut summer_engine =
        ExplanationEngine::new(kg, user, SystemContext::new(Season::Summer)).unwrap();
    let q = Question::WhyEat {
        food: "CauliflowerPotatoCurry".into(),
    };
    let autumn = autumn_engine.explain(&q).unwrap();
    let summer = summer_engine.explain(&q).unwrap();
    assert!(autumn.answer.contains("current season"));
    assert!(
        summer.answer.contains("No external context"),
        "curry has no summer support: {}",
        summer.answer
    );
}

#[test]
fn proof_mode_renders_classification_proofs() {
    let kg = curated();
    let user = UserProfile::new("user")
        .likes(&["BroccoliCheddarSoup"])
        .allergies(&["Broccoli"]);
    let ctx = SystemContext::new(Season::Autumn);
    let mut engine = ExplanationEngine::new_with_proofs(kg, user, ctx).expect("consistent");
    engine
        .explain(&Question::WhyEatOver {
            preferred: "ButternutSquashSoup".into(),
            alternative: "BroccoliCheddarSoup".into(),
        })
        .unwrap();
    // Why is Broccoli a Foil? The proof tree bottoms out at assertions.
    let proof = engine
        .proof_of_type("Broccoli", feo_ontology::ns::eo::FOIL)
        .expect("Broccoli must be classified Foil with a recorded proof");
    assert!(
        proof.contains("[cls]") || proof.contains("[asserted]"),
        "{proof}"
    );
    assert!(proof.contains("Foil"), "{proof}");
    // A typing that does not hold yields no proof.
    assert!(engine
        .proof_of_type("Cheddar", feo_ontology::ns::eo::FOIL)
        .is_none());
}

#[test]
fn budget_characteristic_surfaces_in_explanations() {
    // A tier-1 budget user: cheap dishes get budget facts, the expensive
    // sushi gets a budget foil in contrastive comparisons.
    let kg = curated();
    let user = UserProfile::new("user").budget(1).likes(&["Sushi"]);
    let ctx = SystemContext::new(Season::Autumn);
    let mut engine = ExplanationEngine::new(kg, user, ctx).unwrap();

    let e = engine
        .explain(&Question::WhyEat {
            food: "LentilSoup".into(),
        })
        .unwrap();
    assert!(
        e.answer.contains("fits your budget"),
        "budget context expected: {}",
        e.answer
    );

    let e = engine
        .explain(&Question::WhyEatOver {
            preferred: "LentilSoup".into(),
            alternative: "Sushi".into(),
        })
        .unwrap();
    assert!(
        e.answer.contains("exceeds your budget"),
        "budget foil expected: {}",
        e.answer
    );
}

#[test]
fn no_budget_means_no_budget_characteristics() {
    let kg = curated();
    let user = UserProfile::new("user");
    let ctx = SystemContext::new(Season::Summer);
    let mut engine = ExplanationEngine::new(kg, user, ctx).unwrap();
    let e = engine
        .explain(&Question::WhyEat {
            food: "LentilSoup".into(),
        })
        .unwrap();
    assert!(!e.answer.contains("budget"), "{}", e.answer);
}
