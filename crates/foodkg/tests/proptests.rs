//! Property tests for the FoodKG substrate: generator validity, RDF
//! emission/loading round trips, and profile generator invariants over
//! random configurations.

use feo_foodkg::{kg_from_rdf, kg_to_rdf, random_profiles, synthetic, Season, SyntheticConfig};
use feo_rdf::Graph;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        10usize..60,
        8usize..40,
        any::<u64>(),
        0.0f64..0.9,
        1usize..4,
        4usize..9,
    )
        .prop_map(
            |(recipes, ingredients, seed, seasonal, lo, hi)| SyntheticConfig {
                recipes,
                ingredients,
                seed,
                seasonal_fraction: seasonal,
                ingredients_per_recipe: (lo, hi),
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated KGs are internally consistent: every reference resolves,
    /// sizes match the config, recipes stay within the ingredient bounds.
    #[test]
    fn generator_output_is_valid(cfg in arb_config()) {
        let kg = synthetic(&cfg);
        prop_assert_eq!(kg.recipes.len(), cfg.recipes);
        prop_assert_eq!(kg.ingredients.len(), cfg.ingredients);
        for r in &kg.recipes {
            prop_assert!(r.ingredients.len() >= cfg.ingredients_per_recipe.0.min(cfg.ingredients));
            prop_assert!(r.ingredients.len() <= cfg.ingredients_per_recipe.1.max(cfg.ingredients_per_recipe.0));
            for i in &r.ingredients {
                let exists = kg.ingredient(i).is_some();
                prop_assert!(exists, "dangling ingredient {}", i);
            }
            prop_assert!(r.calories > 0);
            prop_assert!((1..=3).contains(&r.price_tier));
        }
        for d in &kg.diets {
            prop_assert!(!d.forbids_categories.is_empty());
        }
    }

    /// RDF emission → reverse loading reconstructs the same KG.
    #[test]
    fn rdf_round_trip_for_random_kgs(cfg in arb_config()) {
        let kg = synthetic(&cfg);
        let mut g = Graph::new();
        kg_to_rdf(&kg, &mut g);
        let loaded = kg_from_rdf(&g);
        prop_assert_eq!(kg.recipes.len(), loaded.recipes.len());
        prop_assert_eq!(kg.ingredients.len(), loaded.ingredients.len());
        for r in &kg.recipes {
            let l = loaded.recipe(&r.id).expect("recipe survives round trip");
            let mut orig: Vec<&String> = r.ingredients.iter().collect();
            orig.sort();
            let got: Vec<&String> = l.ingredients.iter().collect();
            prop_assert_eq!(orig, got);
            prop_assert_eq!(r.calories, l.calories);
        }
        for i in &kg.ingredients {
            let l = loaded.ingredient(&i.id).expect("ingredient survives");
            let mut orig = i.seasons.clone();
            orig.sort();
            prop_assert_eq!(&orig, &l.seasons);
        }
    }

    /// Derived recipe attributes are consistent with ingredient data.
    #[test]
    fn derived_attributes_consistent(cfg in arb_config()) {
        let kg = synthetic(&cfg);
        for r in &kg.recipes {
            let nutrients = kg.recipe_nutrients(r);
            let categories = kg.recipe_categories(r);
            // Everything derived must come from some ingredient (or the
            // recipe's own tags).
            for n in &nutrients {
                let sourced = r.ingredients.iter().any(|i| {
                    kg.ingredient(i).map(|ing| ing.nutrients.contains(n)).unwrap_or(false)
                });
                prop_assert!(sourced, "nutrient {} has no source", n);
            }
            for c in &categories {
                let from_recipe = r.categories.contains(c);
                let from_ingredient = r.ingredients.iter().any(|i| {
                    kg.ingredient(i).map(|ing| ing.categories.contains(c)).unwrap_or(false)
                });
                prop_assert!(from_recipe || from_ingredient);
            }
            // in-season agrees with the ingredient season lists.
            for s in Season::ALL {
                let expect = r.ingredients.iter().any(|i| {
                    kg.ingredient(i).map(|ing| ing.seasons.contains(&s)).unwrap_or(false)
                });
                prop_assert_eq!(kg.recipe_in_season(r, s), expect);
            }
        }
    }

    /// Profile generation is total and valid for any generated KG.
    #[test]
    fn profiles_valid_for_any_kg(cfg in arb_config(), n in 1usize..20, seed in any::<u64>()) {
        let kg = synthetic(&cfg);
        let profiles = random_profiles(&kg, n, seed);
        prop_assert_eq!(profiles.len(), n);
        for p in &profiles {
            prop_assert!(!p.likes.is_empty());
            for l in &p.likes {
                let exists = kg.recipe(l).is_some();
                prop_assert!(exists);
            }
            for d in &p.dislikes {
                prop_assert!(!p.likes.contains(d), "profile likes and dislikes overlap");
            }
        }
    }
}
