//! Reverse loader: reconstructs a [`FoodKg`] from an RDF graph in the
//! `food:`/`feo:` vocabulary — the path for ingesting external FoodKG
//! dumps (Turtle) instead of the built-in curated/synthetic data.

use feo_ontology::ns::{feo, food};
use feo_rdf::vocab::rdf;
use feo_rdf::{Graph, Term, TermId};

use crate::model::{Diet, FoodKg, Goal, Ingredient, Recipe, Season};

/// Reads a knowledge graph out of `g`. Unknown or non-`feo:`-namespaced
/// individuals are skipped; the loader is lenient by design (external
/// dumps carry extra vocabulary).
pub fn kg_from_rdf(g: &Graph) -> FoodKg {
    let mut kg = FoodKg::new();
    let Some(ty) = g.lookup_iri(rdf::TYPE) else {
        return kg;
    };
    let local = |id: TermId| -> Option<String> {
        match g.term(id) {
            Term::Iri(iri) => Some(iri.local_name().to_string()),
            _ => None,
        }
    };
    let season_of = |id: TermId| -> Option<Season> {
        let name = local(id)?;
        Season::ALL.iter().copied().find(|s| s.name() == name)
    };

    // Ingredients.
    if let Some(ing_class) = g.lookup_iri(food::INGREDIENT) {
        for id in g.subjects(ty, ing_class) {
            let Some(name) = local(id) else { continue };
            let mut ing = Ingredient::new(&name);
            if let Some(p) = g.lookup_iri(food::AVAILABLE_IN_SEASON) {
                ing.seasons = g.objects(id, p).into_iter().filter_map(season_of).collect();
                ing.seasons.sort();
                ing.seasons.dedup();
            }
            if let Some(p) = g.lookup_iri(food::AVAILABLE_IN_REGION) {
                ing.regions = g.objects(id, p).into_iter().filter_map(local).collect();
                ing.regions.sort();
            }
            if let Some(p) = g.lookup_iri(food::HAS_NUTRIENT) {
                ing.nutrients = g.objects(id, p).into_iter().filter_map(local).collect();
                ing.nutrients.sort();
            }
            if let Some(p) = g.lookup_iri(food::BELONGS_TO_CATEGORY) {
                ing.categories = g.objects(id, p).into_iter().filter_map(local).collect();
                ing.categories.sort();
            }
            kg.add_ingredient(ing);
        }
    }

    // Recipes.
    if let Some(recipe_class) = g.lookup_iri(food::RECIPE) {
        let mut ids = g.subjects(ty, recipe_class);
        ids.sort();
        for id in ids {
            let Some(name) = local(id) else { continue };
            let label = g
                .lookup_iri(feo_rdf::vocab::rdfs::LABEL)
                .and_then(|p| g.object(id, p))
                .and_then(|o| match g.term(o) {
                    Term::Literal(l) => Some(l.lexical_form().to_string()),
                    _ => None,
                })
                .unwrap_or_else(|| name.clone());
            let mut recipe = Recipe::new(&name, &label);
            if let Some(p) = g.lookup_iri(food::HAS_INGREDIENT) {
                recipe.ingredients = g.objects(id, p).into_iter().filter_map(local).collect();
                recipe.ingredients.sort();
            }
            // Dish-level categories are those asserted directly on the
            // recipe individual.
            if let Some(p) = g.lookup_iri(food::BELONGS_TO_CATEGORY) {
                recipe.categories = g.objects(id, p).into_iter().filter_map(local).collect();
                recipe.categories.sort();
            }
            let int_of = |prop: &str| -> Option<i64> {
                g.lookup_iri(prop)
                    .and_then(|p| g.object(id, p))
                    .and_then(|o| match g.term(o) {
                        Term::Literal(l) => l.as_integer(),
                        _ => None,
                    })
            };
            recipe.calories = int_of(food::CALORIES).unwrap_or(0).max(0) as u32;
            recipe.price_tier = int_of(food::PRICE_TIER).unwrap_or(1).clamp(1, 3) as u8;
            kg.add_recipe(recipe);
        }
    }

    // Diets.
    if let Some(diet_class) = g.lookup_iri(food::DIET) {
        for id in g.subjects(ty, diet_class) {
            let Some(name) = local(id) else { continue };
            // Skip the class-level FEO characteristic itself if typed.
            if name == "DietCharacteristic" {
                continue;
            }
            let mut forbids = Vec::new();
            if let Some(p) = g.lookup_iri(food::FORBIDS_CATEGORY) {
                forbids = g.objects(id, p).into_iter().filter_map(local).collect();
                forbids.sort();
            }
            kg.diets.push(Diet {
                id: name,
                forbids_categories: forbids,
            });
        }
        kg.diets.sort_by(|a, b| a.id.cmp(&b.id));
    }

    // Goals.
    if let Some(goal_class) = g.lookup_iri(feo::NUTRITIONAL_GOAL) {
        for id in g.subjects(ty, goal_class) {
            let Some(name) = local(id) else { continue };
            let nutrient = g
                .lookup_iri(feo::RECOMMENDS)
                .and_then(|p| g.object(id, p))
                .and_then(local)
                .unwrap_or_default();
            if !nutrient.is_empty() {
                kg.goals.push(Goal {
                    id: name,
                    wants_nutrient: nutrient,
                });
            }
        }
        kg.goals.sort_by(|a, b| a.id.cmp(&b.id));
    }

    // Regions.
    if let Some(region_class) = g.lookup_iri(food::REGION) {
        kg.regions = g
            .subjects(ty, region_class)
            .into_iter()
            .filter_map(local)
            .collect();
        kg.regions.sort();
        kg.regions.dedup();
    }

    kg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::curated;
    use crate::rdf::kg_to_rdf;

    fn round_trip() -> (FoodKg, FoodKg) {
        let original = curated();
        let mut g = Graph::new();
        kg_to_rdf(&original, &mut g);
        let loaded = kg_from_rdf(&g);
        (original, loaded)
    }

    #[test]
    fn recipes_round_trip() {
        let (orig, loaded) = round_trip();
        assert_eq!(orig.recipes.len(), loaded.recipes.len());
        for r in &orig.recipes {
            let l = loaded
                .recipe(&r.id)
                .unwrap_or_else(|| panic!("missing {}", r.id));
            let mut orig_ing = r.ingredients.clone();
            orig_ing.sort();
            assert_eq!(orig_ing, l.ingredients, "{}", r.id);
            assert_eq!(r.calories, l.calories);
            assert_eq!(r.price_tier, l.price_tier);
            assert_eq!(r.label, l.label);
        }
    }

    #[test]
    fn ingredients_round_trip() {
        let (orig, loaded) = round_trip();
        assert_eq!(orig.ingredients.len(), loaded.ingredients.len());
        for i in &orig.ingredients {
            let l = loaded
                .ingredient(&i.id)
                .unwrap_or_else(|| panic!("missing {}", i.id));
            let mut seasons = i.seasons.clone();
            seasons.sort();
            assert_eq!(seasons, l.seasons, "{}", i.id);
            let mut nutrients = i.nutrients.clone();
            nutrients.sort();
            assert_eq!(nutrients, l.nutrients, "{}", i.id);
        }
    }

    #[test]
    fn diets_and_goals_round_trip() {
        let (orig, loaded) = round_trip();
        assert_eq!(orig.diets.len(), loaded.diets.len());
        for d in &orig.diets {
            let l = loaded.diet(&d.id).unwrap();
            let mut forbids = d.forbids_categories.clone();
            forbids.sort();
            assert_eq!(forbids, l.forbids_categories);
        }
        assert_eq!(orig.goals.len(), loaded.goals.len());
        for goal in &orig.goals {
            assert_eq!(
                loaded.goal(&goal.id).unwrap().wants_nutrient,
                goal.wants_nutrient
            );
        }
    }

    #[test]
    fn loaded_kg_drives_the_pipeline() {
        // The re-loaded KG must work end to end (Turtle in between).
        let original = curated();
        let mut g = Graph::new();
        kg_to_rdf(&original, &mut g);
        let ttl = feo_rdf::turtle::write_turtle(&g, feo_ontology::ns::PREFIXES);
        let mut g2 = Graph::new();
        feo_rdf::turtle::parse_turtle_into(&ttl, &mut g2, &Default::default()).unwrap();
        let loaded = kg_from_rdf(&g2);
        assert!(loaded.recipe("ButternutSquashSoup").is_some());
        assert!(loaded.recipe_in_season(
            loaded.recipe("ButternutSquashSoup").unwrap(),
            Season::Autumn
        ));
    }

    #[test]
    fn empty_graph_loads_empty_kg() {
        let kg = kg_from_rdf(&Graph::new());
        assert!(kg.recipes.is_empty());
        assert!(kg.ingredients.is_empty());
    }
}
