//! Plain-Rust model of the food knowledge graph.
//!
//! The KG exists in two forms: these structs (used by the generator and
//! the recommender, which wants cheap field access) and the RDF graph
//! produced by [`crate::rdf::kg_to_rdf`] (used by the reasoner and SPARQL
//! layer). Identifiers are CamelCase local names; IRIs live in the `feo:`
//! namespace like the paper's individuals (`feo:Sushi`, `feo:Broccoli`).

use std::collections::BTreeMap;

/// The four seasons, matching the `feo:` season individuals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Season {
    Spring,
    Summer,
    Autumn,
    Winter,
}

impl Season {
    pub const ALL: [Season; 4] = [
        Season::Spring,
        Season::Summer,
        Season::Autumn,
        Season::Winter,
    ];

    /// The `feo:` individual IRI for this season.
    pub fn iri(self) -> &'static str {
        match self {
            Season::Spring => feo_ontology::ns::feo::SPRING,
            Season::Summer => feo_ontology::ns::feo::SUMMER,
            Season::Autumn => feo_ontology::ns::feo::AUTUMN,
            Season::Winter => feo_ontology::ns::feo::WINTER,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Season::Spring => "Spring",
            Season::Summer => "Summer",
            Season::Autumn => "Autumn",
            Season::Winter => "Winter",
        }
    }
}

/// An ingredient with its availability, nutrition, and category tags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ingredient {
    /// CamelCase local name, e.g. `"ButternutSquash"`.
    pub id: String,
    /// Seasons the ingredient is available in (empty = year-round).
    pub seasons: Vec<Season>,
    /// Regions the ingredient is available in (empty = everywhere).
    pub regions: Vec<String>,
    /// Nutrients this ingredient is notably high in.
    pub nutrients: Vec<String>,
    /// Food categories (Meat, Dairy, Gluten, …) for diet filtering.
    pub categories: Vec<String>,
}

impl Ingredient {
    pub fn new(id: &str) -> Self {
        Ingredient {
            id: id.to_string(),
            ..Default::default()
        }
    }

    pub fn seasons(mut self, seasons: &[Season]) -> Self {
        self.seasons = seasons.to_vec();
        self
    }

    pub fn regions(mut self, regions: &[&str]) -> Self {
        self.regions = regions.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn nutrients(mut self, nutrients: &[&str]) -> Self {
        self.nutrients = nutrients.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn categories(mut self, categories: &[&str]) -> Self {
        self.categories = categories.iter().map(|s| s.to_string()).collect();
        self
    }
}

/// A recipe (a `food:Recipe`, which is also a `food:Food`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recipe {
    /// CamelCase local name, e.g. `"CauliflowerPotatoCurry"`.
    pub id: String,
    /// Human-readable label, e.g. `"Cauliflower Potato Curry"`.
    pub label: String,
    /// Ingredient ids.
    pub ingredients: Vec<String>,
    /// Calories per serving.
    pub calories: u32,
    /// 1 (cheap) ..= 3 (expensive) — used by budget characteristics.
    pub price_tier: u8,
    /// Categories asserted directly on the dish (e.g. Sushi → RawFish).
    pub categories: Vec<String>,
}

impl Recipe {
    pub fn new(id: &str, label: &str) -> Self {
        Recipe {
            id: id.to_string(),
            label: label.to_string(),
            price_tier: 1,
            ..Default::default()
        }
    }

    pub fn ingredients(mut self, ids: &[&str]) -> Self {
        self.ingredients = ids.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn calories(mut self, c: u32) -> Self {
        self.calories = c;
        self
    }

    pub fn price_tier(mut self, t: u8) -> Self {
        self.price_tier = t;
        self
    }

    pub fn categories(mut self, categories: &[&str]) -> Self {
        self.categories = categories.iter().map(|s| s.to_string()).collect();
        self
    }
}

/// A diet with the food categories it forbids.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diet {
    pub id: String,
    pub forbids_categories: Vec<String>,
}

impl Diet {
    pub fn new(id: &str, forbids: &[&str]) -> Self {
        Diet {
            id: id.to_string(),
            forbids_categories: forbids.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A nutritional goal and the nutrient that advances it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Goal {
    pub id: String,
    pub wants_nutrient: String,
}

impl Goal {
    pub fn new(id: &str, nutrient: &str) -> Self {
        Goal {
            id: id.to_string(),
            wants_nutrient: nutrient.to_string(),
        }
    }
}

/// The knowledge graph: recipes, ingredients, diets, goals, and
/// free-floating domain knowledge assertions (e.g. pregnancy guidance).
#[derive(Debug, Clone, Default)]
pub struct FoodKg {
    pub recipes: Vec<Recipe>,
    pub ingredients: Vec<Ingredient>,
    pub diets: Vec<Diet>,
    pub goals: Vec<Goal>,
    /// Regions known to the system.
    pub regions: Vec<String>,
    ingredient_index: BTreeMap<String, usize>,
    recipe_index: BTreeMap<String, usize>,
}

impl FoodKg {
    pub fn new() -> Self {
        FoodKg::default()
    }

    pub fn add_ingredient(&mut self, i: Ingredient) {
        self.ingredient_index
            .insert(i.id.clone(), self.ingredients.len());
        self.ingredients.push(i);
    }

    pub fn add_recipe(&mut self, r: Recipe) {
        self.recipe_index.insert(r.id.clone(), self.recipes.len());
        self.recipes.push(r);
    }

    pub fn recipe(&self, id: &str) -> Option<&Recipe> {
        self.recipe_index.get(id).map(|&i| &self.recipes[i])
    }

    pub fn ingredient(&self, id: &str) -> Option<&Ingredient> {
        self.ingredient_index.get(id).map(|&i| &self.ingredients[i])
    }

    pub fn diet(&self, id: &str) -> Option<&Diet> {
        self.diets.iter().find(|d| d.id == id)
    }

    pub fn goal(&self, id: &str) -> Option<&Goal> {
        self.goals.iter().find(|g| g.id == id)
    }

    /// All category tags of a recipe: its own plus its ingredients'.
    pub fn recipe_categories(&self, recipe: &Recipe) -> Vec<String> {
        let mut out = recipe.categories.clone();
        for ing_id in &recipe.ingredients {
            if let Some(ing) = self.ingredient(ing_id) {
                out.extend(ing.categories.iter().cloned());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// All nutrients a recipe provides through its ingredients.
    pub fn recipe_nutrients(&self, recipe: &Recipe) -> Vec<String> {
        let mut out = Vec::new();
        for ing_id in &recipe.ingredients {
            if let Some(ing) = self.ingredient(ing_id) {
                out.extend(ing.nutrients.iter().cloned());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Seasons in which every seasonal ingredient of the recipe is
    /// available (`None` = recipe has no seasonal constraint).
    pub fn recipe_seasons(&self, recipe: &Recipe) -> Option<Vec<Season>> {
        let mut acc: Option<Vec<Season>> = None;
        for ing_id in &recipe.ingredients {
            let Some(ing) = self.ingredient(ing_id) else {
                continue;
            };
            if ing.seasons.is_empty() {
                continue;
            }
            acc = Some(match acc {
                None => ing.seasons.clone(),
                Some(prev) => prev
                    .into_iter()
                    .filter(|s| ing.seasons.contains(s))
                    .collect(),
            });
        }
        acc
    }

    /// True when any ingredient of the recipe is seasonal and available
    /// in `season`.
    pub fn recipe_in_season(&self, recipe: &Recipe, season: Season) -> bool {
        recipe.ingredients.iter().any(|i| {
            self.ingredient(i)
                .map(|ing| ing.seasons.contains(&season))
                .unwrap_or(false)
        })
    }

    /// Builds the `feo:` IRI for a local individual name.
    pub fn iri(local: &str) -> String {
        format!("{}{local}", feo_ontology::ns::feo::NS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kg() -> FoodKg {
        let mut kg = FoodKg::new();
        kg.add_ingredient(
            Ingredient::new("Squash")
                .seasons(&[Season::Autumn, Season::Winter])
                .nutrients(&["VitaminA"]),
        );
        kg.add_ingredient(Ingredient::new("Cheddar").categories(&["Dairy"]));
        kg.add_recipe(
            Recipe::new("SquashBake", "Squash Bake")
                .ingredients(&["Squash", "Cheddar"])
                .calories(400),
        );
        kg.diets.push(Diet::new("Vegan", &["Dairy", "Meat"]));
        kg
    }

    #[test]
    fn lookup_by_id() {
        let kg = kg();
        assert!(kg.recipe("SquashBake").is_some());
        assert!(kg.ingredient("Squash").is_some());
        assert!(kg.recipe("Nope").is_none());
    }

    #[test]
    fn derived_recipe_attributes() {
        let kg = kg();
        let r = kg.recipe("SquashBake").unwrap();
        assert_eq!(kg.recipe_categories(r), vec!["Dairy".to_string()]);
        assert_eq!(kg.recipe_nutrients(r), vec!["VitaminA".to_string()]);
        assert_eq!(
            kg.recipe_seasons(r),
            Some(vec![Season::Autumn, Season::Winter])
        );
        assert!(kg.recipe_in_season(r, Season::Autumn));
        assert!(!kg.recipe_in_season(r, Season::Summer));
    }

    #[test]
    fn season_intersection() {
        let mut kg = kg();
        kg.add_ingredient(Ingredient::new("Peas").seasons(&[Season::Spring, Season::Autumn]));
        kg.add_recipe(Recipe::new("Mix", "Mix").ingredients(&["Squash", "Peas"]));
        let r = kg.recipe("Mix").unwrap();
        assert_eq!(kg.recipe_seasons(r), Some(vec![Season::Autumn]));
    }

    #[test]
    fn iris_are_feo_namespaced() {
        assert_eq!(FoodKg::iri("Sushi"), "https://purl.org/heals/feo#Sushi");
    }
}
