//! The curated knowledge graph: every individual the paper mentions
//! (Cauliflower Potato Curry, Butternut Squash Soup, Broccoli Cheddar
//! Soup, Sushi, Spinach Frittata, the pregnancy guidance) plus enough
//! additional recipes and ingredients for the recommender to rank
//! realistically.
//!
//! This is the substitution for FoodKG \[5\]: same schema, hand-curated
//! content sized for the paper's scenarios. The scaled synthetic
//! generator lives in [`crate::generator`].

use crate::model::{Diet, FoodKg, Goal, Ingredient, Recipe, Season};

use Season::*;

/// Builds the curated knowledge graph.
pub fn curated() -> FoodKg {
    let mut kg = FoodKg::new();

    // ---- ingredients -----------------------------------------------------
    let ingredients = vec![
        // Paper-scenario ingredients.
        Ingredient::new("Cauliflower")
            .seasons(&[Autumn, Winter])
            .nutrients(&["VitaminC", "Fiber"]),
        Ingredient::new("Potato")
            .nutrients(&["Potassium"])
            .categories(&["HighCarb"]),
        Ingredient::new("CurryPowder"),
        Ingredient::new("ButternutSquash")
            .seasons(&[Autumn])
            .nutrients(&["VitaminA", "Fiber"]),
        Ingredient::new("VegetableBroth"),
        // Folate is kept distinctive to spinach so the counterfactual CQ
        // reproduces the paper's exact rows (§V-C).
        Ingredient::new("Broccoli")
            .seasons(&[Autumn])
            .nutrients(&["VitaminC", "Fiber"]),
        Ingredient::new("Cheddar")
            .categories(&["Dairy"])
            .nutrients(&["Calcium", "Protein"]),
        Ingredient::new("SushiRice").categories(&["HighCarb"]),
        Ingredient::new("Nori"),
        Ingredient::new("Salmon")
            .categories(&["Fish"])
            .nutrients(&["Omega3", "Protein"]),
        Ingredient::new("Spinach")
            .seasons(&[Spring, Autumn])
            .nutrients(&["Folate", "Iron", "VitaminA"]),
        Ingredient::new("Egg")
            .categories(&["Egg"])
            .nutrients(&["Protein"]),
        // Broader pantry.
        Ingredient::new("Chicken")
            .categories(&["Meat"])
            .nutrients(&["Protein"]),
        Ingredient::new("Beef")
            .categories(&["Meat"])
            .nutrients(&["Protein", "Iron"]),
        Ingredient::new("Tofu").nutrients(&["Protein", "Calcium"]),
        Ingredient::new("Lentils").nutrients(&["Protein", "Fiber", "Iron"]),
        Ingredient::new("Chickpeas").nutrients(&["Protein", "Fiber"]),
        Ingredient::new("BlackBeans").nutrients(&["Protein", "Fiber"]),
        Ingredient::new("Rice").categories(&["HighCarb"]),
        Ingredient::new("Pasta").categories(&["Gluten", "HighCarb"]),
        Ingredient::new("Bread").categories(&["Gluten", "HighCarb"]),
        Ingredient::new("Flour").categories(&["Gluten"]),
        Ingredient::new("Milk")
            .categories(&["Dairy"])
            .nutrients(&["Calcium"]),
        Ingredient::new("Butter").categories(&["Dairy"]),
        Ingredient::new("Yogurt")
            .categories(&["Dairy"])
            .nutrients(&["Calcium", "Protein"]),
        Ingredient::new("Parmesan")
            .categories(&["Dairy"])
            .nutrients(&["Calcium"]),
        Ingredient::new("Mozzarella")
            .categories(&["Dairy"])
            .nutrients(&["Calcium"]),
        Ingredient::new("Shrimp")
            .categories(&["Fish", "Shellfish"])
            .nutrients(&["Protein"]),
        Ingredient::new("Tuna")
            .categories(&["Fish"])
            .nutrients(&["Omega3", "Protein"]),
        Ingredient::new("Peanuts")
            .categories(&["Nut"])
            .nutrients(&["Protein"]),
        Ingredient::new("Almonds")
            .categories(&["Nut"])
            .nutrients(&["Protein", "Fiber"]),
        Ingredient::new("Walnuts")
            .categories(&["Nut"])
            .nutrients(&["Omega3"]),
        Ingredient::new("Tomato")
            .seasons(&[Summer])
            .nutrients(&["VitaminC"]),
        Ingredient::new("Zucchini")
            .seasons(&[Summer])
            .nutrients(&["Fiber"]),
        Ingredient::new("Corn").seasons(&[Summer]),
        Ingredient::new("Strawberry")
            .seasons(&[Spring, Summer])
            .nutrients(&["VitaminC"]),
        Ingredient::new("Asparagus")
            .seasons(&[Spring])
            .nutrients(&["Fiber"]),
        Ingredient::new("Peas")
            .seasons(&[Spring])
            .nutrients(&["Protein", "Fiber"]),
        Ingredient::new("Kale")
            .seasons(&[Autumn, Winter])
            .nutrients(&["VitaminC", "Iron", "Fiber"]),
        Ingredient::new("Pumpkin")
            .seasons(&[Autumn])
            .nutrients(&["VitaminA", "Fiber"]),
        Ingredient::new("BrusselsSprouts")
            .seasons(&[Autumn, Winter])
            .nutrients(&["VitaminC"]),
        Ingredient::new("SweetPotato")
            .seasons(&[Autumn, Winter])
            .nutrients(&["VitaminA", "Fiber"])
            .categories(&["HighCarb"]),
        Ingredient::new("Apple")
            .seasons(&[Autumn])
            .regions(&["NewYork", "Washington"])
            .nutrients(&["Fiber"]),
        Ingredient::new("Orange")
            .seasons(&[Winter])
            .regions(&["Florida", "California"])
            .nutrients(&["VitaminC"]),
        Ingredient::new("Avocado")
            .regions(&["California", "Florida"])
            .nutrients(&["Fiber"]),
        Ingredient::new("Onion"),
        Ingredient::new("Garlic"),
        Ingredient::new("Carrot")
            .seasons(&[Autumn, Spring])
            .nutrients(&["VitaminA"]),
        Ingredient::new("Celery"),
        Ingredient::new("Lettuce").seasons(&[Spring, Summer]),
        Ingredient::new("Cucumber").seasons(&[Summer]),
        Ingredient::new("Quinoa").nutrients(&["Protein", "Fiber"]),
        Ingredient::new("Oats").nutrients(&["Fiber"]),
        Ingredient::new("Banana").nutrients(&["Potassium"]),
        Ingredient::new("Mushroom").nutrients(&["Fiber"]),
        Ingredient::new("BellPepper")
            .seasons(&[Summer])
            .nutrients(&["VitaminC"]),
        Ingredient::new("Ginger"),
        Ingredient::new("CoconutMilk"),
        Ingredient::new("Turkey")
            .categories(&["Meat"])
            .nutrients(&["Protein"]),
        Ingredient::new("Cod")
            .categories(&["Fish"])
            .nutrients(&["Protein"]),
        Ingredient::new("Honey"),
        Ingredient::new("OliveOil"),
    ];
    for i in ingredients {
        kg.add_ingredient(i);
    }

    // ---- recipes ----------------------------------------------------------
    let recipes = vec![
        // The five paper-scenario dishes.
        Recipe::new("CauliflowerPotatoCurry", "Cauliflower Potato Curry")
            .ingredients(&[
                "Cauliflower",
                "Potato",
                "CurryPowder",
                "Onion",
                "CoconutMilk",
            ])
            .calories(420),
        Recipe::new("ButternutSquashSoup", "Butternut Squash Soup")
            .ingredients(&["ButternutSquash", "VegetableBroth", "Onion"])
            .calories(280),
        Recipe::new("BroccoliCheddarSoup", "Broccoli Cheddar Soup")
            .ingredients(&["Broccoli", "Cheddar", "Milk", "Onion"])
            .calories(460),
        // Sushi is tagged RawFish on the dish itself: the raw preparation
        // is a property of the dish, not of salmon in general.
        Recipe::new("Sushi", "Sushi")
            .ingredients(&["SushiRice", "Nori", "Salmon"])
            .categories(&["RawFish"])
            .calories(350)
            .price_tier(3),
        Recipe::new("SpinachFrittata", "Spinach Frittata")
            .ingredients(&["Spinach", "Egg", "Parmesan", "Onion"])
            .calories(320),
        // Broader menu.
        Recipe::new("LentilSoup", "Lentil Soup")
            .ingredients(&["Lentils", "Carrot", "Celery", "Onion", "Garlic"])
            .calories(310),
        Recipe::new("ChickpeaCurry", "Chickpea Curry")
            .ingredients(&["Chickpeas", "CurryPowder", "Tomato", "CoconutMilk", "Rice"])
            .calories(480),
        Recipe::new("GrilledChickenSalad", "Grilled Chicken Salad")
            .ingredients(&["Chicken", "Lettuce", "Tomato", "Cucumber", "OliveOil"])
            .calories(380),
        Recipe::new("BeefStew", "Beef Stew")
            .ingredients(&["Beef", "Potato", "Carrot", "Onion", "Celery"])
            .calories(550)
            .price_tier(2),
        Recipe::new("TofuStirFry", "Tofu Stir Fry")
            .ingredients(&["Tofu", "BellPepper", "Ginger", "Garlic", "Rice"])
            .calories(400),
        Recipe::new("MargheritaPizza", "Margherita Pizza")
            .ingredients(&["Flour", "Tomato", "Mozzarella", "OliveOil"])
            .calories(650),
        Recipe::new("PastaPrimavera", "Pasta Primavera")
            .ingredients(&["Pasta", "Zucchini", "BellPepper", "Parmesan", "OliveOil"])
            .calories(520),
        Recipe::new("SalmonTeriyaki", "Salmon Teriyaki")
            .ingredients(&["Salmon", "Rice", "Ginger", "Honey"])
            .calories(470)
            .price_tier(2),
        Recipe::new("ShrimpScampi", "Shrimp Scampi")
            .ingredients(&["Shrimp", "Pasta", "Garlic", "Butter"])
            .calories(510)
            .price_tier(2),
        Recipe::new("TunaSalad", "Tuna Salad")
            .ingredients(&["Tuna", "Lettuce", "Celery", "Egg"])
            .calories(330),
        Recipe::new("KaleQuinoaBowl", "Kale Quinoa Bowl")
            .ingredients(&["Kale", "Quinoa", "Avocado", "Almonds"])
            .calories(430),
        Recipe::new("PumpkinRisotto", "Pumpkin Risotto")
            .ingredients(&["Pumpkin", "Rice", "Parmesan", "Onion", "Butter"])
            .calories(490),
        Recipe::new("RoastedBrusselsSprouts", "Roasted Brussels Sprouts")
            .ingredients(&["BrusselsSprouts", "OliveOil", "Garlic"])
            .calories(180),
        Recipe::new("SweetPotatoTacos", "Sweet Potato Tacos")
            .ingredients(&["SweetPotato", "BlackBeans", "Corn", "Avocado"])
            .calories(440),
        Recipe::new("AppleCrisp", "Apple Crisp")
            .ingredients(&["Apple", "Oats", "Butter", "Flour", "Honey"])
            .calories(380),
        Recipe::new("StrawberrySpinachSalad", "Strawberry Spinach Salad")
            .ingredients(&["Strawberry", "Spinach", "Walnuts", "OliveOil"])
            .calories(260),
        Recipe::new("AsparagusOmelette", "Asparagus Omelette")
            .ingredients(&["Asparagus", "Egg", "Cheddar", "Butter"])
            .calories(340),
        Recipe::new("PeaRisotto", "Pea Risotto")
            .ingredients(&["Peas", "Rice", "Parmesan", "Onion"])
            .calories(450),
        Recipe::new("MushroomBarleySoup", "Mushroom Barley Soup")
            .ingredients(&["Mushroom", "VegetableBroth", "Carrot", "Onion"])
            .calories(240),
        Recipe::new("TurkeyChili", "Turkey Chili")
            .ingredients(&["Turkey", "BlackBeans", "Tomato", "Onion", "BellPepper"])
            .calories(420),
        Recipe::new("BakedCod", "Baked Cod")
            .ingredients(&["Cod", "OliveOil", "Garlic", "Potato"])
            .calories(360),
        Recipe::new("PeanutNoodles", "Peanut Noodles")
            .ingredients(&["Pasta", "Peanuts", "Ginger", "Garlic"])
            .calories(540),
        Recipe::new("BananaOatPancakes", "Banana Oat Pancakes")
            .ingredients(&["Banana", "Oats", "Egg", "Milk"])
            .calories(390),
        Recipe::new("GreekYogurtParfait", "Greek Yogurt Parfait")
            .ingredients(&["Yogurt", "Strawberry", "Honey", "Almonds"])
            .calories(290),
        Recipe::new("CornChowder", "Corn Chowder")
            .ingredients(&["Corn", "Potato", "Milk", "Onion", "Celery"])
            .calories(370),
        Recipe::new("ZucchiniFritters", "Zucchini Fritters")
            .ingredients(&["Zucchini", "Flour", "Egg", "Parmesan"])
            .calories(310),
        Recipe::new("OrangeGlazedCarrots", "Orange Glazed Carrots")
            .ingredients(&["Orange", "Carrot", "Honey", "Butter"])
            .calories(210),
    ];
    for r in recipes {
        kg.add_recipe(r);
    }

    // ---- diets ------------------------------------------------------------
    kg.diets = vec![
        Diet::new("Vegan", &["Meat", "Dairy", "Egg", "Fish", "Shellfish"]),
        Diet::new("Vegetarian", &["Meat", "Fish", "Shellfish"]),
        Diet::new("Pescatarian", &["Meat"]),
        Diet::new("GlutenFree", &["Gluten"]),
        Diet::new("DairyFree", &["Dairy"]),
        Diet::new("NutFree", &["Nut"]),
    ];

    // ---- goals ------------------------------------------------------------
    kg.goals = vec![
        Goal::new("HighProteinGoal", "Protein"),
        Goal::new("HighFiberGoal", "Fiber"),
        Goal::new("IronRichGoal", "Iron"),
        Goal::new("HeartHealthGoal", "Omega3"),
        Goal::new("ImmunityGoal", "VitaminC"),
        Goal::new("FolateGoal", "Folate"),
    ];

    kg.regions = vec![
        "Florida".into(),
        "NewYork".into(),
        "California".into(),
        "Washington".into(),
    ];

    kg
}

/// Domain-knowledge assertions that ride along with the curated KG:
/// `(subject, property, object)` triples in `feo:`/`food:` vocabulary,
/// returned as IRI strings. Currently the pregnancy guidance from the
/// paper's counterfactual scenario (§V-C): pregnancy forbids raw fish and
/// recommends folate.
pub fn knowledge_assertions() -> Vec<(String, String, String)> {
    use feo_ontology::ns::feo;
    vec![
        (
            feo::PREGNANCY_STATE.to_string(),
            feo::FORBIDS.to_string(),
            FoodKg::iri("RawFish"),
        ),
        (
            feo::PREGNANCY_STATE.to_string(),
            feo::RECOMMENDS.to_string(),
            FoodKg::iri("Folate"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_individuals_present() {
        let kg = curated();
        for id in [
            "CauliflowerPotatoCurry",
            "ButternutSquashSoup",
            "BroccoliCheddarSoup",
            "Sushi",
            "SpinachFrittata",
        ] {
            assert!(kg.recipe(id).is_some(), "missing paper recipe {id}");
        }
        for id in ["Cauliflower", "Broccoli", "Spinach", "Salmon"] {
            assert!(kg.ingredient(id).is_some(), "missing paper ingredient {id}");
        }
    }

    #[test]
    fn scenario_invariants_hold() {
        let kg = curated();
        // CQ1: cauliflower is an autumn vegetable.
        let cauliflower = kg.ingredient("Cauliflower").unwrap();
        assert!(cauliflower.seasons.contains(&Season::Autumn));
        // CQ2: butternut squash is autumn-only; broccoli also autumn (so
        // no spurious season foils); broccoli is the allergen.
        let squash = kg.ingredient("ButternutSquash").unwrap();
        assert_eq!(squash.seasons, vec![Season::Autumn]);
        let broccoli = kg.ingredient("Broccoli").unwrap();
        assert!(broccoli.seasons.contains(&Season::Autumn));
        // CQ3: sushi is a raw-fish dish; spinach carries folate and feeds
        // the frittata.
        let sushi = kg.recipe("Sushi").unwrap();
        assert!(sushi.categories.contains(&"RawFish".to_string()));
        let spinach = kg.ingredient("Spinach").unwrap();
        assert!(spinach.nutrients.contains(&"Folate".to_string()));
        let frittata = kg.recipe("SpinachFrittata").unwrap();
        assert!(frittata.ingredients.contains(&"Spinach".to_string()));
    }

    #[test]
    fn kg_is_reasonably_sized() {
        let kg = curated();
        assert!(kg.recipes.len() >= 30, "recipes: {}", kg.recipes.len());
        assert!(
            kg.ingredients.len() >= 45,
            "ingredients: {}",
            kg.ingredients.len()
        );
        assert!(kg.diets.len() >= 5);
        assert!(kg.goals.len() >= 5);
    }

    #[test]
    fn every_recipe_ingredient_exists() {
        let kg = curated();
        for r in &kg.recipes {
            for i in &r.ingredients {
                assert!(
                    kg.ingredient(i).is_some(),
                    "{}: unknown ingredient {i}",
                    r.id
                );
            }
        }
    }

    #[test]
    fn pregnancy_knowledge_present() {
        let ka = knowledge_assertions();
        assert_eq!(ka.len(), 2);
        assert!(ka
            .iter()
            .any(|(_, p, o)| p.ends_with("forbids") && o.ends_with("RawFish")));
        assert!(ka
            .iter()
            .any(|(_, p, o)| p.ends_with("recommends") && o.ends_with("Folate")));
    }
}
