//! Pathological knowledge-graph generators for fault-injection tests.
//!
//! Real deployments meet hostile inputs: ontologies with cyclic class
//! hierarchies, absurdly deep property chains, `someValuesFrom`
//! definitions whose closure grows multiplicatively, and documents that
//! are simply broken. These generators produce such inputs as Turtle
//! text so the governor test-suite (`tests/adversarial.rs` at the
//! workspace root) can assert the pipeline's contract: typed errors or
//! bounded partial results, never a panic or a runaway loop.

/// A `rdfs:subClassOf` cycle of `n` classes (`C0 ⊑ C1 ⊑ … ⊑ C0`) with
/// one individual asserted into `C0`. A naive hierarchy walk that does
/// not track visited classes loops forever here.
pub fn cyclic_subclass_turtle(n: usize) -> String {
    let n = n.max(2);
    let mut out = String::from("@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n@prefix a: <http://adversarial/> .\n");
    for i in 0..n {
        out.push_str(&format!("a:C{} rdfs:subClassOf a:C{} .\n", i, (i + 1) % n));
    }
    out.push_str("a:victim a a:C0 .\n");
    out
}

/// A chain of `depth` hops over one `owl:TransitiveProperty` — the
/// closure holds `depth * (depth + 1) / 2` pairs, so the inferred-triple
/// budget must bound it.
pub fn deep_transitive_chain_turtle(depth: usize) -> String {
    let mut out = String::from(
        "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n@prefix a: <http://adversarial/> .\na:p a owl:TransitiveProperty .\n",
    );
    for i in 0..depth {
        out.push_str(&format!("a:n{} a:p a:n{} .\n", i, i + 1));
    }
    out
}

/// Nested `owl:equivalentClass [ owl:someValuesFrom ]` definitions over a
/// property chain: `C_i ≡ ∃p.C_{i+1}` for `levels` levels, with `chains`
/// parallel `p`-chains of individuals. Membership cascades one level per
/// fixpoint round, so the round budget (not just the triple budget) is
/// exercised.
pub fn closure_blowup_turtle(levels: usize, chains: usize) -> String {
    let mut out = String::from(
        "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n@prefix a: <http://adversarial/> .\n",
    );
    for i in 0..levels {
        out.push_str(&format!(
            "a:C{i} owl:equivalentClass [ a owl:Restriction ; owl:onProperty a:p ; owl:someValuesFrom a:C{} ] .\n",
            i + 1
        ));
    }
    for c in 0..chains {
        for i in 0..levels {
            out.push_str(&format!("a:x{c}_{i} a:p a:x{c}_{} .\n", i + 1));
        }
        out.push_str(&format!("a:x{c}_{levels} a a:C{levels} .\n"));
    }
    out
}

/// A corpus of malformed Turtle documents, one failure mode each. Every
/// entry must produce a positioned syntax error — never a panic.
pub fn malformed_turtle_corpus() -> Vec<&'static str> {
    vec![
        // Unterminated IRI.
        "<http://e/a <http://e/p> <http://e/b> .",
        // Unterminated string literal.
        "<http://e/a> <http://e/p> \"never closed .",
        // Missing terminating dot.
        "<http://e/a> <http://e/p> <http://e/b>",
        // Undeclared prefix.
        "e:a e:p e:b .",
        // Directive mid-statement.
        "<http://e/a> @prefix e: <http://e/> .",
        // Unbalanced collection.
        "<http://e/a> <http://e/p> ( <http://e/b> .",
        // Unbalanced blank-node property list.
        "<http://e/a> <http://e/p> [ <http://e/q> <http://e/b> .",
        // Bare garbage.
        "%%% not turtle at all %%%",
        // Dangling escape at end of input.
        "<http://e/a> <http://e/p> \"bad\\",
        // Literal as subject.
        "\"lit\" <http://e/p> <http://e/b> .",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_subclass_parses_and_closes_the_cycle() {
        let src = cyclic_subclass_turtle(5);
        let triples = feo_rdf::turtle::parse_turtle(&src, &Default::default()).unwrap();
        // n subclass links + 1 membership.
        assert_eq!(triples.len(), 6);
    }

    #[test]
    fn transitive_chain_has_requested_depth() {
        let src = deep_transitive_chain_turtle(100);
        let triples = feo_rdf::turtle::parse_turtle(&src, &Default::default()).unwrap();
        assert_eq!(triples.len(), 101); // 100 hops + the property typing
    }

    #[test]
    fn closure_blowup_parses() {
        let src = closure_blowup_turtle(4, 2);
        assert!(feo_rdf::turtle::parse_turtle(&src, &Default::default()).is_ok());
    }

    #[test]
    fn malformed_corpus_is_rejected_with_positions() {
        for doc in malformed_turtle_corpus() {
            let err = feo_rdf::turtle::parse_turtle(doc, &Default::default())
                .expect_err("malformed document must not parse");
            match err {
                feo_rdf::RdfError::Syntax(e) => {
                    assert!(e.line >= 1, "error carries a line for {doc:?}")
                }
                other => panic!("expected a syntax error for {doc:?}, got {other:?}"),
            }
        }
    }
}
