//! # feo-foodkg
//!
//! The food-knowledge-graph substrate: a curated KG containing every
//! individual the paper's scenarios mention, a seeded synthetic generator
//! for scaling experiments (the substitute for the real FoodKG \[5\]), user
//! profiles / system context, and ABox emission into RDF.
//!
//! ```
//! use feo_foodkg::{curated, kg_to_rdf};
//! use feo_rdf::Graph;
//!
//! let kg = curated();
//! let mut g = Graph::new();
//! kg_to_rdf(&kg, &mut g);
//! assert!(kg.recipe("CauliflowerPotatoCurry").is_some());
//! ```

pub mod adversarial;
pub mod data;
pub mod from_rdf;
pub mod generator;
pub mod model;
pub mod rdf;
pub mod user;

pub use data::{curated, knowledge_assertions};
pub use from_rdf::kg_from_rdf;
pub use generator::{synthetic, SyntheticConfig};
pub use model::{Diet, FoodKg, Goal, Ingredient, Recipe, Season};
pub use rdf::{context_to_rdf, kg_to_rdf, user_to_rdf};
pub use user::{random_profiles, SystemContext, UserProfile};
