//! ABox emission: turns the plain-Rust KG, user profiles, and system
//! context into RDF triples in the FEO/food vocabulary.

use feo_rdf::term::Term;
use feo_rdf::vocab::rdf;
use feo_rdf::GraphStore;

use feo_ontology::ns::{feo, food};

use crate::model::{FoodKg, Season};
use crate::user::{SystemContext, UserProfile};

fn camel_to_label(id: &str) -> String {
    let mut out = String::with_capacity(id.len() + 4);
    for (i, c) in id.chars().enumerate() {
        if c.is_uppercase() && i > 0 {
            out.push(' ');
        }
        out.push(c);
    }
    out
}

/// Emits the knowledge graph as triples. Idempotent (set semantics).
pub fn kg_to_rdf(kg: &FoodKg, g: &mut impl GraphStore) {
    // Ingredients.
    for ing in &kg.ingredients {
        let iri = FoodKg::iri(&ing.id);
        g.insert_iris(&iri, rdf::TYPE, food::INGREDIENT);
        for s in &ing.seasons {
            g.insert_iris(&iri, food::AVAILABLE_IN_SEASON, s.iri());
        }
        for r in &ing.regions {
            let region_iri = FoodKg::iri(r);
            g.insert_iris(&region_iri, rdf::TYPE, food::REGION);
            g.insert_iris(&iri, food::AVAILABLE_IN_REGION, &region_iri);
        }
        for n in &ing.nutrients {
            let n_iri = FoodKg::iri(n);
            g.insert_iris(&n_iri, rdf::TYPE, food::NUTRIENT);
            g.insert_iris(&iri, food::HAS_NUTRIENT, &n_iri);
        }
        for c in &ing.categories {
            let c_iri = FoodKg::iri(c);
            g.insert_iris(&c_iri, rdf::TYPE, food::FOOD_CATEGORY);
            g.insert_iris(&iri, food::BELONGS_TO_CATEGORY, &c_iri);
        }
    }

    // Recipes.
    for r in &kg.recipes {
        let iri = FoodKg::iri(&r.id);
        g.insert_iris(&iri, rdf::TYPE, food::RECIPE);
        g.insert_terms(
            feo_rdf::Iri::new(iri.clone()),
            feo_rdf::Iri::new(feo_rdf::vocab::rdfs::LABEL),
            Term::simple(r.label.clone()),
        );
        for ing in &r.ingredients {
            g.insert_iris(&iri, food::HAS_INGREDIENT, &FoodKg::iri(ing));
        }
        for c in &r.categories {
            let c_iri = FoodKg::iri(c);
            g.insert_iris(&c_iri, rdf::TYPE, food::FOOD_CATEGORY);
            g.insert_iris(&iri, food::BELONGS_TO_CATEGORY, &c_iri);
        }
        g.insert_terms(
            feo_rdf::Iri::new(iri.clone()),
            feo_rdf::Iri::new(food::CALORIES),
            Term::integer(r.calories as i64),
        );
        g.insert_terms(
            feo_rdf::Iri::new(iri.clone()),
            feo_rdf::Iri::new(food::PRICE_TIER),
            Term::integer(r.price_tier as i64),
        );
    }

    // Diets with their forbidden categories.
    for d in &kg.diets {
        let iri = FoodKg::iri(&d.id);
        g.insert_iris(&iri, rdf::TYPE, food::DIET);
        for c in &d.forbids_categories {
            let c_iri = FoodKg::iri(c);
            g.insert_iris(&c_iri, rdf::TYPE, food::FOOD_CATEGORY);
            g.insert_iris(&iri, food::FORBIDS_CATEGORY, &c_iri);
            // Mirrored as feo:forbids so the FEO chains propagate diet
            // opposition into dishes (see schema.rs for why this is not a
            // subproperty axiom).
            g.insert_iris(&iri, feo::FORBIDS, &c_iri);
        }
    }

    // Goals.
    for goal in &kg.goals {
        let iri = FoodKg::iri(&goal.id);
        g.insert_iris(&iri, rdf::TYPE, feo::NUTRITIONAL_GOAL);
        let n_iri = FoodKg::iri(&goal.wants_nutrient);
        g.insert_iris(&n_iri, rdf::TYPE, food::NUTRIENT);
        // The goal recommends its nutrient — the same pattern as the
        // pregnancy guidance, so goal-based facts flow through the
        // recommends chain.
        g.insert_iris(&iri, feo::RECOMMENDS, &n_iri);
    }

    // Domain knowledge riders.
    for (s, p, o) in crate::data::knowledge_assertions() {
        g.insert_iris(&s, &p, &o);
    }

    // Labels for readability of ingredient IRIs.
    for ing in &kg.ingredients {
        g.insert_terms(
            feo_rdf::Iri::new(FoodKg::iri(&ing.id)),
            feo_rdf::Iri::new(feo_rdf::vocab::rdfs::LABEL),
            Term::simple(camel_to_label(&ing.id)),
        );
    }
}

/// Emits a user profile as triples (the `food:User` individual with its
/// likes/dislikes/allergies/diet/goals).
pub fn user_to_rdf(user: &UserProfile, g: &mut impl GraphStore) {
    let iri = FoodKg::iri(&user.id);
    g.insert_iris(&iri, rdf::TYPE, food::USER);
    for l in &user.likes {
        g.insert_iris(&iri, food::LIKES, &FoodKg::iri(l));
    }
    for d in &user.dislikes {
        g.insert_iris(&iri, food::DISLIKES, &FoodKg::iri(d));
    }
    for a in &user.allergies {
        g.insert_iris(&iri, food::ALLERGIC_TO, &FoodKg::iri(a));
    }
    if let Some(diet) = &user.diet {
        g.insert_iris(&iri, food::FOLLOWS_DIET, &FoodKg::iri(diet));
    }
    for goal in &user.goals {
        g.insert_iris(&iri, food::HAS_GOAL, &FoodKg::iri(goal));
    }
    if user.pregnant {
        g.insert_iris(&iri, feo::HAS_CHARACTERISTIC, feo::PREGNANCY_STATE);
    }
    if let Some(region) = &user.region {
        let region_iri = FoodKg::iri(region);
        g.insert_iris(&region_iri, rdf::TYPE, food::REGION);
        g.insert_iris(&iri, food::AVAILABLE_IN_REGION, &region_iri);
    }
}

/// Emits the system context: the current season and region, and their
/// presence in the current ecosystem; all other seasons are absent.
pub fn context_to_rdf(ctx: &SystemContext, g: &mut impl GraphStore) {
    g.insert_iris(ctx.season.iri(), feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
    for s in Season::ALL {
        if s != ctx.season {
            g.insert_iris(s.iri(), feo::ABSENT_FROM, feo::CURRENT_ECOSYSTEM);
        }
    }
    if let Some(region) = &ctx.region {
        let iri = FoodKg::iri(region);
        g.insert_iris(&iri, rdf::TYPE, food::REGION);
        g.insert_iris(&iri, feo::PRESENT_IN, feo::CURRENT_ECOSYSTEM);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::curated;
    use feo_rdf::Graph;

    #[test]
    fn kg_emits_expected_triples() {
        let kg = curated();
        let mut g = Graph::new();
        kg_to_rdf(&kg, &mut g);
        assert!(g.len() > 300, "triples: {}", g.len());
        // Spot checks for paper individuals.
        let curry = g
            .lookup_iri(&FoodKg::iri("CauliflowerPotatoCurry"))
            .unwrap();
        let has_ing = g.lookup_iri(food::HAS_INGREDIENT).unwrap();
        let cauliflower = g.lookup_iri(&FoodKg::iri("Cauliflower")).unwrap();
        assert!(g.contains_ids(curry, has_ing, cauliflower));
        let avail = g.lookup_iri(food::AVAILABLE_IN_SEASON).unwrap();
        let autumn = g.lookup_iri(feo::AUTUMN).unwrap();
        assert!(g.contains_ids(cauliflower, avail, autumn));
    }

    #[test]
    fn emission_is_idempotent() {
        let kg = curated();
        let mut g = Graph::new();
        kg_to_rdf(&kg, &mut g);
        let n = g.len();
        kg_to_rdf(&kg, &mut g);
        assert_eq!(g.len(), n);
    }

    #[test]
    fn user_profile_triples() {
        let user = UserProfile::new("alice")
            .likes(&["BroccoliCheddarSoup"])
            .allergies(&["Broccoli"])
            .diet("Vegetarian")
            .goals(&["HighProteinGoal"]);
        let mut g = Graph::new();
        user_to_rdf(&user, &mut g);
        let alice = g.lookup_iri(&FoodKg::iri("alice")).unwrap();
        let allergic = g.lookup_iri(food::ALLERGIC_TO).unwrap();
        let broccoli = g.lookup_iri(&FoodKg::iri("Broccoli")).unwrap();
        assert!(g.contains_ids(alice, allergic, broccoli));
        let follows = g.lookup_iri(food::FOLLOWS_DIET).unwrap();
        assert_eq!(g.objects(alice, follows).len(), 1);
    }

    #[test]
    fn context_marks_current_season_present_others_absent() {
        let ctx = SystemContext::new(Season::Autumn).region("Florida");
        let mut g = Graph::new();
        context_to_rdf(&ctx, &mut g);
        let present = g.lookup_iri(feo::PRESENT_IN).unwrap();
        let absent = g.lookup_iri(feo::ABSENT_FROM).unwrap();
        let eco = g.lookup_iri(feo::CURRENT_ECOSYSTEM).unwrap();
        let autumn = g.lookup_iri(feo::AUTUMN).unwrap();
        let summer = g.lookup_iri(feo::SUMMER).unwrap();
        assert!(g.contains_ids(autumn, present, eco));
        assert!(g.contains_ids(summer, absent, eco));
        assert!(!g.contains_ids(summer, present, eco));
        let florida = g.lookup_iri(&FoodKg::iri("Florida")).unwrap();
        assert!(g.contains_ids(florida, present, eco));
    }

    #[test]
    fn labels_are_humanized() {
        assert_eq!(camel_to_label("ButternutSquash"), "Butternut Squash");
        assert_eq!(camel_to_label("Egg"), "Egg");
    }
}
