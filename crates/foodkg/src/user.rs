//! User profiles and system context — the "ecosystem" side of FEO's
//! explanation model, plus a seeded random-profile generator for
//! benchmarks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::model::{FoodKg, Season};

/// A user profile: the `feo:UserCharacteristic` sources.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UserProfile {
    pub id: String,
    /// Recipe or ingredient ids the user likes.
    pub likes: Vec<String>,
    pub dislikes: Vec<String>,
    /// Ingredient ids the user is allergic to.
    pub allergies: Vec<String>,
    /// Diet id, if the user follows one.
    pub diet: Option<String>,
    /// Nutritional goal ids.
    pub goals: Vec<String>,
    pub pregnant: bool,
    /// Region id the user is in.
    pub region: Option<String>,
    /// Price tier the user can afford (1 cheap ..= 3 expensive).
    pub budget_tier: Option<u8>,
}

impl UserProfile {
    pub fn new(id: &str) -> Self {
        UserProfile {
            id: id.to_string(),
            ..Default::default()
        }
    }

    pub fn likes(mut self, ids: &[&str]) -> Self {
        self.likes = ids.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn dislikes(mut self, ids: &[&str]) -> Self {
        self.dislikes = ids.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn allergies(mut self, ids: &[&str]) -> Self {
        self.allergies = ids.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn diet(mut self, id: &str) -> Self {
        self.diet = Some(id.to_string());
        self
    }

    pub fn goals(mut self, ids: &[&str]) -> Self {
        self.goals = ids.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn pregnant(mut self, v: bool) -> Self {
        self.pregnant = v;
        self
    }

    pub fn region(mut self, id: &str) -> Self {
        self.region = Some(id.to_string());
        self
    }

    pub fn budget(mut self, tier: u8) -> Self {
        self.budget_tier = Some(tier.clamp(1, 3));
        self
    }
}

/// System context: current season and region (the
/// `feo:SystemCharacteristic` sources).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemContext {
    pub season: Season,
    pub region: Option<String>,
}

impl SystemContext {
    pub fn new(season: Season) -> Self {
        SystemContext {
            season,
            region: None,
        }
    }

    pub fn region(mut self, id: &str) -> Self {
        self.region = Some(id.to_string());
        self
    }
}

/// Generates `n` plausible random user profiles against a KG, seeded for
/// reproducibility.
pub fn random_profiles(kg: &FoodKg, n: usize, seed: u64) -> Vec<UserProfile> {
    let mut rng = StdRng::seed_from_u64(seed);
    let recipe_ids: Vec<&str> = kg.recipes.iter().map(|r| r.id.as_str()).collect();
    let ingredient_ids: Vec<&str> = kg.ingredients.iter().map(|i| i.id.as_str()).collect();
    let diet_ids: Vec<&str> = kg.diets.iter().map(|d| d.id.as_str()).collect();
    let goal_ids: Vec<&str> = kg.goals.iter().map(|g| g.id.as_str()).collect();

    (0..n)
        .map(|i| {
            let mut p = UserProfile::new(&format!("user{i}"));
            let n_likes = rng.gen_range(1..=4usize.min(recipe_ids.len()));
            p.likes = recipe_ids
                .choose_multiple(&mut rng, n_likes)
                .map(|s| s.to_string())
                .collect();
            if rng.gen_bool(0.5) && !recipe_ids.is_empty() {
                let n_dislikes = rng.gen_range(1..=2);
                p.dislikes = recipe_ids
                    .choose_multiple(&mut rng, n_dislikes)
                    .map(|s| s.to_string())
                    .filter(|d| !p.likes.contains(d))
                    .collect();
            }
            if rng.gen_bool(0.3) && !ingredient_ids.is_empty() {
                p.allergies = ingredient_ids
                    .choose_multiple(&mut rng, 1)
                    .map(|s| s.to_string())
                    .collect();
            }
            if rng.gen_bool(0.4) && !diet_ids.is_empty() {
                p.diet = diet_ids.choose(&mut rng).map(|s| s.to_string());
            }
            if rng.gen_bool(0.6) && !goal_ids.is_empty() {
                let n_goals = rng.gen_range(1..=2);
                p.goals = goal_ids
                    .choose_multiple(&mut rng, n_goals)
                    .map(|s| s.to_string())
                    .collect();
            }
            if !kg.regions.is_empty() {
                p.region = kg.regions.choose(&mut rng).cloned();
            }
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::curated;

    #[test]
    fn builder_chains() {
        let u = UserProfile::new("u")
            .likes(&["A"])
            .dislikes(&["B"])
            .allergies(&["C"])
            .diet("Vegan")
            .goals(&["G"])
            .pregnant(true)
            .region("Florida");
        assert_eq!(u.likes, vec!["A"]);
        assert!(u.pregnant);
        assert_eq!(u.region.as_deref(), Some("Florida"));
    }

    #[test]
    fn random_profiles_are_deterministic() {
        let kg = curated();
        let a = random_profiles(&kg, 10, 42);
        let b = random_profiles(&kg, 10, 42);
        assert_eq!(a, b);
        let c = random_profiles(&kg, 10, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_profiles_reference_real_entities() {
        let kg = curated();
        for p in random_profiles(&kg, 25, 7) {
            for l in &p.likes {
                assert!(kg.recipe(l).is_some(), "unknown liked recipe {l}");
            }
            for a in &p.allergies {
                assert!(kg.ingredient(a).is_some(), "unknown allergen {a}");
            }
            if let Some(d) = &p.diet {
                assert!(kg.diet(d).is_some());
            }
            for g in &p.goals {
                assert!(kg.goal(g).is_some());
            }
        }
    }

    #[test]
    fn dislikes_never_overlap_likes() {
        let kg = curated();
        for p in random_profiles(&kg, 50, 3) {
            for d in &p.dislikes {
                assert!(!p.likes.contains(d));
            }
        }
    }
}
